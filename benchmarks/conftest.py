"""Shared benchmark fixtures.

Two simulation runs are built once per session:

* ``bench_run`` — the Figure 4/7/8 window (Sep 12 - Sep 26) at bench
  scale: 160 global probes every 30 min (paper: 800 every 5 min),
  80 ISP probes every 12 h (paper: 400), ISP traffic Sep 15-23.
* ``fig5_run`` — the long ISP window (Sep 1 - Nov 10, hourly steps)
  for the Figure 5 series including the iOS 11.1 echo.

Every figure bench writes its regenerated rows to
``benchmarks/output/<figure>.txt`` so the reproduction is inspectable
after a run; EXPERIMENTS.md records paper-vs-measured from these.
"""

import json
import pathlib

import pytest

from repro.isp import TrafficClassifier
from repro.simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from repro.workload import TIMELINE

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def write_output(name: str, text: str) -> None:
    """Persist one figure's regenerated rows."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n")


def write_json(name: str, payload: dict) -> None:
    """Persist one bench's machine-readable results (sorted, stable)."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n"
    )


@pytest.fixture(scope="session")
def bench_run():
    """The event-window run: scenario, engine, classified flows."""
    config = ScenarioConfig(
        global_probe_count=160,
        isp_probe_count=80,
        global_dns_interval=1800.0,
        isp_dns_interval=43200.0,
        traceroute_probe_count=16,
    )
    scenario = Sep2017Scenario(config)
    engine = SimulationEngine(scenario, step_seconds=1800.0)
    engine.run(TIMELINE.at(9, 12), TIMELINE.at(9, 26))
    classifier = TrafficClassifier(scenario.isp, scenario.rib, scenario.operator_of)
    classified = list(classifier.classify_all(scenario.netflow.records))
    return scenario, engine, classified


@pytest.fixture(scope="session")
def fig5_run():
    """The long ISP-campaign run (Figure 5)."""
    config = ScenarioConfig(
        global_probe_count=1,  # global campaign irrelevant here
        global_dns_interval=10 * 86400.0,
        isp_probe_count=80,
        isp_dns_interval=43200.0,
    )
    scenario = Sep2017Scenario(config)
    engine = SimulationEngine(scenario, step_seconds=3600.0)
    engine.run(TIMELINE.at(9, 1), TIMELINE.at(11, 10))
    return scenario, engine
