"""Ablation: delivery capacity vs user-visible download times.

The fluid-model counterfactual behind the Meta-CDN: sweep the EU
delivery capacity from "Apple alone" to "Meta-CDN with both third
parties" and measure mean completion time and the completion ratio of
release-day downloads.  The knee — where completion times detach from
the access-line bound — shows exactly how much capacity the offload
had to add.
"""

from conftest import write_output

from repro.cdn import DownloadFluidModel
from repro.net.geo import MappingRegion
from repro.workload import AdoptionModel


def _arrivals(adoption, updating):
    peak = updating / adoption.shape_integral_seconds()
    ramp = adoption.ramp_seconds
    decay = adoption.decay_seconds

    def rate(now):
        if now < 0:
            return 0.0
        if now < ramp:
            return peak * now / ramp
        import math

        return peak * math.exp(-(now - ramp) / decay)

    return rate


def _sweep(capacities, adoption, updating):
    results = {}
    arrivals = _arrivals(adoption, updating)
    for capacity in capacities:
        model = DownloadFluidModel(
            capacity_gbps=capacity, image_bytes=adoption.image_bytes
        )
        results[capacity] = model.run(
            arrivals, horizon_seconds=24 * 3600.0, step_seconds=600.0
        )
    return results


def test_bench_ablation_capacity(benchmark):
    adoption = AdoptionModel()
    updating = adoption.updating_devices(MappingRegion.EU)
    capacities = (1500.0, 2700.0, 4500.0, 7500.0, 12000.0)
    results = _sweep(capacities, adoption, updating)
    benchmark(_sweep, (2700.0,), adoption, updating)

    unloaded = DownloadFluidModel(
        capacity_gbps=1.0, image_bytes=adoption.image_bytes
    ).unloaded_completion_seconds()
    lines = [
        "Ablation — EU delivery capacity vs download experience",
        f"(release-day EU cohort: {updating / 1e6:.0f} M devices, "
        f"unloaded download {unloaded / 60:.1f} min)",
        "",
        f"    {'capacity':>10}  {'mean time':>10}  {'done in 24h':>12}  {'peak util':>10}",
    ]
    for capacity, stats in results.items():
        lines.append(
            f"    {capacity:>8.0f}G  {stats.mean_completion_seconds / 60:>8.1f}m  "
            f"{stats.completion_ratio * 100:>11.1f}%  "
            f"{stats.peak_utilization * 100:>9.1f}%"
        )
    text = "\n".join(lines)
    write_output("ablation_capacity.txt", text)
    print("\n" + text)

    # Monotone improvement with capacity...
    times = [results[c].mean_completion_seconds for c in capacities]
    assert times == sorted(times, reverse=True)
    # ...Apple-alone capacity saturates and backlogs...
    assert results[2700.0].peak_utilization > 0.99
    assert results[2700.0].completion_ratio < 0.95
    # ...while Meta-CDN-scale capacity serves near the line rate.
    assert results[7500.0].mean_completion_seconds < unloaded * 3
    assert results[7500.0].completion_ratio > 0.97
