"""Ablation: the Apple-first offload policy.

Section 5.3 concludes "Apple uses its own CDN first before offloading".
This bench compares that policy with two alternatives — a proportional
split and a third-party-first policy — on the same event demand, and
measures (a) how much traffic each hands to third parties over the
event, and (b) Apple's own peak utilisation.  Apple-first minimises the
(paid) third-party volume while running its own CDN hot, which is the
commercial logic the paper attributes to the design.
"""

from conftest import write_output

from repro.apple.policy import MetaCdnController
from repro.net.geo import MappingRegion
from repro.simulation import ScenarioConfig, Sep2017Scenario
from repro.workload import TIMELINE

_STEP = 1800.0


def _apple_share(policy, controller, demand):
    """Apple's kept share under one of the three policies."""
    usable = controller.capacity(MappingRegion.EU) * controller.target_utilization
    if policy == "apple-first":
        return min(1.0, usable / demand) if demand > 0 else 1.0
    if policy == "proportional":
        # Split by capacity share assuming third parties bring ~2x
        # Apple's capacity to the table.
        return usable / (usable * 3.0)
    if policy == "third-party-first":
        # Third parties absorb everything they plausibly can (2x
        # Apple's capacity); Apple takes only the remainder.
        third_capacity = usable * 2.0
        if demand <= third_capacity:
            return 0.0
        return min(1.0, (demand - third_capacity) / demand)
    raise ValueError(policy)


def _run_policy(scenario, policy):
    controller = scenario.estate.controller
    start = TIMELINE.at(9, 18)
    end = TIMELINE.at(9, 22)
    offloaded = 0.0
    total = 0.0
    peak_utilization = 0.0
    now = start
    usable = controller.capacity(MappingRegion.EU) * controller.target_utilization
    while now < end:
        demand = scenario.demand.demand_gbps(MappingRegion.EU, now)
        share = _apple_share(policy, controller, demand)
        apple_gbps = min(demand * share, usable)
        offloaded += (demand - apple_gbps) * _STEP
        total += demand * _STEP
        peak_utilization = max(peak_utilization, apple_gbps / usable)
        now += _STEP
    return offloaded / total, peak_utilization


def test_bench_ablation_offload_policy(benchmark):
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    results = {
        policy: _run_policy(scenario, policy)
        for policy in ("apple-first", "proportional", "third-party-first")
    }
    benchmark(_run_policy, scenario, "apple-first")

    lines = ["Ablation — offload policy comparison (EU, Sep 18-22)", ""]
    for policy, (offload_share, peak_util) in results.items():
        lines.append(
            f"    {policy:<18} offloaded {offload_share * 100:5.1f}% of volume, "
            f"Apple peak utilisation {peak_util * 100:5.1f}%"
        )
    text = "\n".join(lines)
    write_output("ablation_policy.txt", text)
    print("\n" + text)

    # Apple-first pays for the least third-party delivery...
    assert results["apple-first"][0] < results["proportional"][0]
    assert results["apple-first"][0] < results["third-party-first"][0]
    # ...while running its own CDN at high capacity (the §5.3 signature).
    assert results["apple-first"][1] > 0.99
