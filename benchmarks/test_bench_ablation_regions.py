"""Ablation: per-region third-party selection vs a uniform policy.

The Meta-CDN selects third-party CDNs per mapping region (us/eu/apac
load balancers with region-specific CDN lists and shares).  This bench
compares the measured regional design against a uniform worldwide split
on one metric an operator cares about: client-to-cache distance of the
third-party answers (regional selection keeps Limelight's APAC clients
on the APAC handover, etc.).
"""

import statistics

from conftest import write_output

from repro.dns.query import QueryContext
from repro.net.geo import Continent, Coordinates, MappingRegion, great_circle_km
from repro.net.ipv4 import IPv4Address
from repro.simulation import ScenarioConfig, Sep2017Scenario
from repro.workload import TIMELINE

_CLIENTS = (
    (Continent.EUROPE, "de", (50.11, 8.68)),
    (Continent.NORTH_AMERICA, "us", (40.71, -74.0)),
    (Continent.ASIA, "jp", (35.67, 139.65)),
    (Continent.OCEANIA, "au", (-33.87, 151.21)),
)


def _median_distance(scenario, regional):
    """Median client->answer distance for third-party resolutions."""
    estate = scenario.estate
    for region in MappingRegion:
        estate.controller.observe_demand(region, 1e6)  # force third-party
    server_coords = {}
    for deployment in (estate.akamai, estate.limelight):
        for placed in deployment.servers:
            server_coords[placed.server.address] = placed.location.coordinates
    distances = []
    try:
        for host in range(60):
            for continent, country, coords in _CLIENTS:
                query_coords = coords if regional else (50.11, 8.68)
                context = QueryContext(
                    client=IPv4Address.parse(f"198.51.{host}.3"),
                    coordinates=Coordinates(*query_coords),
                    continent=continent if regional else Continent.EUROPE,
                    country=country if regional else "de",
                    now=TIMELINE.at(9, 19, 20),
                )
                resolution = estate.resolver(cache=False).resolve(
                    estate.names.entry_point, context
                )
                client_location = Coordinates(*coords)
                for address in resolution.addresses:
                    if address in server_coords:
                        distances.append(
                            great_circle_km(client_location, server_coords[address])
                        )
    finally:
        for region in MappingRegion:
            estate.controller.observe_demand(region, 0.0)
    return statistics.median(distances)


def test_bench_ablation_regional_selection(benchmark):
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    regional = _median_distance(scenario, regional=True)
    uniform = _median_distance(scenario, regional=False)
    benchmark(_median_distance, scenario, True)

    lines = [
        "Ablation — regional vs uniform third-party selection",
        "",
        f"    regional (us/eu/apac lbs): median distance {regional:8.0f} km",
        f"    uniform (everyone as EU):  median distance {uniform:8.0f} km",
    ]
    text = "\n".join(lines)
    write_output("ablation_regions.txt", text)
    print("\n" + text)

    # Regional selection serves clients from much closer caches.
    assert regional < uniform * 0.7
