"""Ablation: the 15-second TTL on the Meta-CDN selection CNAME.

DESIGN.md calls out the selection TTL as the knob enabling quick
reroutes.  This bench sweeps the TTL and measures how long a cached
client population takes to follow an offload decision made at t=0:
clients honour their cached CNAME until it expires, so the reroute
delay is governed by the TTL — near-instant at the measured 15 s,
minutes at coarser TTLs.
"""

from conftest import write_output

from repro.apple.policy import MetaCdnController, OffloadCnamePolicy
from repro.dns.policies import stable_fraction
from repro.dns.query import QueryContext
from repro.net.geo import Continent, Coordinates, MappingRegion
from repro.net.ipv4 import IPv4Address

_CLIENTS = 400


def _make_policy(ttl):
    controller = MetaCdnController(
        {MappingRegion.EU: 100.0},
        target_utilization=1.0,
        min_third_party_share=0.0,
    )
    policy = OffloadCnamePolicy(controller=controller, ttl=ttl)
    controller.observe_demand(MappingRegion.EU, 400.0)  # keep only 25 %
    return policy


def _share_on_apple(policy, ttl, now):
    """Population share still on Apple's CDN at ``now``.

    Before t=0 every client resolved to Apple (no load).  Each client's
    cached answer expires at a staggered offset within one TTL; only
    after expiry does it see the post-flip selection.
    """
    on_apple = 0
    for host in range(_CLIENTS):
        expiry = stable_fraction("stagger", host) * ttl
        if now < expiry:
            on_apple += 1  # stale cached answer still points at Apple
            continue
        context = QueryContext(
            client=IPv4Address.parse(f"10.{host // 256}.{host % 256}.7"),
            coordinates=Coordinates(50.0, 8.0),
            continent=Continent.EUROPE,
            country="de",
            now=now,
        )
        if policy.select("appldnld.g.applimg.com", context).endswith(
            "gslb.applimg.com"
        ):
            on_apple += 1
    return on_apple / _CLIENTS


def _reroute_delay(ttl):
    """Seconds until at least half the population followed the reroute."""
    policy = _make_policy(ttl)
    for elapsed in range(0, 3600, 5):
        if _share_on_apple(policy, ttl, float(elapsed)) <= 0.5:
            return float(elapsed)
    return 3600.0


def test_bench_ablation_selection_ttl(benchmark):
    delays = {ttl: _reroute_delay(ttl) for ttl in (15, 60, 300, 900)}
    benchmark(_reroute_delay, 15)

    lines = ["Ablation — selection-CNAME TTL vs offload reaction", ""]
    for ttl, delay in delays.items():
        lines.append(f"    TTL {ttl:>4}s -> >=50% rerouted after {delay:6.0f}s")
    text = "\n".join(lines)
    write_output("ablation_ttl.txt", text)
    print("\n" + text)

    # The measured 15 s TTL reacts fastest; reaction degrades with TTL.
    assert delays[15] <= delays[60] <= delays[300] <= delays[900]
    assert delays[15] <= 30.0
    assert delays[900] >= 180.0
