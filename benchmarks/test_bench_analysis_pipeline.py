"""Analysis-pipeline throughput: columnar streaming vs the object scan.

Builds a 500k-measurement DNS history once, then times the Figure 4/5
windowed unique-IP aggregation two ways —

* **seed**: the pre-columnar consumer pattern — materialize the full
  history as a tuple of measurement objects (what ``store.dns`` used to
  return), scan every object, then keep the bins inside the window;
* **columnar**: :func:`windowed_unique_ip_series` on the segmented
  store, which prunes segments by their time summaries and aggregates
  packed address ints without reconstructing a single object;

— and writes ``benchmarks/output/BENCH_analysis.json``.  Guards:

* ``windowed_speedup`` (seed / columnar on the windowed query) must
  hold the ≥5x floor on any host — the pruning does the work, so the
  ratio is machine-portable;
* ``full_speedup`` (seed / columnar over the full history) must stay
  within ±30% of the committed
  ``benchmarks/BENCH_analysis.baseline.json``.

A spilled variant of the same store (budget far below the dataset)
records that the resident footprint stays bounded while the windowed
query still answers from segment summaries.

Refresh the baseline by copying the output file over the committed one
after an intentional perf change and reviewing the diff.
"""

import json
import math
import pathlib
import tempfile
import time

import pytest

from repro.analysis.unique_ips import (
    UniqueIpPoint,
    unique_ip_series,
    windowed_unique_ip_series,
)
from repro.atlas.results import DnsMeasurement, MeasurementStore
from repro.net.asys import ASN
from repro.net.geo import Continent
from repro.net.ipv4 import IPv4Address

from conftest import write_json

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_analysis.baseline.json"
RATIO_TOLERANCE = 0.30
WINDOWED_FLOOR = 5.0

ROWS = 500_000
STEP_SECONDS = 5.0
BIN_SECONDS = 7200.0
# Window = the last ~10% of the run, aligned to bin edges so the seed
# path's bin filter selects exactly the same measurements.
WINDOW_START = math.floor(ROWS * STEP_SECONDS * 0.9 / BIN_SECONDS) * BIN_SECONDS
WINDOW_END = math.ceil(ROWS * STEP_SECONDS / BIN_SECONDS) * BIN_SECONDS

_CATEGORIES = ("Apple", "Akamai", "Akamai other AS",
               "Limelight", "Limelight other AS", "other")


def categorize(address: IPv4Address) -> str:
    return _CATEGORIES[address.octets[1] % len(_CATEGORIES)]


def build_measurements(rows: int = ROWS):
    """A deterministic synthetic history shaped like a real campaign.

    Address objects come from a fixed pool (campaigns re-observe the
    same caches), so the object list stays a few hundred MB below what
    distinct per-row allocations would cost.
    """
    continents = tuple(Continent)
    pool = [
        IPv4Address.parse(f"17.{(i >> 8) % 240}.{i % 256}.{1 + i % 250}")
        for i in range(4096)
    ]
    chain = ("appldnld.apple.com", "dl.apple.com")
    asns = tuple(ASN(64500 + i) for i in range(16))
    out = []
    for index in range(rows):
        first = pool[(index * 7) % len(pool)]
        addresses = (first,) if index % 3 else (first, pool[(index * 13 + 5) % len(pool)])
        out.append(
            DnsMeasurement(
                probe_id=index % 800,
                timestamp=index * STEP_SECONDS,
                target="appldnld.apple.com",
                probe_asn=asns[index % len(asns)],
                continent=continents[index % len(continents)],
                country="de",
                rcode="NOERROR",
                chain=chain,
                addresses=addresses,
            )
        )
    return out


def seed_unique_ip_series(measurements, bin_seconds=BIN_SECONDS):
    """The pre-columnar object-scan aggregation, verbatim."""
    bins = {}
    for measurement in measurements:
        bin_start = math.floor(measurement.timestamp / bin_seconds) * bin_seconds
        per_category = bins.setdefault(bin_start, {})
        for address in measurement.addresses:
            per_category.setdefault(categorize(address), set()).add(address)
    return [
        UniqueIpPoint(
            bin_start=bin_start,
            counts={
                category: len(addresses)
                for category, addresses in sorted(per_category.items())
            },
        )
        for bin_start, per_category in sorted(bins.items())
    ]


def timed(fn, repeats: int = 2):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.fixture(scope="module")
def analysis_bench():
    measurements = build_measurements()
    store = MeasurementStore(segment_rows=8192, name="bench-analysis")
    for measurement in measurements:
        store.add_dns(measurement)

    def seed_windowed():
        # Exactly what pre-columnar consumers did: copy the history out
        # of the store as objects, scan all of it, window afterwards.
        history = tuple(measurements)
        series = seed_unique_ip_series(history)
        return [
            point for point in series
            if WINDOW_START <= point.bin_start < WINDOW_END
        ]

    seed_windowed_s, seed_points = timed(seed_windowed)
    columnar_windowed_s, columnar_points = timed(
        lambda: windowed_unique_ip_series(
            store, categorize, BIN_SECONDS,
            start=WINDOW_START, end=WINDOW_END,
        )
    )
    assert columnar_points == seed_points, (
        "columnar windowed aggregation diverged from the object scan"
    )

    seed_full_s, seed_full = timed(
        lambda: seed_unique_ip_series(tuple(measurements))
    )
    columnar_full_s, columnar_full = timed(
        lambda: unique_ip_series(store, categorize, BIN_SECONDS)
    )
    assert columnar_full == seed_full

    # The same history under a budget far below its column bytes: the
    # resident footprint must stay bounded with the history on disk.
    budget = store.resident_bytes // 8
    with tempfile.TemporaryDirectory(prefix="bench-analysis-spill-") as spill:
        spilled = MeasurementStore(
            segment_rows=8192,
            memory_budget_bytes=budget,
            spill_dir=spill,
            name="bench-analysis-spill",
        )
        for measurement in measurements:
            spilled.add_dns(measurement)
        spilled_windowed_s, spilled_points = timed(
            lambda: windowed_unique_ip_series(
                spilled, categorize, BIN_SECONDS,
                start=WINDOW_START, end=WINDOW_END,
            )
        )
        assert spilled_points == seed_points
        spill_stats = {
            "budget_bytes": budget,
            "sealed_resident_bytes": spilled._sealed_resident_bytes,
            "resident_bytes": spilled.resident_bytes,
            "segments": spilled.segment_count,
            "spilled_segments": spilled.spilled_segment_count,
            "windowed_query_seconds": round(spilled_windowed_s, 4),
        }
        budget_held = spilled._sealed_resident_bytes <= budget
        spill_exercised = spilled.spilled_segment_count > 0

    results = {
        "rows": ROWS,
        "window_rows": int((WINDOW_END - WINDOW_START) / STEP_SECONDS),
        "bin_seconds": BIN_SECONDS,
        "seed_windowed_seconds": round(seed_windowed_s, 4),
        "columnar_windowed_seconds": round(columnar_windowed_s, 4),
        "windowed_speedup": round(seed_windowed_s / columnar_windowed_s, 2),
        "seed_full_seconds": round(seed_full_s, 4),
        "columnar_full_seconds": round(columnar_full_s, 4),
        "full_speedup": round(seed_full_s / columnar_full_s, 3),
        "spill": spill_stats,
        "spill_budget_held": budget_held,
        "spill_exercised": spill_exercised,
    }
    write_json("BENCH_analysis.json", results)
    return results


def test_analysis_throughput_recorded(analysis_bench):
    assert analysis_bench["rows"] == ROWS
    assert analysis_bench["columnar_windowed_seconds"] > 0
    assert analysis_bench["seed_windowed_seconds"] > 0


def test_windowed_speedup_floor(analysis_bench):
    assert analysis_bench["windowed_speedup"] >= WINDOWED_FLOOR, (
        f"windowed unique-IP query sped up only "
        f"{analysis_bench['windowed_speedup']}x over the object scan; "
        f"the columnar floor is {WINDOWED_FLOOR}x"
    )


def test_full_speedup_within_baseline(analysis_bench):
    baseline = json.loads(BASELINE_PATH.read_text())
    expected = baseline["full_speedup"]
    ratio = analysis_bench["full_speedup"] / expected
    assert (1 - RATIO_TOLERANCE) <= ratio <= (1 + RATIO_TOLERANCE), (
        f"full-history speedup {analysis_bench['full_speedup']} drifted "
        f"more than ±{RATIO_TOLERANCE:.0%} from baseline {expected}; if "
        f"intended, refresh benchmarks/BENCH_analysis.baseline.json from "
        f"benchmarks/output/BENCH_analysis.json"
    )


def test_spill_budget_bounded(analysis_bench):
    assert analysis_bench["spill_exercised"], "spill path was not exercised"
    assert analysis_bench["spill_budget_held"], (
        "sealed resident bytes exceeded the configured budget"
    )
