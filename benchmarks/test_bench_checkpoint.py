"""Checkpoint cost: write cadence overhead and save/load throughput.

Times the same bench-scale window twice — bare, and with an RCKPT
write every 16 ticks (8 sim-hours, the cadence a long replay would
actually use) — then times standalone save/load round-trips of
the final checkpoint, and writes
``benchmarks/output/BENCH_checkpoint.json`` (runtimes, per-write cost,
file size).  One portable guard: the checkpointed run must stay within
1.5× of the bare run — checkpointing is supposed to be a cadence
users leave on for long runs, not a mode they budget for.
"""

import tempfile
import time
from pathlib import Path

from repro.obs import MetricsRegistry, use_registry
from repro.simulation import (
    ScenarioConfig,
    Sep2017Scenario,
    SimulationEngine,
    load_checkpoint,
    save_checkpoint,
)
from repro.workload import TIMELINE

from conftest import write_json

START = TIMELINE.at(9, 18)
END = TIMELINE.at(9, 19)
STEP_SECONDS = 1800.0
EVERY = 16
OVERHEAD_CEILING = 1.5
ROUND_TRIPS = 5


def build_engine():
    config = ScenarioConfig(
        global_probe_count=64,
        isp_probe_count=32,
        traceroute_probe_count=8,
    )
    return SimulationEngine(Sep2017Scenario(config), step_seconds=STEP_SECONDS)


def timed_run(**kwargs):
    with use_registry(MetricsRegistry()):
        engine = build_engine()
        started = time.perf_counter()
        steps = engine.run(START, END, **kwargs)
        elapsed = time.perf_counter() - started
    return engine, steps, elapsed


def test_checkpoint_overhead_and_throughput():
    _, steps, bare = timed_run()

    with tempfile.TemporaryDirectory() as td:
        engine, _, checkpointed = timed_run(
            checkpoint_every=EVERY, checkpoint_dir=td
        )
        writes = engine.run_stats["checkpoints_written"]
        assert writes == steps // EVERY
        newest = sorted(Path(td).glob("ckpt-*.rckpt"))[-1]
        size = newest.stat().st_size

        started = time.perf_counter()
        for _ in range(ROUND_TRIPS):
            checkpoint = load_checkpoint(newest)
        load_seconds = (time.perf_counter() - started) / ROUND_TRIPS

        started = time.perf_counter()
        for _ in range(ROUND_TRIPS):
            save_checkpoint(checkpoint, newest)
        save_seconds = (time.perf_counter() - started) / ROUND_TRIPS

    overhead = checkpointed / bare
    write_json(
        "BENCH_checkpoint.json",
        {
            "steps": steps,
            "bare_seconds": round(bare, 4),
            "checkpointed_seconds": round(checkpointed, 4),
            "overhead_ratio": round(overhead, 4),
            "checkpoints_written": writes,
            "checkpoint_bytes": size,
            "save_seconds": round(save_seconds, 5),
            "load_seconds": round(load_seconds, 5),
        },
    )
    assert overhead < OVERHEAD_CEILING, (
        f"checkpointing every {EVERY} ticks cost {overhead:.2f}x "
        f"(ceiling {OVERHEAD_CEILING}x)"
    )
