"""Engine throughput: serial, batched, and sharded-parallel steps/sec.

Times the same bench-scale scenario three ways —

* **reference**: the pre-batching DNS path (``bulk=False``), the
  engine as it ran before this harness existed;
* **serial**: the vectorized bulk-resolution path, ``workers=1``;
* **parallel**: the sharded engine at ``workers=4``;

— and writes ``benchmarks/output/BENCH_engine.json``.  Two guards run
against the committed ``benchmarks/BENCH_engine.baseline.json``:

* ``bulk_speedup`` (serial / reference) is machine-portable, so it
  must stay within ±30% of the baseline ratio on any host;
* ``parallel_speedup`` (parallel / serial) only means anything with
  real cores to shard over, so the ≥2× floor is enforced when the
  host has 4+ CPUs and recorded (with the CPU count) otherwise.

Refresh the baseline by copying the output file over the committed
one after an intentional perf change and reviewing the diff.
"""

import json
import os
import pathlib
import time

import pytest

from repro.simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from repro.workload import TIMELINE

from conftest import write_json

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_engine.baseline.json"
RATIO_TOLERANCE = 0.30
PARALLEL_FLOOR = 2.0
PARALLEL_FLOOR_MIN_CPUS = 4

START, END = TIMELINE.at(9, 17), TIMELINE.at(9, 21)
STEP_SECONDS = 1800.0


def build_engine():
    config = ScenarioConfig(
        global_probe_count=160,
        isp_probe_count=80,
        global_dns_interval=1800.0,
        isp_dns_interval=43200.0,
        traceroute_probe_count=16,
    )
    return SimulationEngine(Sep2017Scenario(config), step_seconds=STEP_SECONDS)


def timed_run(workers: int = 1, bulk: bool = True):
    engine = build_engine()
    engine.scenario.global_campaign.bulk = bulk
    engine.scenario.isp_campaign.bulk = bulk
    started = time.perf_counter()
    steps = engine.run(START, END, workers=workers)
    elapsed = time.perf_counter() - started
    return steps, steps / elapsed


@pytest.fixture(scope="module")
def throughput():
    steps, reference = timed_run(workers=1, bulk=False)
    _, serial = timed_run(workers=1, bulk=True)
    _, parallel = timed_run(workers=4, bulk=True)
    cpus = os.cpu_count() or 1
    results = {
        "scenario": "bench-scale Sep 17-21, 1800 s steps",
        "steps": steps,
        "cpus": cpus,
        "reference_steps_per_sec": round(reference, 2),
        "serial_steps_per_sec": round(serial, 2),
        "parallel_steps_per_sec": round(parallel, 2),
        "bulk_speedup": round(serial / reference, 3),
        "parallel_speedup": round(parallel / serial, 3),
    }
    write_json("BENCH_engine.json", results)
    return results


def test_engine_throughput_recorded(throughput):
    assert throughput["steps"] == 192
    assert throughput["serial_steps_per_sec"] > 0
    assert throughput["parallel_steps_per_sec"] > 0


def test_bulk_speedup_within_baseline(throughput):
    baseline = json.loads(BASELINE_PATH.read_text())
    expected = baseline["bulk_speedup"]
    ratio = throughput["bulk_speedup"] / expected
    assert (1 - RATIO_TOLERANCE) <= ratio <= (1 + RATIO_TOLERANCE), (
        f"bulk speedup {throughput['bulk_speedup']} drifted more than "
        f"±{RATIO_TOLERANCE:.0%} from baseline {expected}; if intended, "
        f"refresh benchmarks/BENCH_engine.baseline.json from "
        f"benchmarks/output/BENCH_engine.json"
    )


def test_parallel_speedup_floor(throughput):
    if throughput["cpus"] < PARALLEL_FLOOR_MIN_CPUS:
        pytest.skip(
            f"host has {throughput['cpus']} CPU(s); the {PARALLEL_FLOOR}x "
            f"sharding floor needs {PARALLEL_FLOOR_MIN_CPUS}+ "
            f"(speedup recorded in BENCH_engine.json regardless)"
        )
    assert throughput["parallel_speedup"] >= PARALLEL_FLOOR
