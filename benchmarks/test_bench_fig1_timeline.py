"""Figure 1: the active measurement timeline.

Regenerates the timeline rows (campaign windows and release events) and
benchmarks timeline arithmetic, the cheapest sanity layer of the
reproduction.
"""

from conftest import write_output

from repro.workload import TIMELINE


def test_bench_fig1_timeline(benchmark):
    rows = benchmark(TIMELINE.figure1_rows)
    lines = ["Figure 1 — active measurement timeline", ""]
    for name, start, end in rows:
        span = start if start == end else f"{start} - {end}"
        lines.append(f"    {name:<14}{span}")
    text = "\n".join(lines)
    write_output("fig1_timeline.txt", text)
    print("\n" + text)

    names = {name for name, _, _ in rows}
    assert {"ripe-isp", "ripe-global", "aws-vms", "ios-11.0"} <= names
    assert dict((n, (s, e)) for n, s, e in rows)["ios-11.0"] == ("Sep 19", "Sep 19")
