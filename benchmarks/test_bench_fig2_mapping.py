"""Figure 2: the request-mapping DNS and load-sharing infrastructure.

Performs AWS-VM-style detailed recursive resolutions from all regions
(idle and overloaded, before and after the ``a1015`` rollout change),
reconstructs the CNAME graph with TTLs and operator attribution, and
checks the paper's structural findings.
"""

from conftest import write_output

from repro.analysis import MappingGraph
from repro.dns.query import QueryContext
from repro.net.geo import Continent, Coordinates, MappingRegion
from repro.net.ipv4 import IPv4Address
from repro.workload import TIMELINE

_VANTAGE = (
    (Continent.EUROPE, "de", (50.11, 8.68)),
    (Continent.NORTH_AMERICA, "us", (40.71, -74.0)),
    (Continent.ASIA, "jp", (35.67, 139.65)),
    (Continent.ASIA, "in", (19.07, 72.87)),
    (Continent.ASIA, "cn", (31.23, 121.47)),
    (Continent.OCEANIA, "au", (-33.87, 151.21)),
    (Continent.SOUTH_AMERICA, "br", (-23.55, -46.63)),
)


def _collect_resolutions(scenario):
    estate = scenario.estate
    resolutions = []
    for region in MappingRegion:
        estate.controller.observe_demand(region, 1e6)  # force offload paths
    try:
        for now in (TIMELINE.at(9, 18), TIMELINE.ios_11_0_release + 8 * 3600.0):
            for host in range(30):
                for continent, country, coords in _VANTAGE:
                    context = QueryContext(
                        client=IPv4Address.parse(f"198.51.{host}.77"),
                        coordinates=Coordinates(*coords),
                        continent=continent,
                        country=country,
                        now=now,
                    )
                    resolver = estate.resolver(cache=False)
                    resolutions.append(
                        resolver.resolve(estate.names.entry_point, context)
                    )
        # Idle instants exercise the Apple-CDN branch too.
        for region in MappingRegion:
            estate.controller.observe_demand(region, 0.0)
        for host in range(30):
            for continent, country, coords in _VANTAGE:
                context = QueryContext(
                    client=IPv4Address.parse(f"198.51.{100 + host}.77"),
                    coordinates=Coordinates(*coords),
                    continent=continent,
                    country=country,
                    now=TIMELINE.at(9, 18),
                )
                resolutions.append(
                    estate.resolver(cache=False).resolve(
                        estate.names.entry_point, context
                    )
                )
    finally:
        for region in MappingRegion:
            estate.controller.observe_demand(region, 0.0)
    return resolutions


def test_bench_fig2_mapping_graph(benchmark, bench_run):
    scenario, _, _ = bench_run
    # Primary source: the AWS-VM campaign's structured resolutions,
    # collected live during the event run (the paper's methodology);
    # supplemented with India/China vantages the nine VMs lack.
    resolutions = scenario.aws_campaign.resolutions()
    resolutions += _collect_resolutions(scenario)
    graph = benchmark(MappingGraph.from_resolutions, resolutions)
    names = scenario.estate.names
    text = graph.render()
    write_output("fig2_mapping.txt", text)
    print("\n" + text)

    # The measured TTL ladder of Figure 2.
    assert graph.ttl_of(names.entry_point, names.akadns_entry) == 21600
    assert graph.ttl_of(names.akadns_entry, names.selection) == 120
    for edge in graph.targets_of(names.selection):
        assert edge.ttl == 15
    # Three selection steps; two run by Akamai, one by Apple.
    operators = graph.selection_operators()
    counts = {}
    for operator in operators.values():
        counts[operator] = counts.get(operator, 0) + 1
    assert counts.get("Akamai", 0) >= 2
    assert counts.get("Apple", 0) >= 1
    # The rollout change is visible: both gi3 handover names occur.
    targets = {edge.target for edge in graph.targets_of(names.edgesuite)}
    assert targets == {names.akamai_primary, names.akamai_secondary}
    # India/China split.
    akadns_targets = {e.target for e in graph.targets_of(names.akadns_entry)}
    assert {names.selection, names.india_lb, names.china_lb} <= akadns_targets
    # Every chain terminates in delivery-server A records.
    for chain in graph.chains_from(names.entry_point):
        assert chain[-1] in graph.terminal_names
