"""Figure 3: Apple delivery-server locations.

Replays the Section 3.3 discovery pipeline — a 17/8-style reverse-DNS
enumeration parsed with the Table 1 grammar — and regenerates the
Figure 3 per-metro ``<sites>/<servers>`` labels.
"""

from conftest import write_output

from repro.analysis import (
    discover_sites,
    geolocate_caches,
    geolocation_errors_km,
)
from repro.net.geo import Continent


def test_bench_fig3_site_discovery(benchmark, bench_run):
    scenario, _, _ = bench_run
    ptr_table = scenario.estate.apple.reverse_dns_table()
    discovery = benchmark(discover_sites, ptr_table)
    text = discovery.render()

    # Corroborate the locations with the traceroute campaign's min-RTT
    # geolocation, as the paper's hourly traceroutes did.
    traces = scenario.traceroute_campaign.store.traceroutes
    estimates = geolocate_caches(traces, scenario.global_probes)
    truth = {}
    for deployment in scenario.estate.deployments.values():
        for placed in deployment.servers:
            truth[placed.server.address] = placed.location.coordinates
    errors = geolocation_errors_km(estimates, truth)
    if errors:
        median_error = errors[len(errors) // 2]
        text += (
            f"\n\ntraceroute corroboration: {len(estimates)} caches "
            f"geolocated, median error {median_error:.0f} km"
        )
        # Min-RTT bounds caches to the right area (16 tracing probes
        # at bench scale; the paper had hundreds).
        assert median_error < 2200.0
    write_output("fig3_sites.txt", text)
    print("\n" + text)

    # The paper's headline: 34 edge sites.
    assert discovery.site_count == 34
    assert discovery.total_edge_bx == 1072
    # Density ordering: USA > Europe > East Asia; nothing in SA/Africa.
    counts = discovery.continent_site_counts(scenario.locations)
    assert counts[Continent.NORTH_AMERICA] > counts[Continent.EUROPE]
    assert counts[Continent.EUROPE] > counts.get(Continent.ASIA, 0)
    assert Continent.SOUTH_AMERICA not in counts
    assert Continent.AFRICA not in counts
    # Every vip fronts exactly four edge-bx (Section 3.3).
    for record in discovery.sites.values():
        assert record.edge_bx_count == record.vip_count * 4
