"""Figure 4: unique CDN cache IPs, worldwide measurement.

Regenerates the per-continent unique-IP series from the global probe
campaign and checks the paper's findings: only Europe spikes after the
release (the paper saw 977 IPs vs a 191 pre-event average); the spike
is mostly Limelight plus Akamai-in-other-ASs; Apple's count stays flat;
North America has the highest Apple-IP ratio, South America and Africa
the highest third-party ratios.
"""

from conftest import write_output

from repro.analysis import (
    CdnCategorizer,
    peak_vs_baseline,
    series_by_continent,
)
from repro.analysis.unique_ips import format_series
from repro.net.geo import Continent
from repro.workload import TIMELINE


def test_bench_fig4_unique_ips(benchmark, bench_run):
    scenario, _, _ = bench_run
    categorizer = CdnCategorizer(scenario.estate.deployments)
    measurements = scenario.global_campaign.store.dns

    facets = benchmark(
        series_by_continent, measurements, categorizer.category, 7200.0
    )

    release = TIMELINE.ios_11_0_release
    lines = ["Figure 4 — unique CDN cache IPs by continent", ""]
    ratios = {}
    for continent, series in facets.items():
        if not series:
            continue
        peak, baseline = peak_vs_baseline(series, release)
        ratios[continent] = peak / baseline if baseline else 0.0
        lines.append(
            f"    {continent.value:<16} pre-avg {baseline:7.1f}   "
            f"post-peak {peak:5d}   ratio {ratios[continent]:.2f}x"
        )
    europe = facets[Continent.EUROPE]
    peak_bin = max(
        (p for p in europe if p.bin_start >= release), key=lambda p: p.total
    )
    lines.append("")
    lines.append(
        "    Europe peak bin composition: "
        + ", ".join(f"{k}={v}" for k, v in sorted(peak_bin.counts.items()))
    )
    # The Europe facet in full, release day +/- 1 day.
    lines.append("")
    lines.append("Europe facet (2h bins, Sep 18-21):")
    window = [
        point for point in europe
        if TIMELINE.at(9, 18) <= point.bin_start < TIMELINE.at(9, 21)
    ]
    lines.append(
        format_series(
            window,
            label_time=lambda t: TIMELINE.datetime(t).strftime("%b%d %Hh"),
        )
    )
    text = "\n".join(lines)
    write_output("fig4_global_ips.txt", text)
    print("\n" + text)

    # Europe is the only continent with a pronounced spike (paper: >4x).
    assert ratios[Continent.EUROPE] > 2.5
    for continent, ratio in ratios.items():
        if continent is not Continent.EUROPE:
            assert ratio < ratios[Continent.EUROPE]
    # The spike is mostly Limelight (plus Akamai in other ASs).
    limelight = peak_bin.count("Limelight") + peak_bin.count("Limelight other AS")
    assert limelight > peak_bin.count("Apple")
    assert peak_bin.count("Akamai other AS") > 0
    # Apple's own count does not react to the event.
    apple_series = [p.count("Apple") for p in europe]
    apple_pre = max(p.count("Apple") for p in europe if p.bin_start < release)
    assert max(apple_series) <= apple_pre * 1.5
    # NA has the highest Apple ratio; SA/Africa the highest third-party.
    def apple_ratio(continent):
        series = facets[continent]
        totals = sum(p.total for p in series)
        apple = sum(p.count("Apple") for p in series)
        return apple / totals if totals else 0.0

    assert apple_ratio(Continent.NORTH_AMERICA) > apple_ratio(Continent.EUROPE)
    assert apple_ratio(Continent.SOUTH_AMERICA) < apple_ratio(Continent.NORTH_AMERICA)
    assert apple_ratio(Continent.AFRICA) < apple_ratio(Continent.NORTH_AMERICA)
