"""Figure 5: unique CDN cache IPs inside the European eyeball ISP.

The long-window ISP campaign (12-hourly probes) around both the iOS
11.0 release and the iOS 11.1 echo.  Paper findings checked: Akamai's
IP count rises ~408 % from Sep 18 to Sep 20; Apple's stays stable
throughout; a smaller bump accompanies iOS 11.1 at the end of October.
"""

from conftest import write_output

from repro.analysis import CdnCategorizer, count_change_ratio, unique_ip_series
from repro.workload import TIMELINE


def test_bench_fig5_isp_unique_ips(benchmark, fig5_run):
    scenario, _ = fig5_run
    categorizer = CdnCategorizer(scenario.estate.deployments)
    measurements = scenario.isp_campaign.store.dns

    series = benchmark(
        unique_ip_series, measurements, categorizer.category, 43200.0
    )

    lines = ["Figure 5 — unique CDN cache IPs, eyeball-ISP measurement", ""]
    for point in series:
        when = TIMELINE.datetime(point.bin_start).strftime("%b %d %Hh")
        counts = ", ".join(f"{k}={v}" for k, v in sorted(point.counts.items()))
        lines.append(f"    {when}: total={point.total:4d}  ({counts})")
    akamai_rise = count_change_ratio(
        series, "Akamai", TIMELINE.at(9, 18), TIMELINE.at(9, 20)
    )
    lines.append("")
    lines.append(f"    Akamai IP rise Sep 18 -> Sep 20: {akamai_rise:.2f}x "
                 "(paper: 4.08x)")
    text = "\n".join(lines)
    write_output("fig5_isp_ips.txt", text)
    print("\n" + text)

    # Akamai count rises sharply around the release (paper: 408%).
    assert akamai_rise is not None and akamai_rise > 1.5
    # Apple's count is stable over the entire window.
    apple_counts = [point.count("Apple") for point in series]
    assert max(apple_counts) <= min(c for c in apple_counts if c) * 1.5
    # The iOS 11.1 release produces a visible (smaller) echo.
    release_11_0 = TIMELINE.ios_11_0_release
    release_11_1 = TIMELINE.ios_11_1_release
    def window_peak(center):
        return max(
            (p.total for p in series
             if center - 86400.0 <= p.bin_start < center + 2 * 86400.0),
            default=0,
        )
    quiet = max(
        (p.total for p in series
         if TIMELINE.at(10, 10) <= p.bin_start < TIMELINE.at(10, 20)),
        default=0,
    )
    assert window_peak(release_11_0) > quiet
    assert window_peak(release_11_1) > quiet
    assert window_peak(release_11_1) <= window_peak(release_11_0)
