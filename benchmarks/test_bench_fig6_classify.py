"""Figure 6: offload and overflow from the ISP's perspective.

Figure 6 is the definitional illustration; its reproduction is the
classification itself.  This bench regenerates the offload/overflow
breakdown over the full flow trace and benchmarks classification
throughput (the paper's pipeline chewed ~300 billion records; ours is
scaled, so throughput is the relevant metric).
"""

from conftest import write_output

from repro.isp import TrafficClassifier


def test_bench_fig6_classification(benchmark, bench_run):
    scenario, _, _ = bench_run
    classifier = TrafficClassifier(scenario.isp, scenario.rib, scenario.operator_of)
    records = scenario.netflow.records

    def classify_all():
        return list(classifier.classify_all(records))

    classified = benchmark(classify_all)

    total = sum(c.flow.bytes for c in classified)
    offload = sum(c.flow.bytes for c in classified if c.is_offload)
    overflow = sum(c.flow.bytes for c in classified if c.is_overflow)
    both = sum(
        c.flow.bytes for c in classified if c.is_offload and c.is_overflow
    )
    lines = [
        "Figure 6 — offload / overflow classification",
        "",
        f"    flow records analysed: {len(classified)}",
        f"    total volume:    {total / 1e15:8.2f} PB",
        f"    offload share:   {offload / total * 100:6.1f}%",
        f"    overflow share:  {overflow / total * 100:6.1f}%",
        f"    both (offload+overflow): {both / total * 100:6.1f}%",
    ]
    text = "\n".join(lines)
    write_output("fig6_classify.txt", text)
    print("\n" + text)

    assert classified
    # Orthogonality: some traffic is both, neither is empty.
    assert 0 < offload < total
    assert 0 < overflow < total
    assert both > 0
    # Every overflow flow has source != handover by definition.
    for item in classified:
        if item.is_overflow:
            assert item.source_asn != item.handover_asn
