"""Figure 7: update traffic by Source AS during the iOS update.

Regenerates the per-CDN traffic-ratio series (100 % = the CDN's own
peak over the three pre-release days) and the excess-volume splits.
Paper headlines: Apple peaks at 211 %, Limelight at 438 %, Akamai at
113 %; Sep 19 excess splits 33/44/23 (Apple/Limelight/Akamai); on
Sep 20-21 the bulk is Apple (~60 %) and Limelight (~40 %) with no
additional Akamai; Apple runs at high capacity while the others show a
diurnal pattern — i.e. Apple uses its own CDN first before offloading.
"""

from conftest import write_output

from repro.analysis import (
    classify_flatness,
    operator_series,
    summarize_offload,
    traffic_ratio_series,
)
from repro.workload import TIMELINE


def _series_rows(classified, release_day):
    """The Figure 7 panels as daily-peak ratio rows per operator."""
    series = operator_series(classified, bin_seconds=3600.0)
    ratios = traffic_ratio_series(series, release_day - 3 * 86400.0, release_day)
    operators = sorted(ratios)
    days = sorted(
        {TIMELINE.day_start(t) for points in ratios.values() for t, _ in points}
    )
    rows = [f"    {'date':<8}" + "".join(f"{op:>12}" for op in operators)]
    for day in days:
        row = f"    {TIMELINE.date_label(day):<8}"
        for operator in operators:
            daily_peak = max(
                (r for t, r in ratios[operator] if day <= t < day + 86400.0),
                default=0.0,
            )
            row += f"{daily_peak * 100:>11.0f}%"
        rows.append(row)
    return "\n".join(rows)


def test_bench_fig7_offload(benchmark, bench_run):
    scenario, _, classified = bench_run
    release_day = TIMELINE.at(9, 19)

    summary = benchmark(summarize_offload, classified, release_day)
    text = summary.render()
    text += "\n\ndaily peak ratio by Source-AS operator:\n"
    text += _series_rows(classified, release_day)
    # §5.3: Apple runs near capacity on Sep 20; the others stay diurnal.
    bins = operator_series(classified, bin_seconds=3600.0)
    verdict = classify_flatness(
        bins, TIMELINE.at(9, 20), pinned_threshold=0.5, diurnal_threshold=0.45
    )
    text += "\n\n" + verdict.render(label_time=TIMELINE.date_label)
    paper = (
        "\n    paper reference: Apple 211% / Limelight 438% / Akamai 113%;"
        "\n    Sep 19 excess 33/44/23; Sep 20 ~60/40 Apple/Limelight."
    )
    write_output("fig7_offload.txt", text + paper)
    print("\n" + text + paper)

    peaks = summary.ratio_peaks
    # Ordering and rough magnitudes of the paper's 211/438/113.
    assert peaks["Limelight"] > peaks["Apple"] > peaks["Akamai"]
    assert 1.7 <= peaks["Apple"] <= 2.6
    assert 3.2 <= peaks["Limelight"] <= 5.5
    assert 1.0 <= peaks["Akamai"] <= 1.5

    shares = summary.excess_shares_release_day
    # Paper: Limelight 44% > Apple 33% > Akamai 23%.
    assert shares["Limelight"] > shares["Apple"] > shares["Akamai"] > 0.05

    after = summary.excess_shares_day_after
    # Paper: ~60/40 Apple/Limelight, no additional Akamai.
    assert after["Apple"] > after["Limelight"]
    assert after.get("Akamai", 0.0) < 0.12

    # The §5.3 flatness reading holds.
    assert "Apple" in verdict.pinned_operators
    assert "Limelight" in verdict.diurnal_operators
