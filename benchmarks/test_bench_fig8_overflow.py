"""Figure 8: overflow by handover AS during the iOS update.

Regenerates Limelight's overflow-share series per handover AS.  Paper
headlines: a stable handover distribution before the update; AS A
spiking on Sep 19 (interpreted as the pre-cache fill); AS D — never
seen before — delivering more than 40 % of the overflow once actual
delivery starts, fully saturating two of its four links; the normal
pattern returning after about three days.
"""

from conftest import write_output

from repro.analysis import overflow_share_series, summarize_overflow
from repro.isp import bill_impact
from repro.simulation import AS_TRANSIT_A, AS_TRANSIT_D
from repro.workload import TIMELINE


def test_bench_fig8_overflow(benchmark, bench_run):
    scenario, _, classified = bench_run
    release = TIMELINE.ios_11_0_release

    summary = benchmark(
        summarize_overflow,
        classified,
        AS_TRANSIT_D,
        scenario.isp,
        scenario.snmp,
        [release + hour * 3600.0 for hour in range(72)],
    )
    # The §5.4 commercial coda: AS D's 95/5 bill.
    impact = bill_impact(
        scenario.snmp,
        [link.link_id for link in scenario.isp.links_for(AS_TRANSIT_D)],
        baseline_start=TIMELINE.at(9, 15),
        event_start=TIMELINE.at(9, 19),
        event_end=TIMELINE.at(9, 22),
    )
    text = summary.render(label_time=TIMELINE.date_label)
    text += f"\nAS D {impact.render()}"
    paper = (
        "\n    paper reference: AS D unseen before the event, >40% of"
        "\n    overflow at delivery peak, 2 of its 4 links saturated,"
        "\n    normal pattern back after ~3 days; 95/5 billing implies"
        "\n    a multifold bill increase for AS D."
    )
    write_output("fig8_overflow.txt", text + paper)
    print("\n" + text + paper)

    # AS D carried nothing before the event: the bill effect is maximal.
    assert impact.baseline_gbps == 0.0
    assert impact.with_event_gbps > 10.0

    # AS D appears only with the event...
    assert summary.new_as_first_seen is not None
    assert summary.new_as_first_seen >= release - 21600.0
    # ...carries >40% of the overflow...
    assert summary.new_as_peak_share > 0.4
    # ...and saturates exactly two of its four links.
    d_links = {f"transit-d-{i}" for i in range(1, 5)}
    saturated_d = d_links & set(summary.saturated_links)
    assert saturated_d == {"transit-d-1", "transit-d-2"}

    # The AS-A pre-cache-fill spike on release day.
    series = summary.series
    before = [s.get(AS_TRANSIT_A, 0.0) for t, s in series
              if release - 3 * 86400.0 <= t < release - 21600.0]
    spike = [s.get(AS_TRANSIT_A, 0.0) for t, s in series
             if release - 21600.0 <= t < release + 21600.0]
    assert max(spike) > max(before) * 1.5

    # Normal pattern returns: D's share in the last pre-window bins is
    # far below its peak.
    tail = [s.get(AS_TRANSIT_D, 0.0) for t, s in series
            if t >= release + 4 * 86400.0]
    if tail:
        assert max(tail) < summary.new_as_peak_share / 2
