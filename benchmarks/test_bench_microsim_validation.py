"""Validation bench: agent-level behaviour vs the fluid controller.

Sweeps the EU demand level and compares, at each level, the Apple share
the Meta-CDN controller dictates with the share a population of real
device agents (manifest polls, DNS resolution, downloads) actually
experiences.  Agreement across the sweep is the evidence that the
aggregate engine and the per-device mechanisms tell one story.
"""

from conftest import write_output

from repro.net.geo import MappingRegion
from repro.simulation import MicroSimulation, ScenarioConfig, Sep2017Scenario
from repro.workload import TIMELINE


def _agent_share(scenario, demand_gbps, seed):
    scenario.estate.controller.observe_demand(MappingRegion.EU, demand_gbps)
    try:
        sim = MicroSimulation(
            scenario, agent_count=250, mean_adoption_delay=1200.0, seed=seed
        )
        release = TIMELINE.ios_11_0_release
        stats = sim.run(
            release - 3600.0,
            release + 6 * 3600.0,
            release_time=release,
            step_seconds=900.0,
        )
        return stats.operator_share("Apple")
    finally:
        scenario.estate.controller.observe_demand(MappingRegion.EU, 0.0)


def test_bench_microsim_validation(benchmark):
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    controller = scenario.estate.controller
    levels = (0.0, 3000.0, 5000.0, 8000.0, 12000.0)
    rows = []
    for seed, demand in enumerate(levels, start=1):
        controller.observe_demand(MappingRegion.EU, demand)
        dictated = controller.apple_share(MappingRegion.EU)
        observed = _agent_share(scenario, demand, seed)
        rows.append((demand, dictated, observed))
    benchmark(_agent_share, scenario, 5000.0, 99)

    lines = [
        "Validation — controller-dictated vs agent-observed Apple share",
        "",
        f"    {'EU demand':>10}  {'dictated':>9}  {'observed':>9}",
    ]
    for demand, dictated, observed in rows:
        lines.append(
            f"    {demand:>8.0f}G  {dictated * 100:>8.1f}%  {observed * 100:>8.1f}%"
        )
    text = "\n".join(lines)
    write_output("microsim_validation.txt", text)
    print("\n" + text)

    for demand, dictated, observed in rows:
        assert abs(dictated - observed) < 0.12, demand
    # The sweep actually exercises the offload knee.
    shares = [dictated for _, dictated, _ in rows]
    assert max(shares) > 0.6 and min(shares) < 0.35
