"""Wire-level tracing overhead guard (BENCH_obs.json).

The tentpole contract for the observability plane: full tracing —
EDNS0 trace options on every DNS query, traceparent headers on every
fetch, span emission at every hop, 100% sampling — must stay within a
small constant factor of the untraced serving path.  This bench runs
the in-process selftest cluster twice:

* ``disabled`` — null tracer, ``trace_sample`` irrelevant (the
  shipped default for load runs);
* ``enabled``  — live ``EventTracer`` at ``trace_sample=1.0``, so
  every request pays the full encode/decode/span cost.

Results land in ``benchmarks/output/BENCH_obs.json`` with the latency
percentile panel from each run; the guard asserts the enabled/disabled
wall-clock ratio stays under a generous ceiling (tracing is bookkeeping
plus ~17 wire bytes, not a second serving path).
"""

import time

from repro.obs import NULL_TRACER, EventTracer, MetricsRegistry
from repro.serve import selftest

from conftest import write_json

_REQUESTS = 1500
_CONCURRENCY = 32
_REPEATS = 3
_MAX_RATIO = 2.5


def _run_once(tracer, trace_sample: float):
    registry = MetricsRegistry()
    t0 = time.perf_counter()
    report, registry = selftest(
        requests=_REQUESTS,
        concurrency=_CONCURRENCY,
        registry=registry,
        tracer=tracer,
        trace_sample=trace_sample,
    )
    elapsed = time.perf_counter() - t0
    http = registry.get("serve_http_handle_seconds")
    panel = http.labels().percentile_summary() if http is not None else {}
    return report, elapsed, {k: v * 1000.0 for k, v in panel.items()}


def _best_of(build_tracer, trace_sample: float):
    best = None
    for _ in range(_REPEATS):
        report, elapsed, panel = _run_once(build_tracer(), trace_sample)
        assert report.errors == 0
        if best is None or elapsed < best[0]:
            best = (elapsed, report, panel)
    return best


def test_bench_obs_overhead():
    disabled = _best_of(lambda: NULL_TRACER, trace_sample=1.0)
    enabled = _best_of(lambda: EventTracer(capacity=65536), trace_sample=1.0)

    ratio = enabled[0] / disabled[0]
    payload = {
        "requests": _REQUESTS,
        "concurrency": _CONCURRENCY,
        "repeats": _REPEATS,
        "disabled": {
            "elapsed_seconds": round(disabled[0], 4),
            "rps": round(_REQUESTS / disabled[0], 1),
            "http_handle_ms": {
                k: round(v, 4) for k, v in disabled[2].items()
            },
        },
        "enabled": {
            "elapsed_seconds": round(enabled[0], 4),
            "rps": round(_REQUESTS / enabled[0], 1),
            "http_handle_ms": {
                k: round(v, 4) for k, v in enabled[2].items()
            },
        },
        "enabled_disabled_ratio": round(ratio, 3),
        "max_ratio": _MAX_RATIO,
    }
    write_json("BENCH_obs.json", payload)

    assert ratio <= _MAX_RATIO, payload
