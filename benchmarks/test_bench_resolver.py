"""Resolver-population overhead: the shared POP caches on the hot path.

Times the same bench-scale window twice —

* **isp**: every probe on its own per-client resolver context, the
  engine as the other benches run it;
* **public**: every probe routed through the shared public-resolver
  POP caches (ECS on, /24 announcements);

— and writes ``benchmarks/output/BENCH_resolver.json``.  The guard
compares ``overhead_ratio`` (public / isp steps per second) against
the committed ``benchmarks/BENCH_resolver.baseline.json``: the shared
caches *save* upstream resolutions, so routing through them must never
silently become a tax.  The ratio is machine-portable (same host, same
run, divided out), so it must stay within ±30% of the baseline.

The mapping-accuracy numbers the population exists for (cache-hit
dilution, mis-mapping delta) are recorded alongside and sanity-checked
for a nonzero effect — drift in their exact values is the golden
snapshot's job, not the bench's.

Refresh the baseline by copying the output file over the committed
one after an intentional perf change and reviewing the diff.
"""

import json
import os
import pathlib
import time

import pytest

from repro.analysis import ResolverAccuracy
from repro.simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from repro.workload import TIMELINE

from conftest import write_json

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_resolver.baseline.json"
RATIO_TOLERANCE = 0.30

START, END = TIMELINE.at(9, 17), TIMELINE.at(9, 20)
STEP_SECONDS = 1800.0


def timed_run(population: str):
    config = ScenarioConfig(
        global_probe_count=160,
        isp_probe_count=80,
        global_dns_interval=1800.0,
        isp_dns_interval=43200.0,
        traceroute_probe_count=16,
        resolver_population=population,
    )
    scenario = Sep2017Scenario(config)
    engine = SimulationEngine(scenario, step_seconds=STEP_SECONDS)
    started = time.perf_counter()
    steps = engine.run(START, END)
    elapsed = time.perf_counter() - started
    return scenario, steps, steps / elapsed


@pytest.fixture(scope="module")
def resolver_bench():
    _, steps, isp_rate = timed_run("isp")
    scenario, _, public_rate = timed_run("public")
    accuracy = ResolverAccuracy.from_scenario(scenario)
    results = {
        "scenario": "bench-scale Sep 17-20, 1800 s steps",
        "steps": steps,
        "cpus": os.cpu_count() or 1,
        "isp_steps_per_sec": round(isp_rate, 2),
        "public_steps_per_sec": round(public_rate, 2),
        "overhead_ratio": round(public_rate / isp_rate, 3),
        "public_hit_ratio": round(accuracy.public_hit_ratio, 4),
        "cache_hit_dilution": round(accuracy.cache_hit_dilution, 4),
        "public_mismap_delta_km": round(accuracy.public_mismap_delta_km, 1),
        "isp_mismap_delta_km": round(accuracy.isp_mismap_delta_km, 1),
    }
    write_json("BENCH_resolver.json", results)
    return results


def test_resolver_bench_recorded(resolver_bench):
    assert resolver_bench["steps"] == 144
    assert resolver_bench["isp_steps_per_sec"] > 0
    assert resolver_bench["public_steps_per_sec"] > 0


def test_population_effects_are_nonzero(resolver_bench):
    # The axis only earns its keep if shared caches visibly move the
    # paper's metrics at bench scale.
    assert resolver_bench["public_hit_ratio"] > 0.0
    assert resolver_bench["cache_hit_dilution"] != 0.0
    assert (
        resolver_bench["public_mismap_delta_km"]
        != resolver_bench["isp_mismap_delta_km"]
    )


def test_overhead_ratio_within_baseline(resolver_bench):
    baseline = json.loads(BASELINE_PATH.read_text())
    expected = baseline["overhead_ratio"]
    ratio = resolver_bench["overhead_ratio"] / expected
    assert (1 - RATIO_TOLERANCE) <= ratio <= (1 + RATIO_TOLERANCE), (
        f"resolver overhead ratio {resolver_bench['overhead_ratio']} "
        f"drifted more than ±{RATIO_TOLERANCE:.0%} from baseline "
        f"{expected}; if intended, refresh "
        f"benchmarks/BENCH_resolver.baseline.json from "
        f"benchmarks/output/BENCH_resolver.json"
    )
