"""The reproduction scoreboard: every paper target checked in one pass.

This is the closing bench: it evaluates all headline quantities from
the shared event run against their accepted bands and fails if any
target leaves its band — the single signal that the reproduction holds.
"""

from conftest import write_output

from repro.analysis.scoreboard import evaluate_scoreboard, render_scoreboard


def test_bench_scoreboard(benchmark, bench_run):
    scenario, _, classified = bench_run
    checks = benchmark(evaluate_scoreboard, scenario, classified)
    text = render_scoreboard(checks)
    write_output("scoreboard.txt", text)
    print("\n" + text)

    assert checks, "scoreboard must evaluate targets"
    failing = [check.name for check in checks if not check.passed]
    assert not failing, f"targets out of band: {failing}"
    # Every declared target was actually measured.
    from repro.analysis.scoreboard import PAPER_TARGETS

    assert {check.name for check in checks} == set(PAPER_TARGETS)
