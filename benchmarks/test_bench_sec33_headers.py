"""Section 3.3: edge-site structure inference from HTTP headers.

Downloads images through the modelled edge sites, collects the Via /
X-Cache headers, and re-derives the internal structure exactly as the
paper did: vip -> four edge-bx -> edge-lx -> CloudFront origin, running
Apache Traffic Server.
"""

from conftest import write_output

from repro.analysis import infer_hierarchy
from repro.http.messages import Headers, HttpRequest


def _download_samples(scenario, requests_per_vip=16):
    apple = scenario.estate.apple
    samples = []
    for site in apple.sites[:6]:
        for vip in site.vip_addresses[:3]:
            for index in range(requests_per_vip):
                request = HttpRequest(
                    "GET",
                    "appldnld.apple.com",
                    f"/ios11.0/iphone9_1_{index}.ipsw",
                    headers=Headers({"X-Client": f"198.51.{index}.9"}),
                )
                served = apple.serve(vip, request, size=2_800_000_000)
                samples.append((vip, served.response))
    return samples


def test_bench_sec33_header_inference(benchmark, bench_run):
    scenario, _, _ = bench_run
    samples = _download_samples(scenario)
    inference = benchmark(infer_hierarchy, samples)
    text = inference.render()
    write_output("sec33_headers.txt", text)
    print("\n" + text)

    # The paper's conclusions, re-derived from headers alone:
    assert inference.layer_order == ("origin", "edge-lx", "edge-bx")
    assert inference.fanout_per_vip == 4
    assert inference.uses_traffic_server
    assert any("cloudfront" in host for host in inference.origin_hosts)
    assert inference.inconsistent_headers == 0
