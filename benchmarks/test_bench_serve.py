"""Serve-fleet throughput: single-loop vs multi-process edge qps.

Runs the scaled selftest — a 4-worker ``SO_REUSEPORT`` fleet driven
by a closed-loop loadgen fleet, plus the single-loop reference — and
writes ``benchmarks/output/BENCH_serve.json`` with sustained qps and
the p50/p99/p999 latency panels for both paths.

Two guards run against ``benchmarks/BENCH_serve.baseline.json``:

* ``single_loop_dns_qps`` is machine-dependent, so only the
  *fleet/single* qps ratio is held within ±30% of the baseline ratio;
* the ≥5× fleet speedup floor from the issue's acceptance criteria is
  enforced when the host has 4+ CPUs and recorded (with the CPU
  count) otherwise — one core cannot demonstrate a process fleet.

Refresh the baseline by copying the output file over the committed
one after an intentional perf change and reviewing the diff.
"""

import json
import pathlib

import pytest

from repro.serve import fleet_selftest, fleet_supported

from conftest import write_json

BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_serve.baseline.json"
RATIO_TOLERANCE = 0.30
SPEEDUP_FLOOR = 5.0
SPEEDUP_FLOOR_MIN_CPUS = 4

pytestmark = pytest.mark.skipif(
    not fleet_supported(), reason="platform lacks SO_REUSEPORT fork fleets"
)


def _panel(report) -> dict:
    return {
        "dns_qps": round(report.dns_qps, 1),
        "http_rps": round(report.http_rps, 1),
        "dns_p50_ms": round(report.dns_percentiles_ms.get("p50", 0.0), 3),
        "dns_p99_ms": round(report.dns_percentiles_ms.get("p99", 0.0), 3),
        "dns_p999_ms": round(report.dns_percentiles_ms.get("p999", 0.0), 3),
        "http_p50_ms": round(report.http_percentiles_ms.get("p50", 0.0), 3),
        "http_p99_ms": round(report.http_percentiles_ms.get("p99", 0.0), 3),
        "http_p999_ms": round(report.http_percentiles_ms.get("p999", 0.0), 3),
    }


@pytest.fixture(scope="module")
def serve_bench():
    result = fleet_selftest(workers=4, requests=2000, concurrency=32)
    payload = {
        "scenario": "4-worker reuseport fleet, closed-loop 2000 requests",
        "workers": result.workers,
        "loadgen_processes": result.processes,
        "cpus": result.cpus,
        "single_loop": _panel(result.reference),
        "fleet": _panel(result.report),
        "fleet_speedup": round(result.speedup, 3),
        "equivalent": not result.equivalence_failures,
        "requests_ok": result.report.ok,
        "requests_errors": result.report.errors,
    }
    write_json("BENCH_serve.json", payload)
    return result, payload


def test_serve_bench_recorded(serve_bench):
    result, payload = serve_bench
    assert payload["requests_errors"] == 0
    assert payload["fleet"]["dns_qps"] > 0
    assert payload["fleet"]["dns_p50_ms"] > 0
    assert payload["fleet"]["dns_p999_ms"] >= payload["fleet"]["dns_p99_ms"]
    assert not result.worker_errors


def test_fleet_stays_byte_equivalent(serve_bench):
    result, payload = serve_bench
    assert payload["equivalent"], result.equivalence_failures


def test_fleet_ratio_within_baseline(serve_bench):
    _result, payload = serve_bench
    baseline = json.loads(BASELINE_PATH.read_text())
    if payload["cpus"] != baseline["cpus"]:
        pytest.skip(
            f"baseline recorded on {baseline['cpus']} CPU(s), host has "
            f"{payload['cpus']}: the fleet/single ratio is not comparable"
        )
    expected = baseline["fleet_speedup"]
    ratio = payload["fleet_speedup"] / expected
    assert (1 - RATIO_TOLERANCE) <= ratio <= (1 + RATIO_TOLERANCE), (
        f"fleet speedup {payload['fleet_speedup']} drifted more than "
        f"±{RATIO_TOLERANCE:.0%} from baseline {expected}; if intended, "
        f"refresh benchmarks/BENCH_serve.baseline.json from "
        f"benchmarks/output/BENCH_serve.json"
    )


def test_fleet_speedup_floor(serve_bench):
    _result, payload = serve_bench
    if payload["cpus"] < SPEEDUP_FLOOR_MIN_CPUS:
        pytest.skip(
            f"host has {payload['cpus']} CPU(s); the {SPEEDUP_FLOOR}x fleet "
            f"floor needs {SPEEDUP_FLOOR_MIN_CPUS}+ "
            f"(speedup recorded in BENCH_serve.json regardless)"
        )
    assert payload["fleet_speedup"] >= SPEEDUP_FLOOR
