"""Substrate performance benchmarks.

Not a paper figure: these guard the hot paths the figure benches rely
on — longest-prefix match, full recursive resolution, the LRU content
cache and edge-site serving.
"""

from repro.cdn.cache import ContentCache
from repro.dns.query import QueryContext
from repro.http.messages import Headers, HttpRequest
from repro.net.geo import Continent, Coordinates
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.trie import PrefixTrie


def test_bench_trie_lookup(benchmark):
    trie = PrefixTrie()
    for index in range(4096):
        prefix = IPv4Prefix.containing(IPv4Address(index << 20), 12)
        trie.insert(prefix, index)
    probes = [IPv4Address((i * 2654435761) & 0xFFFFFFFF) for i in range(1000)]

    def lookup_all():
        return [trie.lookup(address) for address in probes]

    results = benchmark(lookup_all)
    assert len(results) == 1000


def test_bench_recursive_resolution(benchmark, bench_run):
    scenario, _, _ = bench_run
    estate = scenario.estate
    context = QueryContext(
        client=IPv4Address.parse("198.51.100.77"),
        coordinates=Coordinates(50.11, 8.68),
        continent=Continent.EUROPE,
        country="de",
        now=0.0,
    )

    def resolve():
        return estate.resolver(cache=False).resolve(
            estate.names.entry_point, context
        )

    resolution = benchmark(resolve)
    assert resolution.succeeded()


def test_bench_content_cache(benchmark):
    cache = ContentCache(capacity_bytes=1 << 30)

    def churn():
        for index in range(2000):
            cache.admit(f"object-{index % 600}", 2 << 20)
            cache.lookup(f"object-{(index * 7) % 600}")
        return cache.stats.requests

    requests = benchmark(churn)
    assert requests > 0


def test_bench_edge_site_serving(benchmark, bench_run):
    scenario, _, _ = bench_run
    apple = scenario.estate.apple
    site = apple.sites[0]
    vip = site.vip_addresses[0]

    def serve_batch():
        for index in range(100):
            request = HttpRequest(
                "GET",
                "appldnld.apple.com",
                f"/bench/object{index % 20}.ipsw",
                headers=Headers({"X-Client": f"198.51.7.{index % 250}"}),
            )
            apple.serve(vip, request, size=1_000_000)

    benchmark(serve_batch)
