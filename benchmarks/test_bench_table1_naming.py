"""Table 1: the Apple server naming scheme.

Regenerates the table (identifier -> meaning, with the canonical
example) and benchmarks the parser over the full reverse-DNS estate —
the workhorse behind site discovery.
"""

from conftest import write_output

from repro.apple.naming import parse_hostname
from repro.cdn.server import SecondaryFunction, ServerFunction

TABLE1 = """Table 1 — Apple server naming scheme

    Naming scheme:  ab-c-d-e.aaplimg.com
    Example:        usnyc3-vip-bx-008.aaplimg.com

    a   UN/LOCODE location (e.g. deber for Berlin)
    b   Location site id (e.g. 1)
    c   Function: vip, edge, gslb, dns, ntp and tool
    d   A secondary function identifier: bx, lx and sx
    e   Id for same function server (e.g. 004)"""


def test_bench_table1_parse_estate(benchmark, bench_run):
    scenario, _, _ = bench_run
    hostnames = list(scenario.estate.apple.reverse_dns_table().values())

    def parse_all():
        return [parse_hostname(hostname) for hostname in hostnames]

    parsed = benchmark(parse_all)
    write_output("table1_naming.txt", TABLE1)
    print("\n" + TABLE1)

    assert len(parsed) == len(hostnames)
    example = parse_hostname("usnyc3-vip-bx-008.aaplimg.com")
    assert example.locode == "usnyc"
    assert example.site_id == 3
    assert example.function is ServerFunction.VIP
    assert example.secondary is SecondaryFunction.BX
    assert example.server_id == 8
    # The scheme round-trips for every estate hostname.
    assert all(name.hostname() == hostname
               for name, hostname in zip(parsed, hostnames))
    # The known deviation: Apple's uklon is UN/LOCODE's gblon.
    london = [name for name in parsed if name.locode == "uklon"]
    assert london and london[0].canonical_locode == "gblon"
