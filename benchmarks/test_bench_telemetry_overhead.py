"""Telemetry overhead guard.

The observability contract: with the null registry and tracer (the
default), instrumented hot paths must cost nothing measurable — every
instrument call is a no-op bound method and the engine's observer
early-returns.  This bench times release-day engine steps three ways:

* ``plain``   — a copy of the engine step body with no telemetry code
  at all (the un-instrumented baseline);
* ``null``    — the shipped ``advance`` under the null handles;
* ``real``    — the shipped ``advance`` with a live registry + tracer.

The guard asserts ``null`` stays within 5% of ``plain`` (plus a small
absolute slack for timer noise); ``real`` is reported for context.
"""

import time

from repro.net.geo import MappingRegion
from repro.obs import EventTracer, MetricsRegistry, use_registry, use_tracer
from repro.simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from repro.simulation.engine import StepReport
from repro.workload import TIMELINE

from conftest import write_output

_STEP = 1800.0
_STEPS = 12
_REPEATS = 3


def _build_engine(registry=None, tracer=None):
    config = ScenarioConfig(global_probe_count=40, isp_probe_count=20)
    if registry is not None and tracer is not None:
        with use_registry(registry), use_tracer(tracer):
            scenario = Sep2017Scenario(config)
            return SimulationEngine(scenario, step_seconds=_STEP)
    scenario = Sep2017Scenario(config)
    return SimulationEngine(scenario, step_seconds=_STEP)


def _plain_advance(engine, now):
    """The engine step body with every telemetry call stripped."""
    scenario = engine.scenario
    demand_by_region = {}
    operator_gbps_by_region = {}
    for region in MappingRegion:
        demand = scenario.demand.demand_gbps(region, now)
        demand_by_region[region] = demand
        scenario.estate.controller.observe_demand(region, demand)
        split = engine.operator_split(region, now, demand)
        operator_gbps_by_region[region] = split
        for operator, gbps in split.items():
            deployment = scenario.estate.deployments.get(operator)
            if deployment is not None:
                deployment.offer_demand(now, region, gbps)
    measurements = scenario.global_campaign.maybe_run(now)
    measurements += scenario.isp_campaign.maybe_run(now)
    measurements += scenario.aws_campaign.maybe_run(now)
    measurements += scenario.traceroute_campaign.maybe_run(now)
    flows = 0
    if scenario.traffic_window.contains(now):
        flows = engine._generate_isp_traffic(
            now, operator_gbps_by_region[MappingRegion.EU]
        )
    return StepReport(
        now=now,
        demand_gbps=demand_by_region,
        operator_gbps=operator_gbps_by_region[MappingRegion.EU],
        measurements=measurements,
        flows=flows,
    )


def _time_steps(step_fn, build_fn):
    """Best-of-N wall time for a fresh release-day window each repeat."""
    start = TIMELINE.at(9, 19, 12)
    best = float("inf")
    for _ in range(_REPEATS):
        engine = build_fn()
        step_fn(engine, start)  # warm caches outside the timed region
        t0 = time.perf_counter()
        now = start + _STEP
        for _ in range(_STEPS):
            step_fn(engine, now)
            now += _STEP
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_telemetry_overhead():
    plain = _time_steps(_plain_advance, _build_engine)
    null = _time_steps(
        lambda engine, now: engine.advance(now), _build_engine
    )

    def build_real():
        return _build_engine(MetricsRegistry(), EventTracer())

    real = _time_steps(lambda engine, now: engine.advance(now), build_real)

    report = "\n".join([
        "telemetry overhead (best of "
        f"{_REPEATS} x {_STEPS} release-day steps)",
        f"plain (no telemetry code) : {plain * 1000 / _STEPS:8.3f} ms/step",
        f"null handles (default)    : {null * 1000 / _STEPS:8.3f} ms/step",
        f"real registry + tracer    : {real * 1000 / _STEPS:8.3f} ms/step",
        f"null/plain ratio          : {null / plain:8.3f}",
        f"real/plain ratio          : {real / plain:8.3f}",
    ])
    write_output("telemetry_overhead.txt", report)

    # The contract: disabled telemetry is free (5% + 2 ms timer slack).
    assert null <= plain * 1.05 + 0.002 * _STEPS, report
