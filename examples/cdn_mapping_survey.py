#!/usr/bin/env python3
"""Surveying a CDN's request mapping — the paper's generic methodology.

Section 3.2 notes the measurement approach "is generic, which means it
could be applied to any other CDN": resolve the entry point from many
vantage points, rebuild the CNAME graph, enumerate server names, and
infer structure from headers.  This example runs the full survey
against the modelled Apple Meta-CDN: Figure 2 (mapping graph),
Figure 3 (site discovery) and the Section 3.3 header inference.

Run:  python examples/cdn_mapping_survey.py
"""

from repro.analysis import MappingGraph, discover_sites, infer_hierarchy
from repro.dns import QueryContext
from repro.http.messages import Headers, HttpRequest
from repro.net import Continent, Coordinates, IPv4Address, MappingRegion
from repro.simulation import ScenarioConfig, Sep2017Scenario

VANTAGE_POINTS = (
    ("Frankfurt", Continent.EUROPE, "de", (50.11, 8.68)),
    ("New York", Continent.NORTH_AMERICA, "us", (40.71, -74.0)),
    ("Tokyo", Continent.ASIA, "jp", (35.67, 139.65)),
    ("Mumbai", Continent.ASIA, "in", (19.07, 72.87)),
    ("Shanghai", Continent.ASIA, "cn", (31.23, 121.47)),
    ("Sydney", Continent.OCEANIA, "au", (-33.87, 151.21)),
    ("Sao Paulo", Continent.SOUTH_AMERICA, "br", (-23.55, -46.63)),
)


def main() -> None:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    estate = scenario.estate

    # --- 1. the mapping graph, from all vantage points, idle + loaded --
    resolutions = []
    for load in (0.0, 1e6):
        for region in MappingRegion:
            estate.controller.observe_demand(region, load)
        for index in range(25):
            for _, continent, country, coords in VANTAGE_POINTS:
                context = QueryContext(
                    client=IPv4Address.parse(f"198.51.{index}.9"),
                    coordinates=Coordinates(*coords),
                    continent=continent,
                    country=country,
                    now=0.0,
                )
                resolutions.append(
                    estate.resolver(cache=False).resolve(
                        estate.names.entry_point, context
                    )
                )
    for region in MappingRegion:
        estate.controller.observe_demand(region, 0.0)
    graph = MappingGraph.from_resolutions(resolutions)
    print(graph.render())

    # --- 2. site discovery from the reverse-DNS enumeration ------------
    print()
    discovery = discover_sites(estate.apple.reverse_dns_table())
    print(discovery.render())

    # --- 3. header-based structure inference ----------------------------
    print()
    samples = []
    site = estate.apple.sites[0]
    for vip in site.vip_addresses[:2]:
        for index in range(10):
            request = HttpRequest(
                "GET", "appldnld.apple.com", f"/survey/file{index}.ipsw",
                headers=Headers({"X-Client": f"198.51.200.{index}"}),
            )
            served = estate.apple.serve(vip, request, size=1000)
            samples.append((vip, served.response))
    print(infer_hierarchy(samples).render())


if __name__ == "__main__":
    main()
