#!/usr/bin/env python3
"""A degraded rollout: the handover CDN goes dark mid-surge.

The paper's Meta-CDN argument cuts both ways: delegation absorbs the
flash crowd, but it also means Apple's rollout now depends on a third
party staying up.  This example injects a total Limelight blackout one
hour after the iOS 11 release and watches the failover plane respond:

* the health-check loop marks Limelight unhealthy after K failed
  probes and re-steers the 15 s selection CNAME away from it;
* the EU operator split collapses Limelight to zero while the spill
  lands on Akamai and Apple;
* the ISP classifier attributes non-zero *overflow* bytes (source
  AS != handover AS, §5.1) to the CDN the traffic failed over to;
* once the blackout clears, half-open probes recover the member and
  the nominal split returns.

Run:  python examples/degraded_rollout.py
"""

from repro.faults import FaultKind, FaultSchedule, FaultWindow
from repro.isp.classify import TrafficClassifier
from repro.obs import EventTracer, MetricsRegistry, use_registry, use_tracer
from repro.simulation import ScenarioConfig, Sep2017Scenario
from repro.simulation.engine import SimulationEngine
from repro.workload import TIMELINE


def main() -> None:
    release = TIMELINE.ios_11_0_release
    fault_start = release + 3600.0
    fault_end = release + 6 * 3600.0
    schedule = FaultSchedule([
        FaultWindow(fault_start, fault_end, "Limelight", FaultKind.CDN_BLACKOUT)
    ])
    print("Degraded rollout: Limelight blackout, release+1h .. release+6h")
    print(f"schedule (seconds after release): "
          f"{schedule.shifted(-release).describe()}\n")

    tracer = EventTracer()
    with use_registry(MetricsRegistry()), use_tracer(tracer):
        scenario = Sep2017Scenario(
            ScenarioConfig(
                global_probe_count=32,
                isp_probe_count=16,
                traceroute_probe_count=2,
                fault_probe_interval=60.0,
                fault_cooldown=300.0,
                fault_seed=7,
            ),
            faults=schedule,
        )
        engine = SimulationEngine(scenario, step_seconds=1800.0)
        reports = []
        engine.run(release - 1800.0, release + 8 * 3600.0,
                   progress=reports.append)

    def split(lo, hi):
        window = [r.operator_gbps for r in reports if lo <= r.now < hi]
        peaks = {}
        for gbps in window:
            for operator, value in gbps.items():
                peaks[operator] = max(peaks.get(operator, 0.0), value)
        return peaks

    phases = [
        ("pre-fault", release - 1800.0, fault_start),
        ("blackout (steady)", fault_start + 3600.0, fault_end),
        ("after recovery", fault_end + 3600.0, release + 8 * 3600.0),
    ]
    print("EU operator split, peak Gbps per phase:")
    operators = sorted({op for r in reports for op in r.operator_gbps})
    for label, lo, hi in phases:
        peaks = split(lo, hi)
        parts = "  ".join(
            f"{op} {peaks.get(op, 0.0):7.0f}" for op in operators
        )
        print(f"  {label:18s} {parts}")

    print("\nfailover timeline (hours after release):")
    for name in ("fault_opened", "cdn_unhealthy", "cdn_half_open",
                 "cdn_recovered", "fault_closed"):
        for record in tracer.find(name):
            hours = (record.ts - release) / 3600.0
            extra = ""
            if name == "cdn_unhealthy":
                extra = " — marked unhealthy, selection re-steers"
            elif name == "cdn_recovered":
                downtime = record.fields["downtime_seconds"] / 3600.0
                extra = f" — recovered after {downtime:.1f} h down"
            member = record.fields.get("member") or record.fields.get("target")
            print(f"  +{hours:5.2f} h  {name:14s} {member}{extra}")

    classifier = TrafficClassifier(scenario.isp, scenario.rib,
                                   scenario.operator_of)
    in_window = [f for f in scenario.netflow.records
                 if fault_start <= f.timestamp < fault_end]
    overflow = classifier.overflow_traffic(in_window, "Akamai")
    total = sum(c.flow.bytes for c in overflow)
    print(f"\noverflow to Akamai during the blackout: {total:,} bytes")
    print("(source AS != handover AS: the failed-over traffic the ISP "
          "classifier sees, exactly the §5.1 overflow definition)")


if __name__ == "__main__":
    main()
