#!/usr/bin/env python3
"""One iOS device's update cycle (Section 3.1), step by step.

Walks a single iPhone through the observed behaviour: the hourly
manifest poll against ``mesu.apple.com``, the user notification, the
user-initiated download from ``appldnld.apple.com`` over plain HTTP,
and the install — with every DNS and HTTP interaction shown.

Run:  python examples/device_update_cycle.py
"""

from repro.apple import (
    CHECK_INTERVAL_SECONDS,
    IosDevice,
    build_manifest,
    build_updatebrain,
)
from repro.dns import QueryContext
from repro.net import Continent, Coordinates, IPv4Address
from repro.simulation import ScenarioConfig, Sep2017Scenario
from repro.workload import TIMELINE


def main() -> None:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    estate = scenario.estate
    device = IosDevice("iPhone9,1", "10.3")
    client_address = IPv4Address.parse("89.0.12.34")

    def context(now):
        return QueryContext(
            client=client_address,
            coordinates=Coordinates(52.52, 13.40),  # Berlin
            continent=Continent.EUROPE,
            country="de",
            now=now,
        )

    manifest = build_manifest(target_version="11.0")
    updatebrain = build_updatebrain()
    print(f"Device: {device}")
    print(f"Manifest: {manifest.entry_count} entries "
          f"(paper: ~1800 as of July 2017); "
          f"UpdateBrain: {updatebrain.entry_count} entries\n")

    # Hourly polls before the release find nothing.
    resolver = estate.resolver()
    release = TIMELINE.ios_11_0_release
    old_manifest = build_manifest(target_version="10.3")
    for tick in range(2):
        now = release - (2 - tick) * CHECK_INTERVAL_SECONDS
        poll = device.manifest_request()
        mesu = resolver.resolve(poll.host, context(now))
        found = device.check(old_manifest, now)
        print(f"[{TIMELINE.datetime(now):%b %d %H:%M}] poll {poll.url}")
        print(f"    mesu.apple.com -> {mesu.addresses[0]}, "
              f"update found: {found is not None}")

    # The release lands; the next hourly poll discovers it.
    now = release + 600.0
    entry = device.check(manifest, now)
    print(f"\n[{TIMELINE.datetime(now):%b %d %H:%M}] new manifest entry:")
    print(f"    {entry.device_model} {entry.from_version} -> "
          f"{entry.target_version}, {entry.size_bytes / 1e9:.1f} GB")
    print(f"    user notified: {device.state.value}")

    # The user taps install: resolve appldnld and download.
    request = device.start_update(client_address=str(client_address))
    resolution = resolver.resolve(request.host, context(now))
    print(f"\nUser starts the update; resolving {request.host}:")
    print("    " + " -> ".join(resolution.chain_names))
    vip = resolution.addresses[0]
    site = estate.apple.site_for(vip)
    print(f"    delivery server {vip} "
          f"({site.location.city}, site {site.site_id})")
    served = estate.apple.serve(vip, request, size=entry.size_bytes)
    print(f"    HTTP {served.response.status}, "
          f"{served.response.body_size / 1e9:.1f} GB")
    print(f"    X-Cache: {served.response.headers.get('X-Cache')}")

    device.finish_update()
    print(f"\nAfter install: {device}")
    assert device.check(manifest, now + CHECK_INTERVAL_SECONDS) is None
    print("Next hourly poll: up to date.")


if __name__ == "__main__":
    main()
