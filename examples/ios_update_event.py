#!/usr/bin/env python3
"""The iOS 11 release, end to end (Sections 4 and 5).

Runs the September 2017 scenario through the release week at a small
scale, then prints the Figure 4 unique-IP series for Europe, the
Figure 7 offload summary and the Figure 8 overflow shares.

Run:  python examples/ios_update_event.py
"""

from repro.analysis import (
    CdnCategorizer,
    overflow_share_series,
    peak_vs_baseline,
    summarize_offload,
    unique_ip_series,
)
from repro.isp import TrafficClassifier
from repro.net import Continent
from repro.simulation import (
    AS_TRANSIT_D,
    ScenarioConfig,
    Sep2017Scenario,
    SimulationEngine,
)
from repro.workload import TIMELINE


def main() -> None:
    config = ScenarioConfig(
        global_probe_count=80,
        isp_probe_count=40,
        global_dns_interval=3600.0,
    )
    scenario = Sep2017Scenario(config)
    engine = SimulationEngine(scenario, step_seconds=1800.0)

    print("Simulating Sep 15 - Sep 23, 2017 (release Sep 19, 17h UTC)...")
    steps = engine.run(TIMELINE.at(9, 15), TIMELINE.at(9, 23))
    print(f"    {steps} steps, "
          f"{scenario.global_campaign.store.dns_count} global DNS measurements, "
          f"{len(scenario.netflow.records)} flow records\n")

    # Figure 4 (Europe facet): unique cache IPs around the release.
    # Passing the store itself streams the aggregation over its
    # columnar segments instead of reconstructing every record.
    categorizer = CdnCategorizer(scenario.estate.deployments)
    series = unique_ip_series(
        scenario.global_campaign.store,
        categorizer.category,
        bin_seconds=7200.0,
        continent=Continent.EUROPE,
    )
    release = TIMELINE.ios_11_0_release
    peak, baseline = peak_vs_baseline(series, release)
    print("Figure 4 (Europe): unique cache IPs")
    print(f"    pre-event average {baseline:.0f}, post-release peak {peak} "
          f"({peak / baseline:.1f}x; the paper saw 977 vs 191)\n")

    # Figures 7 and 8: the ISP's view.
    classifier = TrafficClassifier(scenario.isp, scenario.rib, scenario.operator_of)
    classified = list(classifier.classify_all(scenario.netflow.records))
    print(summarize_offload(classified, TIMELINE.at(9, 19)).render())
    print()
    print("Figure 8: Limelight overflow by handover AS (daily)")
    for bin_start, shares in overflow_share_series(
        classified, bin_seconds=86400.0, operator="Limelight"
    ):
        row = ", ".join(
            f"{asn}={share * 100:.0f}%"
            for asn, share in sorted(shares.items(), key=lambda kv: -kv[1])
        )
        print(f"    {TIMELINE.date_label(bin_start)}: {row}")
    print(f"\n    (AS D of the paper is {AS_TRANSIT_D} here)")


if __name__ == "__main__":
    main()
