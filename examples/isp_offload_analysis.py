#!/usr/bin/env python3
"""An ISP operator's console: offload, overflow and link saturation.

Takes the eyeball-ISP perspective of Section 5: classifies every flow
record by Source AS and handover AS, reports which peering links the
update stressed, and flags the saturated ones — the "seemingly
unrelated links suddenly saturate" finding.

Run:  python examples/isp_offload_analysis.py
"""

from repro.isp import TrafficClassifier
from repro.simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from repro.workload import TIMELINE


def main() -> None:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=20, isp_probe_count=20)
    )
    engine = SimulationEngine(scenario, step_seconds=1800.0)
    print("Collecting BGP/Netflow/SNMP at the ISP border, Sep 15 - Sep 23...")
    engine.run(TIMELINE.at(9, 15), TIMELINE.at(9, 23))
    print(f"    {scenario.rib.route_count} BGP routes, "
          f"{len(scenario.netflow.records)} flow records, "
          f"{len(scenario.isp)} peering links\n")

    classifier = TrafficClassifier(scenario.isp, scenario.rib, scenario.operator_of)
    classified = list(classifier.classify_all(scenario.netflow.records))

    # Traffic by Source-AS operator per day.
    print("Update-attributable traffic by CDN (TB per day):")
    days = sorted({TIMELINE.day_start(c.flow.timestamp) for c in classified})
    operators = sorted({c.operator for c in classified if c.operator})
    header = "    " + "date".ljust(10) + "".join(f"{op:>12}" for op in operators)
    print(header)
    for day in days:
        row = f"    {TIMELINE.date_label(day):<10}"
        for operator in operators:
            volume = sum(
                c.flow.bytes for c in classified
                if c.operator == operator
                and day <= c.flow.timestamp < day + 86400.0
            )
            row += f"{volume / 1e12:>12.1f}"
        print(row)

    # Link utilisation report around the release evening.
    print("\nPeering-link peak utilisation, release day evening:")
    release = TIMELINE.ios_11_0_release
    for link in sorted(scenario.isp, key=lambda l: l.link_id):
        utilization = max(
            scenario.snmp.utilization(scenario.isp, link.link_id,
                                      release + hour * 3600.0)
            for hour in range(12)
        )
        if utilization == 0.0:
            continue
        bar = "#" * int(utilization * 30)
        flag = "  << SATURATED" if utilization >= 0.98 else ""
        print(f"    {link.link_id:<14} ({str(link.neighbor_asn):<8}) "
              f"{utilization * 100:5.1f}% {bar}{flag}")


if __name__ == "__main__":
    main()
