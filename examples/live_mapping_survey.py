#!/usr/bin/env python3
"""The paper's mapping survey, run against live sockets.

`examples/cdn_mapping_survey.py` performs the Section 3.2 survey
against the in-memory model.  This walkthrough does the same thing the
way the paper's vantage points actually did it: boot the serving layer
(`repro.serve`) on loopback, resolve ``appldnld.apple.com`` over real
UDP from one client per vantage — CNAME chase, EDNS Client Subnet and
all — and then fetch a byte range through the resolved vip, reading
the §3.3 ``Via``/``X-Cache`` headers off the wire.

Run:  python examples/live_mapping_survey.py
"""

import asyncio

from repro.apple.mapping import NAMES
from repro.net import IPv4Address
from repro.serve import (
    AsyncDnsClient,
    ClientDirectory,
    ClusterConfig,
    PooledHttpClient,
    ServeCluster,
    ZoneFrontend,
    build_serve_estate,
)


async def survey() -> None:
    estate = build_serve_estate(ClusterConfig(servers_per_metro=4))
    directory = ClientDirectory()
    frontend = ZoneFrontend(estate.servers)

    async with ServeCluster(
        estate=estate, directory=directory, clock=lambda: 0.0
    ) as cluster:
        dns_host, dns_port = cluster.dns.endpoint
        http_host, http_port = cluster.http.endpoint

        # --- 1. per-vantage wire chains (Figure 2, over UDP) -----------
        resolver = await AsyncDnsClient.open(
            dns_host, dns_port, source_prefix_len=32
        )
        resolutions = []
        try:
            print(f"per-vantage wire chains for {NAMES.entry_point}")
            print("=" * 72)
            for vantage in directory.vantages:
                client = IPv4Address(vantage.prefix.network.value + 1)
                resolution = await resolver.resolve(NAMES.entry_point, client)
                resolutions.append((vantage, resolution))
                server = frontend.server_for(resolution.final_name)
                operator = server.operator if server is not None else "?"
                hops = " -> ".join(resolution.chain_names[1:])
                print(f"{vantage.name:<16} {operator:<9} {hops}")
                print(
                    f"{'':<16} {len(resolution.addresses)} A records, "
                    f"e.g. {resolution.addresses[0]}"
                )
        finally:
            resolver.close()

        operators = {
            frontend.server_for(r.final_name).operator for _, r in resolutions
        }
        print()
        print(f"operators answering: {', '.join(sorted(operators))}")

        # --- 2. a ranged download through one resolved vip -------------
        vantage, resolution = resolutions[0]
        vip = resolution.addresses[0]
        http = PooledHttpClient(http_host, http_port)
        try:
            status, headers, body_length = await http.get(
                "/content/ios11-survey.ipsw",
                host=NAMES.entry_point,
                vip=vip,
                client=IPv4Address(vantage.prefix.network.value + 1),
                range_bytes=(0, 4095),
            )
        finally:
            await http.close()
        print()
        print(f"ranged download via {vantage.name} -> vip {vip}")
        print(f"  HTTP {status}, {body_length} bytes")
        print(f"  Content-Range: {headers.get('Content-Range')}")
        for name in ("Via", "X-Cache"):
            value = headers.get(name)
            if value:
                print(f"  {name}: {value}")


def main() -> None:
    asyncio.run(survey())


if __name__ == "__main__":
    main()
