#!/usr/bin/env python3
"""Quickstart: resolve the Apple Meta-CDN chain and download an update.

Builds the full Figure 2 estate, performs one recursive DNS resolution
from a European client (showing every CNAME hop, TTL and operator),
then downloads an iOS image through the selected Apple edge site and
prints the Via / X-Cache headers the paper's Section 3.3 analysed.

Run:  python examples/quickstart.py
"""

from repro.apple import AppleCdn, MetaCdnController, build_manifest, build_meta_cdn
from repro.cdn import AKAMAI_PLAN, LIMELIGHT_PLAN, build_third_party
from repro.dns import QueryContext
from repro.http.messages import Headers, HttpRequest
from repro.net import (
    ASN,
    Continent,
    Coordinates,
    IPv4Address,
    LocodeDatabase,
    MappingRegion,
)


def main() -> None:
    locations = LocodeDatabase.builtin()

    # 1. Apple's own CDN: the 34 edge sites of Figure 3.
    apple = AppleCdn.build(locations)
    print(f"Apple CDN: {apple.site_count} sites, "
          f"{apple.edge_bx_count} edge-bx servers, "
          f"{apple.total_capacity_gbps:.0f} Gbps\n")

    # 2. Third-party fleets and the Meta-CDN mapping chain.
    metros = [locations.get(code) for code in ("defra", "uklon", "usnyc", "jptyo")]
    akamai = build_third_party(AKAMAI_PLAN, metros, other_as=ASN(64512))
    limelight = build_third_party(LIMELIGHT_PLAN, metros, other_as=ASN(64513))
    controller = MetaCdnController(
        {region: apple.deployment.region_capacity_gbps(region)
         for region in MappingRegion}
    )
    estate = build_meta_cdn(apple, akamai, limelight, controller)

    # 3. A recursive resolution from a Berlin eyeball client.
    client = QueryContext(
        client=IPv4Address.parse("198.51.100.7"),
        coordinates=Coordinates(52.52, 13.40),
        continent=Continent.EUROPE,
        country="de",
        now=0.0,
    )
    resolution = estate.resolver().resolve(estate.names.entry_point, client)
    print("DNS resolution of appldnld.apple.com:")
    for step in resolution.steps:
        for record in step.records:
            print(f"    [{step.operator:<9}] {record}")
    print()

    # 4. Download an update image from the selected cache.
    manifest = build_manifest(target_version="11.0")
    entry = manifest.lookup("iPhone9,1", "10.3")
    vip = resolution.addresses[0]
    site = apple.site_for(vip)
    print(f"Downloading {entry.url}")
    print(f"    from {vip} ({site.location.city}, site {site.site_id}), "
          f"{entry.size_bytes / 1e9:.1f} GB\n")
    request = HttpRequest("GET", "appldnld.apple.com", entry.path,
                          headers=Headers({"X-Client": str(client.client)}))
    served = apple.serve(vip, request, size=entry.size_bytes)
    print("Response headers (the Section 3.3 evidence):")
    print(f"    X-Cache: {served.response.headers.get('X-Cache')}")
    print(f"    Via: {served.response.headers.get('Via')}")

    # A second download hits the edge cache.
    served = apple.serve(vip, request, size=entry.size_bytes)
    print("\nSecond download (cache hit at the edge):")
    print(f"    X-Cache: {served.response.headers.get('X-Cache')}")


if __name__ == "__main__":
    main()
