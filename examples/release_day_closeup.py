#!/usr/bin/env python3
"""Release day in close-up: individual devices through the whole stack.

Runs the aggregate engine across the release evening while a population
of real device agents (hourly manifest polls, DNS resolution through
the Figure 2 chain, downloads from the selected cache) lives through
it.  Prints the delegation trace for the entry point, a handful of
device stories, and the agent-observed CDN split against what the
Meta-CDN controller dictated.

Run:  python examples/release_day_closeup.py
"""

from repro.dns.trace import DelegationTree
from repro.net import MappingRegion
from repro.simulation import (
    MicroSimulation,
    ScenarioConfig,
    Sep2017Scenario,
    SimulationEngine,
)
from repro.workload import TIMELINE


def main() -> None:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=5, isp_probe_count=5)
    )
    release = TIMELINE.ios_11_0_release

    # Who is authoritative along the chain (dig +trace style).
    tree = DelegationTree(scenario.estate.servers)
    print(tree.trace(scenario.estate.names.entry_point).render())
    print()

    # Drive the aggregate world across the release evening...
    engine = SimulationEngine(scenario, step_seconds=1800.0)
    engine.run(release - 6 * 3600.0, release)
    # ...and then walk an agent population through the hot hours,
    # advancing the engine in lockstep so exposure and offload evolve.
    sim = MicroSimulation(
        scenario, agent_count=150, mean_adoption_delay=2 * 3600.0
    )
    now = release
    horizon = release + 8 * 3600.0
    while now < horizon:
        engine.advance(now)
        sim.run(now, now + 1800.0, release_time=release, step_seconds=1800.0)
        now += 1800.0

    completed = [agent for agent in sim.agents if agent.completed_at]
    print(f"{len(sim.agents)} devices; {len(completed)} completed the "
          "update within 8h of release\n")

    print("five device stories:")
    for agent in completed[:5]:
        discovery_minutes = (agent.discovered_at - release) / 60
        start_minutes = (agent.started_at - release) / 60
        print(f"    {agent.device.device_model} in {agent.location.city:<12} "
              f"discovered +{discovery_minutes:4.0f}min, "
              f"tapped install +{start_minutes:4.0f}min, "
              f"served by {agent.served_by} ({agent.cache_address})")

    dictated = scenario.estate.controller.apple_share(MappingRegion.EU)
    observed = sum(1 for a in completed if a.served_by == "Apple") / len(completed)
    print(f"\nApple share at the end of the window: controller dictated "
          f"{dictated * 100:.0f}%, agents observed {observed * 100:.0f}%")
    by_operator = {}
    for agent in completed:
        by_operator[agent.served_by] = by_operator.get(agent.served_by, 0) + 1
    print("downloads by CDN: "
          + ", ".join(f"{op}={n}" for op, n in sorted(by_operator.items())))


if __name__ == "__main__":
    main()
