#!/usr/bin/env python3
"""The observability substrate in one screen: metrics plus the event log.

Runs the release-day window (Sep 19, the iOS 11.0 evening) with a live
metrics registry and event tracer installed, then prints:

* the five moments the paper's story turns on — the 11.0 release, the
  controller engaging third-party offload, the first transit link
  saturating, the ``a1015`` CNAME rollout six hours after release, and
  the demand peak;
* the run's metric summary table (DNS, engine, cache, ISP and Atlas
  series side by side).

Run:  python examples/telemetry_dashboard.py
"""

from repro.obs import (
    EventTracer,
    MetricsRegistry,
    summary_table,
    use_registry,
    use_tracer,
)
from repro.simulation import (
    RunSummary,
    ScenarioConfig,
    Sep2017Scenario,
    SimulationEngine,
)
from repro.workload import TIMELINE


def clock(ts: float) -> str:
    seconds = int(ts % 86400.0)
    return f"{TIMELINE.date_label(ts)} {seconds // 3600:02d}:{seconds % 3600 // 60:02d}"


def describe(record) -> str:
    fields = ", ".join(f"{k}={v}" for k, v in record.fields.items())
    return f"  {clock(record.ts)}  {record.name:<16} {fields}"


def main() -> None:
    registry = MetricsRegistry()
    tracer = EventTracer()
    with use_registry(registry), use_tracer(tracer):
        scenario = Sep2017Scenario(
            ScenarioConfig(global_probe_count=30, isp_probe_count=15)
        )
        engine = SimulationEngine(scenario, step_seconds=1800.0)
        reports = []
        engine.run(
            TIMELINE.at(9, 19), TIMELINE.at(9, 20), progress=reports.append
        )

    summary = RunSummary.from_reports(reports)
    print(f"release-day run: {summary.steps} steps, "
          f"{summary.measurements} measurements, {summary.flows} flow records")
    print()

    print("the five moments of the release evening:")
    moments = [
        tracer.first("release"),
        tracer.first("offload_engaged"),
        tracer.first("link_saturated"),
        tracer.first("cname_rollout"),
        tracer.find("demand_peak")[-1],  # the last new-high = the peak
    ]
    for record in moments:
        print(describe(record))
    print()

    print(summary_table(registry))


if __name__ == "__main__":
    main()
