#!/usr/bin/env python3
"""What if Apple had not offloaded? The case for the Meta-CDN.

The paper's takeaway is that the Meta-CDN absorbed the iOS 11 flash
crowd by delegating to third parties.  This what-if quantifies the
counterfactual with the download fluid model: the same EU release-day
arrivals served (a) by Apple's EU capacity alone and (b) by the full
Meta-CDN capacity including Akamai and Limelight — comparing completion
times, backlog and fleet saturation.

Run:  python examples/whatif_no_offload.py
"""

from repro.cdn import DownloadFluidModel
from repro.net import MappingRegion
from repro.simulation import ScenarioConfig, Sep2017Scenario
from repro.workload import TIMELINE, AdoptionModel


def main() -> None:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    adoption = AdoptionModel()
    image_bytes = adoption.image_bytes
    updating = adoption.updating_devices(MappingRegion.EU)
    release = TIMELINE.ios_11_0_release

    def arrivals(now):
        """EU release-evening arrival rate (downloads starting/second)."""
        surge = scenario.demand.surges[MappingRegion.EU][0]
        # Convert the surge's Gbps shape back into arrivals: rate(t) =
        # demanded bits per second / bits per download spread over its
        # mean service time; the fluid model only needs the shape, so
        # use volume conservation: integral(arrivals) = updating devices.
        shape = surge.rate_gbps(release + now) / surge.peak_gbps
        peak_arrivals = updating / adoption.shape_integral_seconds()
        return peak_arrivals * shape

    apple_only_gbps = scenario.estate.controller.capacity(MappingRegion.EU)
    third_party_gbps = (
        scenario.estate.akamai.region_capacity_gbps(MappingRegion.EU)
        + scenario.estate.limelight.region_capacity_gbps(MappingRegion.EU)
    )
    print(f"EU updating devices: {updating / 1e6:.0f} M, "
          f"image {image_bytes / 1e9:.1f} GB")
    print(f"Apple EU capacity: {apple_only_gbps:.0f} Gbps; "
          f"third parties add {third_party_gbps:.0f} Gbps\n")

    horizon = 36.0 * 3600.0
    results = {}
    for label, capacity in (
        ("Apple only (no Meta-CDN)", apple_only_gbps),
        ("Meta-CDN (with offload)", apple_only_gbps + third_party_gbps),
    ):
        model = DownloadFluidModel(capacity_gbps=capacity,
                                   image_bytes=image_bytes)
        stats = model.run(arrivals, horizon_seconds=horizon,
                          step_seconds=300.0)
        results[label] = stats
        print(f"{label}:")
        print(f"    peak concurrent downloads: {stats.peak_active / 1e6:7.2f} M")
        print(f"    mean completion time:      {stats.mean_completion_seconds / 60:7.1f} min")
        print(f"    completed within {horizon / 3600:.0f}h:      "
              f"{stats.completion_ratio * 100:7.1f}%")
        print(f"    peak fleet utilisation:    {stats.peak_utilization * 100:7.1f}%\n")

    speedup = (
        results["Apple only (no Meta-CDN)"].mean_completion_seconds
        / results["Meta-CDN (with offload)"].mean_completion_seconds
    )
    print(f"Offloading cuts the mean download time by {speedup:.1f}x on "
          "release day — the capacity story behind the Meta-CDN.")


if __name__ == "__main__":
    main()
