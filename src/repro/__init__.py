"""metacdn-repro: a reproduction of "Dissecting Apple's Meta-CDN during
an iOS Update" (IMC 2018).

The package is organised bottom-up:

* :mod:`repro.net` — IPv4, prefix tries, ASs, geography, UN/LOCODE;
* :mod:`repro.dns` — records, zones, answer policies, recursion;
* :mod:`repro.http` — messages plus Via / X-Cache conventions;
* :mod:`repro.cdn` — caches, edge sites, CDN deployments;
* :mod:`repro.apple` — the Apple Meta-CDN (naming scheme, 34-site
  estate, Figure 2 mapping chain, offload policy, device behaviour);
* :mod:`repro.atlas` — RIPE-Atlas-style probes and campaigns;
* :mod:`repro.isp` — the eyeball ISP (BGP, Netflow, SNMP, classify);
* :mod:`repro.workload` — timeline, populations, flash-crowd demand;
* :mod:`repro.simulation` — the Sep 2017 scenario and engine;
* :mod:`repro.analysis` — regeneration of every table and figure.

Quickstart::

    from repro.simulation import Sep2017Scenario, SimulationEngine
    from repro.workload import TIMELINE

    scenario = Sep2017Scenario()
    engine = SimulationEngine(scenario)
    engine.run(TIMELINE.at(9, 17), TIMELINE.at(9, 22))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
