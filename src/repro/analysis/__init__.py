"""Analysis layer: regenerates every table and figure of the paper from
simulated measurements — unique-IP time series (Figs. 4/5), the mapping
graph (Fig. 2), site discovery (Fig. 3 / Table 1), header-based
structure inference (§3.3), offload ratios (Fig. 7) and overflow shares
(Fig. 8)."""

from .categories import CATEGORY_ORDER, CdnCategorizer
from .diurnality import (
    FlatnessVerdict,
    classify_flatness,
    day_flatness,
    operator_flatness,
)
from .enumeration import EnumerationResult, enumerate_names, generate_candidates
from .headers import HierarchyInference, infer_hierarchy
from .mapping_graph import MappingEdge, MappingGraph
from .offload import (
    OffloadSummary,
    excess_volume_shares,
    operator_series,
    ratio_peaks,
    summarize_offload,
    traffic_ratio_series,
)
from .paths import (
    GeolocationEstimate,
    PathSummary,
    geolocate_caches,
    geolocation_errors_km,
    summarize_paths,
)
from .overflow import (
    OverflowSummary,
    first_seen,
    overflow_share_series,
    peak_share,
    summarize_overflow,
)
from .scoreboard import (
    PAPER_TARGETS,
    TargetCheck,
    evaluate_scoreboard,
    render_scoreboard,
)
from .resolver_accuracy import ResolverAccuracy
from .sites import SiteDiscovery, SiteRecord, discover_sites
from .unique_ips import (
    UniqueIpPoint,
    count_change_ratio,
    peak_vs_baseline,
    series_by_continent,
    unique_ip_series,
)

__all__ = [
    "CdnCategorizer",
    "CATEGORY_ORDER",
    "UniqueIpPoint",
    "unique_ip_series",
    "series_by_continent",
    "peak_vs_baseline",
    "count_change_ratio",
    "MappingGraph",
    "MappingEdge",
    "SiteDiscovery",
    "SiteRecord",
    "discover_sites",
    "EnumerationResult",
    "enumerate_names",
    "generate_candidates",
    "FlatnessVerdict",
    "classify_flatness",
    "day_flatness",
    "operator_flatness",
    "HierarchyInference",
    "infer_hierarchy",
    "operator_series",
    "traffic_ratio_series",
    "ratio_peaks",
    "excess_volume_shares",
    "OffloadSummary",
    "summarize_offload",
    "overflow_share_series",
    "GeolocationEstimate",
    "geolocate_caches",
    "geolocation_errors_km",
    "PathSummary",
    "summarize_paths",
    "TargetCheck",
    "PAPER_TARGETS",
    "evaluate_scoreboard",
    "render_scoreboard",
    "first_seen",
    "peak_share",
    "OverflowSummary",
    "summarize_overflow",
    "ResolverAccuracy",
]
