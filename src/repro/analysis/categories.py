"""CDN categorisation of observed cache addresses.

Figures 4 and 5 split unique cache IPs into six categories: Apple,
Akamai, "Akamai other AS", Limelight, "Limelight other AS", and other —
where "other AS" means the cache is operated by the CDN but its address
is originated by a different AS (hosted caches).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cdn.deployment import CdnDeployment
from ..net.ipv4 import IPv4Address

__all__ = ["CATEGORY_ORDER", "CdnCategorizer"]

CATEGORY_ORDER = (
    "Apple",
    "Akamai",
    "Akamai other AS",
    "Limelight",
    "Limelight other AS",
    "other",
)


class CdnCategorizer:
    """Maps a cache address to its Figure 4/5 category."""

    def __init__(self, deployments: dict[str, CdnDeployment]) -> None:
        self._by_address: dict[IPv4Address, str] = {}
        for operator, deployment in deployments.items():
            for placed in deployment.servers:
                if operator in ("Akamai", "Limelight") and (
                    placed.server.asn != deployment.asn
                ):
                    category = f"{operator} other AS"
                else:
                    category = operator
                self._by_address[placed.server.address] = category

    def category(self, address: IPv4Address) -> str:
        """The category label for ``address`` ("other" if unknown)."""
        return self._by_address.get(address, "other")

    def operator(self, address: IPv4Address) -> Optional[str]:
        """The bare operator name (merging the "other AS" split)."""
        category = self._by_address.get(address)
        if category is None:
            return None
        return category.replace(" other AS", "")

    def as_callable(self) -> Callable[[IPv4Address], str]:
        """The categoriser as a plain function."""
        return self.category

    def __len__(self) -> int:
        return len(self._by_address)
