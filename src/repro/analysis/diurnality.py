"""Diurnality vs saturation flatness (Section 5.3).

The paper reads the Figure 7 panels qualitatively: "Apple runs at high
capacity all of Sep. 20, while the other CDNs show a diurnal traffic
pattern.  This leads to the conclusion that Apple uses its own CDN
first before offloading."  This module makes that reading quantitative:
a day's *flatness* is the ratio of its minimum to its maximum hourly
volume — near 1.0 for a capacity-pinned series, well below 1.0 for a
demand-following (diurnal) one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["day_flatness", "operator_flatness", "FlatnessVerdict", "classify_flatness"]

_DAY = 86400.0


def day_flatness(
    series: Mapping[float, float], day_start: float, day_seconds: float = _DAY
) -> Optional[float]:
    """min/max hourly volume within one day (1.0 == perfectly flat).

    ``series`` maps bin starts to volumes (an operator entry from
    :func:`~repro.analysis.offload.operator_series`).  Returns ``None``
    when the day has fewer than three populated bins.
    """
    if day_seconds <= 0:
        raise ValueError("day_seconds must be positive")
    values = [
        volume
        for bin_start, volume in series.items()
        if day_start <= bin_start < day_start + day_seconds
    ]
    if len(values) < 3:
        return None
    peak = max(values)
    if peak <= 0:
        return None
    return min(values) / peak


def operator_flatness(
    operator_bins: Mapping[str, Mapping[float, float]],
    day_start: float,
) -> dict:
    """Flatness per operator for one day."""
    result = {}
    for operator, series in operator_bins.items():
        flatness = day_flatness(series, day_start)
        if flatness is not None:
            result[operator] = flatness
    return result


@dataclass(frozen=True)
class FlatnessVerdict:
    """The §5.3 conclusion for one day."""

    day_start: float
    flatness: dict  # operator -> min/max ratio
    pinned_operators: tuple
    diurnal_operators: tuple

    def render(self, label_time=None) -> str:
        """One-line verdict."""
        label = label_time(self.day_start) if label_time else str(self.day_start)
        parts = ", ".join(
            f"{op}={value:.2f}" for op, value in sorted(self.flatness.items())
        )
        return (
            f"{label}: flatness {parts}; "
            f"capacity-pinned: {', '.join(self.pinned_operators) or 'none'}; "
            f"diurnal: {', '.join(self.diurnal_operators) or 'none'}"
        )


def classify_flatness(
    operator_bins: Mapping[str, Mapping[float, float]],
    day_start: float,
    pinned_threshold: float = 0.75,
    diurnal_threshold: float = 0.55,
) -> FlatnessVerdict:
    """Split operators into capacity-pinned vs diurnal for one day.

    An eyeball-traffic day shape with the model's default amplitude
    swings 0.4..1.6 (min/max = 0.25); a capacity-pinned series stays
    within a few percent of its ceiling.  The thresholds sit between
    those regimes with comfortable margins.
    """
    if not 0.0 <= diurnal_threshold <= pinned_threshold <= 1.0:
        raise ValueError("need 0 <= diurnal_threshold <= pinned_threshold <= 1")
    flatness = operator_flatness(operator_bins, day_start)
    pinned = tuple(
        sorted(op for op, value in flatness.items() if value >= pinned_threshold)
    )
    diurnal = tuple(
        sorted(op for op, value in flatness.items() if value <= diurnal_threshold)
    )
    return FlatnessVerdict(
        day_start=day_start,
        flatness=flatness,
        pinned_operators=pinned,
        diurnal_operators=diurnal,
    )
