"""Aquatone-style DNS name enumeration (the paper's reference [21]).

Besides reverse DNS, the authors enumerated Apple's server names with a
domain-flyover tool: generate candidate hostnames from the (partially
known) grammar and test which ones resolve.  This module reproduces
that: candidates come from the Table 1 scheme over a locode list, and
each is checked with a real A query against the authoritative
``aaplimg.com`` server.  The result feeds the same
:func:`~repro.analysis.sites.discover_sites` pipeline as the PTR scan —
two independent routes to Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..apple.naming import AAPLIMG_DOMAIN, format_hostname
from ..cdn.server import SecondaryFunction, ServerFunction
from ..dns.query import Question, QueryContext, RCode
from ..dns.records import RecordType
from ..dns.zone import AuthoritativeServer
from ..net.ipv4 import IPv4Address

__all__ = ["EnumerationResult", "generate_candidates", "enumerate_names"]

# The function/secondary combinations worth probing: delivery roles
# plus the support roles Table 1 lists.
_PROBE_ROLES: tuple[tuple[ServerFunction, Optional[SecondaryFunction], int], ...] = (
    (ServerFunction.VIP, SecondaryFunction.BX, 16),
    (ServerFunction.EDGE, SecondaryFunction.BX, 64),
    (ServerFunction.EDGE, SecondaryFunction.LX, 4),
    (ServerFunction.GSLB, None, 4),
    (ServerFunction.DNS, None, 4),
    (ServerFunction.NTP, None, 4),
    (ServerFunction.TOOL, None, 4),
)


@dataclass(frozen=True)
class EnumerationResult:
    """What an enumeration sweep found."""

    hits: dict  # hostname -> IPv4Address
    candidates_tried: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of candidates that resolved."""
        if self.candidates_tried == 0:
            return 0.0
        return len(self.hits) / self.candidates_tried

    def ptr_table(self) -> dict:
        """The hits re-keyed as an address->hostname table.

        Directly consumable by
        :func:`~repro.analysis.sites.discover_sites`.
        """
        return {address: hostname for hostname, address in self.hits.items()}


def generate_candidates(
    locodes: Iterable[str],
    max_site_id: int = 3,
    roles: tuple = _PROBE_ROLES,
) -> Iterator[str]:
    """Yield candidate hostnames from the Table 1 grammar."""
    for locode in locodes:
        for site_id in range(1, max_site_id + 1):
            for function, secondary, max_server_id in roles:
                for server_id in range(1, max_server_id + 1):
                    yield format_hostname(
                        locode, site_id, function, secondary, server_id,
                        AAPLIMG_DOMAIN,
                    )


def enumerate_names(
    server: AuthoritativeServer,
    context: QueryContext,
    locodes: Iterable[str],
    max_site_id: int = 3,
) -> EnumerationResult:
    """Probe every candidate with an A query; collect the resolvers."""
    hits: dict[str, IPv4Address] = {}
    tried = 0
    for hostname in generate_candidates(locodes, max_site_id):
        tried += 1
        response = server.query(Question(hostname, RecordType.A), context)
        if response.rcode is not RCode.NOERROR:
            continue
        addresses = response.addresses
        if addresses:
            hits[hostname] = addresses[0]
    return EnumerationResult(hits=hits, candidates_tried=tried)
