"""Edge-site structure inference from HTTP headers (Section 3.3).

From download responses the paper inferred: client requests hit a
``vip-bx`` load balancer (invisible in ``Via`` — it is an L4 device),
land on one of four associated ``edge-bx`` caches, fall back to an
``edge-lx`` node on a miss, and originate from a CloudFront host; the
caches run Apache Traffic Server.  :func:`infer_hierarchy` re-derives
all of that from a sample of responses.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..apple.naming import NamingError, parse_hostname
from ..cdn.server import SecondaryFunction, ServerFunction
from ..http.headers import parse_via, parse_x_cache
from ..http.messages import HttpResponse
from ..net.ipv4 import IPv4Address

__all__ = ["HierarchyInference", "infer_hierarchy"]


@dataclass
class HierarchyInference:
    """What the header analysis concluded."""

    layer_order: tuple = ()  # roles origin-most first, e.g. (origin, lx, bx)
    edge_bx_hosts: set = field(default_factory=set)
    edge_lx_hosts: set = field(default_factory=set)
    origin_hosts: set = field(default_factory=set)
    software: set = field(default_factory=set)
    edge_bx_per_vip: dict = field(default_factory=dict)  # vip -> set of bx hosts
    responses_analyzed: int = 0
    inconsistent_headers: int = 0  # Via/X-Cache hop-count mismatches

    @property
    def fanout_per_vip(self) -> Optional[int]:
        """The inferred edge-bx count behind each vip (the paper: four)."""
        if not self.edge_bx_per_vip:
            return None
        sizes = {len(hosts) for hosts in self.edge_bx_per_vip.values()}
        return max(sizes)

    @property
    def uses_traffic_server(self) -> bool:
        """Whether the caches identify as Apache Traffic Server."""
        return any("ApacheTrafficServer" in agent for agent in self.software)

    def render(self) -> str:
        """Text rendering of the Section 3.3 inference."""
        lines = [
            f"Analyzed {self.responses_analyzed} responses",
            f"layer order (origin first): {' -> '.join(self.layer_order)}",
            f"edge-bx hosts seen: {len(self.edge_bx_hosts)}",
            f"edge-lx hosts seen: {len(self.edge_lx_hosts)}",
            f"origins: {sorted(self.origin_hosts)}",
            f"cache software: {sorted(self.software)}",
        ]
        if self.fanout_per_vip is not None:
            lines.append(f"edge-bx per vip: {self.fanout_per_vip}")
        return "\n".join(lines)


def _role_of(host: str) -> str:
    try:
        name = parse_hostname(host)
    except NamingError:
        return "origin"
    if name.function is ServerFunction.EDGE:
        if name.secondary is SecondaryFunction.BX:
            return "edge-bx"
        if name.secondary is SecondaryFunction.LX:
            return "edge-lx"
    return str(name.role)


def infer_hierarchy(
    samples: Iterable[tuple[Optional[IPv4Address], HttpResponse]],
) -> HierarchyInference:
    """Infer the edge-site structure from ``(vip address, response)`` pairs.

    The vip address (the one DNS handed out, ``None`` if unknown) lets
    the analysis count how many distinct edge-bx hosts answer behind
    each vip — the "one vip IP represents four servers" conclusion.
    """
    inference = HierarchyInference()
    per_vip: dict = defaultdict(set)
    layer_orders: set = set()

    for vip, response in samples:
        via_header = response.headers.get("Via")
        if not via_header:
            continue
        inference.responses_analyzed += 1
        entries = parse_via(via_header)
        roles = []
        for entry in entries:
            role = _role_of(entry.host)
            roles.append(role)
            if role == "edge-bx":
                inference.edge_bx_hosts.add(entry.host)
                if vip is not None:
                    per_vip[vip].add(entry.host)
            elif role == "edge-lx":
                inference.edge_lx_hosts.add(entry.host)
            elif role == "origin":
                inference.origin_hosts.add(entry.host)
            if entry.agent:
                inference.software.add(entry.agent)
        layer_orders.add(tuple(roles))
        x_cache = response.headers.get("X-Cache")
        if x_cache and len(parse_x_cache(x_cache)) != len(entries):
            inference.inconsistent_headers += 1

    inference.edge_bx_per_vip = dict(per_vip)
    # The canonical full chain is the longest role sequence observed.
    if layer_orders:
        inference.layer_order = max(layer_orders, key=len)
    return inference
