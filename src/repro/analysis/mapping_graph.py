"""Reconstructing the request-mapping graph (Figure 2).

The authors rebuilt the mapping infrastructure from full recursive
resolutions: every CNAME hop observed, its TTL, and which operator's
DNS answered it.  :class:`MappingGraph` does the same over a set of
:class:`~repro.dns.resolver.Resolution` objects (the AWS-VM-style
detailed measurements) and recovers the paper's structural findings:
the chain's names and TTLs, the decision points, and the operator
attribution ("two of the three selection steps run on Akamai").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..dns.records import RecordType
from ..dns.resolver import Resolution

__all__ = ["MappingEdge", "MappingGraph"]


@dataclass(frozen=True)
class MappingEdge:
    """One observed CNAME redirect."""

    source: str
    target: str
    ttl: int


@dataclass
class MappingGraph:
    """The CNAME graph with operator attribution per name."""

    operators: dict = field(default_factory=dict)  # name -> operator
    edges: set = field(default_factory=set)  # set[MappingEdge]
    terminal_names: set = field(default_factory=set)  # names answering A records

    @classmethod
    def from_resolutions(cls, resolutions: Iterable[Resolution]) -> "MappingGraph":
        """Accumulate the graph from observed resolutions."""
        graph = cls()
        for resolution in resolutions:
            graph.add(resolution)
        return graph

    def add(self, resolution: Resolution) -> None:
        """Fold one resolution's chain into the graph."""
        for step in resolution.steps:
            for record in step.records:
                if record.rtype is RecordType.CNAME:
                    self.operators.setdefault(record.name, step.operator)
                    self.edges.add(
                        MappingEdge(record.name, record.target, record.ttl)
                    )
                elif record.rtype is RecordType.A:
                    self.operators.setdefault(record.name, step.operator)
                    self.terminal_names.add(record.name)

    # ----- structural queries ------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Every DNS name observed, sorted."""
        seen = set(self.operators)
        for edge in self.edges:
            seen.add(edge.source)
            seen.add(edge.target)
        return tuple(sorted(seen))

    def targets_of(self, name: str) -> tuple[MappingEdge, ...]:
        """The outgoing redirects of ``name``, sorted by target."""
        return tuple(
            sorted(
                (edge for edge in self.edges if edge.source == name),
                key=lambda edge: edge.target,
            )
        )

    def decision_points(self) -> tuple[str, ...]:
        """Names observed redirecting to more than one target.

        These are the selection steps of the Meta-CDN service: the
        country split, the Apple/third-party decision, and the
        third-party CDN selection.
        """
        return tuple(
            sorted(
                name
                for name in {edge.source for edge in self.edges}
                if len({e.target for e in self.targets_of(name)}) > 1
            )
        )

    def operator_of(self, name: str) -> Optional[str]:
        """Which operator's DNS answers ``name``."""
        return self.operators.get(name)

    def selection_operators(self) -> dict:
        """Operator per decision point (the paper's 2-Akamai/1-Apple)."""
        return {name: self.operators.get(name) for name in self.decision_points()}

    def ttl_of(self, source: str, target: str) -> Optional[int]:
        """The TTL observed on a specific redirect."""
        for edge in self.edges:
            if edge.source == source and edge.target == target:
                return edge.ttl
        return None

    def chains_from(self, entry: str, _prefix: tuple = ()) -> list[tuple[str, ...]]:
        """Every distinct name chain reachable from ``entry``."""
        outgoing = self.targets_of(entry)
        if not outgoing or entry in _prefix:
            return [(*_prefix, entry)]
        chains: list[tuple[str, ...]] = []
        for edge in outgoing:
            chains.extend(self.chains_from(edge.target, (*_prefix, entry)))
        return chains

    def render(self) -> str:
        """Text rendering of the graph (the Figure 2 regeneration)."""
        lines = ["Request-mapping graph (reconstructed from resolutions):", ""]
        for name in self.names:
            operator = self.operators.get(name, "?")
            marker = " [delivery]" if name in self.terminal_names else ""
            lines.append(f"{name}  ({operator}){marker}")
            for edge in self.targets_of(name):
                lines.append(f"    --CNAME ttl={edge.ttl}--> {edge.target}")
        decisions = self.selection_operators()
        lines.append("")
        lines.append(f"decision points: {len(decisions)}")
        for name, operator in decisions.items():
            lines.append(f"    {name}  run by {operator}")
        return "\n".join(lines)
