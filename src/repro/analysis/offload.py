"""Offload impact (Figure 7, Section 5.3).

The paper's pipeline: select the cache IPs observed in RIPE Atlas DNS
measurements, cross-correlate with Netflow (traffic) and BGP (Source
AS), scale by SNMP to undo sampling, then plot per-CDN traffic as a
ratio of each CDN's own pre-update peak (the 100 % line is the maximum
over the three days before the release).  Headline numbers: Apple
peaks at 211 %, Limelight at 438 %, Akamai at 113 %; the excess volume
on Sep 19 splits 33 % / 44 % / 23 % (Apple / Limelight / Akamai), and
on Sep 20-21 roughly 60/40 Apple/Limelight with no extra Akamai.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..isp.classify import ClassifiedFlow
from ..isp.netflow import NetflowCollector
from ..isp.snmp import SnmpCounters

__all__ = [
    "operator_series",
    "traffic_ratio_series",
    "ratio_peaks",
    "excess_volume_shares",
    "OffloadSummary",
    "summarize_offload",
]


def operator_series(
    classified: Iterable[ClassifiedFlow],
    bin_seconds: float = 3600.0,
    snmp: Optional[SnmpCounters] = None,
    collector: Optional[NetflowCollector] = None,
) -> dict:
    """Per-operator byte series: ``{operator: {bin_start: bytes}}``.

    When ``snmp`` and ``collector`` are given, each flow's bytes are
    multiplied by the link/bin SNMP scale factor — the Section 5.3
    sampling correction.  With exact (unsampled) collection the factor
    is 1 and may be omitted.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    series: dict[str, dict[float, float]] = {}
    factor_cache: dict[tuple[str, float], float] = {}
    for item in classified:
        if item.operator is None:
            continue
        bin_start = math.floor(item.flow.timestamp / bin_seconds) * bin_seconds
        scale = 1.0
        if snmp is not None and collector is not None:
            key = (item.flow.link_id, snmp.bin_start(item.flow.timestamp))
            if key not in factor_cache:
                factor = snmp.scale_factor(
                    collector, item.flow.link_id, item.flow.timestamp
                )
                factor_cache[key] = factor if factor is not None else 1.0
            scale = factor_cache[key]
        per_operator = series.setdefault(item.operator, {})
        per_operator[bin_start] = per_operator.get(bin_start, 0.0) + (
            item.flow.bytes * scale
        )
    return series


def traffic_ratio_series(
    series: dict,
    reference_start: float,
    reference_end: float,
) -> dict:
    """Figure 7: each operator's traffic relative to its pre-event peak.

    Returns ``{operator: [(bin_start, ratio)]}`` where 1.0 is the
    operator's maximum bin inside the reference window.
    """
    ratios: dict[str, list[tuple[float, float]]] = {}
    for operator, bins in series.items():
        reference = max(
            (volume for start, volume in bins.items()
             if reference_start <= start < reference_end),
            default=0.0,
        )
        if reference <= 0:
            continue
        ratios[operator] = [
            (start, volume / reference) for start, volume in sorted(bins.items())
        ]
    return ratios


def ratio_peaks(ratios: dict, window_start: float, window_end: float) -> dict:
    """Each operator's maximum ratio inside a window (the 211/438/113)."""
    peaks: dict[str, float] = {}
    for operator, points in ratios.items():
        window = [r for t, r in points if window_start <= t < window_end]
        if window:
            peaks[operator] = max(window)
    return peaks


def excess_volume_shares(
    series: dict,
    day_start: float,
    reference_day_start: float,
    day_seconds: float = 86400.0,
) -> dict:
    """How the extra traffic of one day splits across operators.

    "Excess" is the day's volume above the same operator's volume on a
    pre-event reference day, clamped at zero; shares normalise to 1.
    """
    excess: dict[str, float] = {}
    for operator, bins in series.items():
        day = sum(
            volume for start, volume in bins.items()
            if day_start <= start < day_start + day_seconds
        )
        reference = sum(
            volume for start, volume in bins.items()
            if reference_day_start <= start < reference_day_start + day_seconds
        )
        excess[operator] = max(0.0, day - reference)
    total = sum(excess.values())
    if total <= 0:
        return {operator: 0.0 for operator in excess}
    return {operator: volume / total for operator, volume in excess.items()}


@dataclass(frozen=True)
class OffloadSummary:
    """The Figure 7 headline quantities for one run."""

    ratio_peaks: dict
    excess_shares_release_day: dict
    excess_shares_day_after: dict

    def render(self, label_time=None) -> str:
        """Text rendering of the Figure 7 regeneration."""
        lines = ["Offload impact (Figure 7):", ""]
        lines.append("peak traffic ratio vs pre-update peak:")
        for operator, peak in sorted(self.ratio_peaks.items()):
            lines.append(f"    {operator:<12}{peak * 100:7.0f}%")
        lines.append("excess-volume shares, release day:")
        for operator, share in sorted(self.excess_shares_release_day.items()):
            lines.append(f"    {operator:<12}{share * 100:7.0f}%")
        lines.append("excess-volume shares, day after:")
        for operator, share in sorted(self.excess_shares_day_after.items()):
            lines.append(f"    {operator:<12}{share * 100:7.0f}%")
        return "\n".join(lines)


def summarize_offload(
    classified: Iterable[ClassifiedFlow],
    release_day_start: float,
    bin_seconds: float = 3600.0,
    snmp: Optional[SnmpCounters] = None,
    collector: Optional[NetflowCollector] = None,
) -> OffloadSummary:
    """One-call Figure 7 summary around a release day."""
    series = operator_series(classified, bin_seconds, snmp, collector)
    day = 86400.0
    reference_start = release_day_start - 3 * day
    ratios = traffic_ratio_series(series, reference_start, release_day_start)
    return OffloadSummary(
        ratio_peaks=ratio_peaks(ratios, release_day_start, release_day_start + 2 * day),
        excess_shares_release_day=excess_volume_shares(
            series, release_day_start, release_day_start - day
        ),
        excess_shares_day_after=excess_volume_shares(
            series, release_day_start + day, release_day_start - day
        ),
    )
