"""Overflow impact (Figure 8, Section 5.4).

Figure 8 plots, per time bin, how one CDN's *overflow* traffic (flows
whose Source AS differs from the handover AS) splits across handover
ASs.  The paper's findings for Limelight: a stable A/B/C mix before the
event, an AS-A spike on Sep 19 (interpreted as the pre-cache fill),
then AS D — never seen before — delivering more than 40 % of the
overflow and fully saturating two of its four links, until Limelight
stops using those caches after about three days.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..isp.classify import ClassifiedFlow
from ..isp.snmp import SnmpCounters
from ..isp.topology import EyeballIsp
from ..net.asys import ASN

__all__ = [
    "overflow_share_series",
    "first_seen",
    "peak_share",
    "OverflowSummary",
    "summarize_overflow",
]


def overflow_share_series(
    classified: Iterable[ClassifiedFlow],
    bin_seconds: float = 21600.0,
    operator: Optional[str] = None,
) -> list:
    """Handover-AS shares of overflow traffic per bin.

    Returns ``[(bin_start, {handover_asn: share})]`` with shares
    normalised within each bin — the Figure 8 stacked percentages.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    bins: dict[float, dict[ASN, float]] = {}
    for item in classified:
        if not item.is_overflow:
            continue
        if operator is not None and item.operator != operator:
            continue
        bin_start = math.floor(item.flow.timestamp / bin_seconds) * bin_seconds
        per_as = bins.setdefault(bin_start, {})
        per_as[item.handover_asn] = per_as.get(item.handover_asn, 0.0) + item.flow.bytes
    result = []
    for bin_start, per_as in sorted(bins.items()):
        total = sum(per_as.values())
        if total <= 0:
            # Zero-byte flows can put an empty-volume bin in the map;
            # normalising it would divide by zero.
            continue
        shares = {asn: volume / total for asn, volume in per_as.items()}
        result.append((bin_start, shares))
    return result


def first_seen(series: list, asn: ASN, min_share: float = 0.01) -> Optional[float]:
    """When a handover AS first carried a noticeable overflow share."""
    for bin_start, shares in series:
        if shares.get(asn, 0.0) >= min_share:
            return bin_start
    return None


def peak_share(series: list, asn: ASN) -> float:
    """The maximum share a handover AS reached in any bin."""
    return max((shares.get(asn, 0.0) for _, shares in series), default=0.0)


@dataclass(frozen=True)
class OverflowSummary:
    """The Figure 8 headline quantities for one run."""

    series: list
    new_as: ASN
    new_as_first_seen: Optional[float]
    new_as_peak_share: float
    saturated_links: list

    def render(self, label_time=None) -> str:
        """Text rendering of the Figure 8 regeneration."""
        label = label_time if label_time is not None else str
        lines = ["Overflow by handover AS (Figure 8):", ""]
        for bin_start, shares in self.series:
            parts = ", ".join(
                f"{asn}={share * 100:.0f}%"
                for asn, share in sorted(shares.items(), key=lambda kv: -kv[1])
            )
            lines.append(f"    {label(bin_start)}: {parts}")
        lines.append("")
        seen = (
            label(self.new_as_first_seen)
            if self.new_as_first_seen is not None
            else "never"
        )
        lines.append(
            f"{self.new_as} first seen {seen}, "
            f"peak share {self.new_as_peak_share * 100:.0f}%"
        )
        lines.append(f"saturated links at event peak: {self.saturated_links}")
        return "\n".join(lines)


def summarize_overflow(
    classified: Iterable[ClassifiedFlow],
    new_as: ASN,
    isp: EyeballIsp,
    snmp: SnmpCounters,
    peak_probe_times: Iterable[float],
    operator: str = "Limelight",
    bin_seconds: float = 21600.0,
) -> OverflowSummary:
    """One-call Figure 8 summary.

    ``new_as`` is the handover AS whose appearance the analysis tracks
    (the paper's AS D); ``peak_probe_times`` are the instants checked
    for link saturation (e.g. hourly over the release evening).
    """
    series = overflow_share_series(classified, bin_seconds, operator=operator)
    saturated: set[str] = set()
    for probe_time in peak_probe_times:
        saturated.update(snmp.saturated_links(isp, probe_time, threshold=0.95))
    return OverflowSummary(
        series=series,
        new_as=new_as,
        new_as_first_seen=first_seen(series, new_as, min_share=0.02),
        new_as_peak_share=peak_share(series, new_as),
        saturated_links=sorted(saturated),
    )
