"""Traceroute analysis: paths and cache geolocation.

The paper ran hourly traceroutes to every server IP identified via DNS
(Section 3.2) to corroborate the cache locations derived from the
naming scheme.  This module recovers locations by the classic
minimum-RTT constraint: among all probes that traced a cache, the one
with the lowest RTT bounds the cache to its own vicinity (light in
fibre travels ~100 km per millisecond of RTT).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..atlas.probe import AtlasProbe
from ..atlas.results import TracerouteMeasurement
from ..net.geo import Coordinates, great_circle_km
from ..net.ipv4 import IPv4Address

__all__ = ["GeolocationEstimate", "geolocate_caches", "PathSummary", "summarize_paths"]

# Conservative km-per-ms bound (speed of light in fibre, round trip).
KM_PER_RTT_MS = 100.0


@dataclass(frozen=True)
class GeolocationEstimate:
    """A cache address located at the min-RTT probe's metro."""

    address: IPv4Address
    coordinates: Coordinates
    min_rtt_ms: float
    probe_id: int

    @property
    def radius_km(self) -> float:
        """The constraint radius implied by the best RTT."""
        return self.min_rtt_ms * KM_PER_RTT_MS

    def error_km(self, truth: Coordinates) -> float:
        """Distance between the estimate and the true metro."""
        return great_circle_km(self.coordinates, truth)


def geolocate_caches(
    traceroutes: Iterable[TracerouteMeasurement],
    probes: Iterable[AtlasProbe],
) -> dict[IPv4Address, GeolocationEstimate]:
    """Min-RTT geolocation of every traced destination."""
    probe_index = {probe.probe_id: probe for probe in probes}
    best: dict[IPv4Address, GeolocationEstimate] = {}
    for trace in traceroutes:
        if not trace.reached or not trace.hops:
            continue
        probe = probe_index.get(trace.probe_id)
        if probe is None:
            continue
        rtt = trace.hops[-1].rtt_ms
        current = best.get(trace.destination)
        if current is None or rtt < current.min_rtt_ms:
            best[trace.destination] = GeolocationEstimate(
                address=trace.destination,
                coordinates=probe.coordinates,
                min_rtt_ms=rtt,
                probe_id=probe.probe_id,
            )
    return best


@dataclass(frozen=True)
class PathSummary:
    """Aggregate facts about a traceroute dataset."""

    trace_count: int
    reached_ratio: float
    median_rtt_ms: float
    as_path_lengths: dict  # length -> count

    def render(self) -> str:
        """Text rendering for reports."""
        lengths = ", ".join(
            f"{length} ASes: {count}"
            for length, count in sorted(self.as_path_lengths.items())
        )
        return (
            f"{self.trace_count} traceroutes, "
            f"{self.reached_ratio * 100:.1f}% reached, "
            f"median RTT {self.median_rtt_ms:.1f} ms; paths: {lengths}"
        )


def summarize_paths(
    traceroutes: Iterable[TracerouteMeasurement],
) -> PathSummary:
    """Reach, RTT and AS-path-length statistics."""
    traces = list(traceroutes)
    if not traces:
        return PathSummary(0, 0.0, 0.0, {})
    reached = [trace for trace in traces if trace.reached]
    rtts = sorted(trace.hops[-1].rtt_ms for trace in reached if trace.hops)
    lengths: dict[int, int] = defaultdict(int)
    for trace in reached:
        lengths[len(trace.as_path)] += 1
    return PathSummary(
        trace_count=len(traces),
        reached_ratio=len(reached) / len(traces),
        median_rtt_ms=rtts[len(rtts) // 2] if rtts else 0.0,
        as_path_lengths=dict(lengths),
    )


def geolocation_errors_km(
    estimates: Mapping[IPv4Address, GeolocationEstimate],
    truth: Mapping[IPv4Address, Coordinates],
) -> list[float]:
    """Per-cache estimation error against ground-truth metros."""
    errors = []
    for address, estimate in estimates.items():
        true_coords = truth.get(address)
        if true_coords is not None:
            errors.append(estimate.error_km(true_coords))
    return sorted(errors)
