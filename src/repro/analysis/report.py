"""One-shot paper report: every reproduced result in a single document.

:func:`generate_report` takes a completed scenario run and assembles
the regenerated Figures 2-8, Table 1 facts, and the ablation-relevant
headline numbers into one text report — the artifact a replication
study would attach.  The CLI (``python -m repro report``) and the
``examples/`` scripts use it.
"""

from __future__ import annotations

from typing import Optional

from ..isp.classify import TrafficClassifier
from ..net.geo import Continent
from ..workload.timeline import Timeline
from .categories import CdnCategorizer
from .mapping_graph import MappingGraph
from .offload import summarize_offload
from .overflow import summarize_overflow
from .paths import geolocate_caches, geolocation_errors_km, summarize_paths
from .sites import discover_sites
from .unique_ips import peak_vs_baseline, series_by_continent, unique_ip_series

__all__ = ["generate_report"]

_RULE = "=" * 72


def _section(title: str) -> list[str]:
    return ["", _RULE, title, _RULE, ""]


def generate_report(scenario, timeline: Optional[Timeline] = None) -> str:
    """Build the full reproduction report from a completed run.

    ``scenario`` is a :class:`~repro.simulation.scenario.Sep2017Scenario`
    whose engine has been run across (at least) the event window.
    """
    tl = timeline if timeline is not None else scenario.timeline
    release = tl.ios_11_0_release
    lines: list[str] = [
        "Dissecting Apple's Meta-CDN during an iOS Update — reproduction report",
        f"(release: {tl.datetime(release):%Y-%m-%d %H:%M} UTC)",
    ]

    # --- Figure 2: mapping graph from the AWS-VM campaign ---------------
    lines += _section("Figure 2 — request-mapping infrastructure")
    resolutions = scenario.aws_campaign.resolutions()
    if resolutions:
        graph = MappingGraph.from_resolutions(resolutions)
        lines.append(graph.render())
        lines.append(
            f"\navailability checks passed: "
            f"{scenario.aws_campaign.availability_ratio() * 100:.1f}%"
        )
    else:
        lines.append("(no AWS-VM measurements in this run)")

    # --- Figure 3 / Table 1: site discovery ------------------------------
    lines += _section("Figure 3 / Table 1 — Apple CDN sites")
    discovery = discover_sites(scenario.estate.apple.reverse_dns_table())
    lines.append(discovery.render())
    traces = scenario.traceroute_campaign.store.traceroutes
    if traces:
        estimates = geolocate_caches(traces, scenario.global_probes)
        truth = {
            placed.server.address: placed.location.coordinates
            for deployment in scenario.estate.deployments.values()
            for placed in deployment.servers
        }
        errors = geolocation_errors_km(estimates, truth)
        lines.append("")
        lines.append(summarize_paths(traces).render())
        if errors:
            lines.append(
                f"min-RTT geolocation: {len(estimates)} caches, "
                f"median error {errors[len(errors) // 2]:.0f} km"
            )

    # --- Figure 4: global unique IPs --------------------------------------
    lines += _section("Figure 4 — unique cache IPs (worldwide probes)")
    categorizer = CdnCategorizer(scenario.estate.deployments)
    global_store = scenario.global_campaign.store
    if global_store.dns_count:
        # One streaming pass over the columnar store builds every
        # continent facet (the old code rescanned a full history copy
        # once per continent).
        facets = series_by_continent(global_store, categorizer.category, 7200.0)
        for continent in Continent:
            series = facets[continent]
            if not series:
                continue
            peak, baseline = peak_vs_baseline(series, release)
            ratio = peak / baseline if baseline else 0.0
            lines.append(
                f"    {continent.value:<16} pre-avg {baseline:7.1f}  "
                f"post-peak {peak:5d}  ratio {ratio:5.2f}x"
            )
    else:
        lines.append("(no global campaign measurements in this run)")

    # --- Figure 5: ISP unique IPs -----------------------------------------
    lines += _section("Figure 5 — unique cache IPs (eyeball-ISP probes)")
    isp_store = scenario.isp_campaign.store
    if isp_store.dns_count:
        series = unique_ip_series(isp_store, categorizer.category, 43200.0)
        for point in series:
            counts = ", ".join(
                f"{name}={count}" for name, count in sorted(point.counts.items())
            )
            lines.append(
                f"    {tl.datetime(point.bin_start):%b %d %Hh}: "
                f"total={point.total:4d}  ({counts})"
            )
    else:
        lines.append("(no ISP campaign measurements in this run)")

    # --- Figures 6-8: the ISP traffic view ---------------------------------
    lines += _section("Figures 6-8 — ISP traffic: offload and overflow")
    records = scenario.netflow.records
    if records:
        classifier = TrafficClassifier(
            scenario.isp, scenario.rib, scenario.operator_of
        )
        classified = list(classifier.classify_all(records))
        lines.append(summarize_offload(classified, tl.day_start(release)).render())
        lines.append("")
        from ..simulation.scenario import AS_TRANSIT_D

        overflow = summarize_overflow(
            classified,
            new_as=AS_TRANSIT_D,
            isp=scenario.isp,
            snmp=scenario.snmp,
            peak_probe_times=[release + hour * 3600.0 for hour in range(48)],
        )
        lines.append(overflow.render(label_time=tl.date_label))
    else:
        lines.append("(no ISP traffic collected in this run)")

    # --- Steering ablation: anycast catchments (beyond the paper) ---------
    plane = getattr(scenario, "anycast", None)
    if plane is not None:
        from ..anycast import CatchmentAnalysis

        analysis = CatchmentAnalysis.from_plane(plane)
        steering = getattr(scenario.config, "steering", "anycast")
        lines += _section(
            f"Steering ablation — anycast catchments ({steering} mode)"
        )
        for site_id, share in sorted(
            analysis.peak_share_by_site.items(),
            key=lambda item: (-item[1], item[0]),
        )[:10]:
            lines.append(f"    {site_id:<12} peak share {share * 100:5.1f}%")
        lines.append("")
        lines.append(
            f"    {analysis.sites_live} sites live over {analysis.ticks} "
            f"ticks; {analysis.map_changes} catchment-map changes, "
            f"affinity-break rate {analysis.affinity_break_rate:.4f}"
        )
        lines.append(
            f"    shifted traffic {analysis.shifted_gbps_total:.0f} Gbps; "
            f"mapping distance {analysis.mapping_distance_km:.0f} km vs "
            f"nearest-site {analysis.nearest_distance_km:.0f} km "
            f"(anycast cost +{analysis.mapping_distance_delta_km:.0f} km)"
        )

    # --- Resolver populations: mapping accuracy (beyond the paper) --------
    resolver_plane = getattr(scenario, "resolver_plane", None)
    if resolver_plane is not None:
        from .resolver_accuracy import ResolverAccuracy

        accuracy = ResolverAccuracy.from_scenario(scenario)
        lines += _section(
            "Resolver populations — mapping accuracy through shared POP caches"
        )
        for row in accuracy.render().splitlines():
            lines.append(f"    {row}")

    return "\n".join(lines)
