"""Mapping accuracy under public-resolver populations.

The paper's probes resolve on their own ISP path, so the Meta-CDN's
location-based DNS sees every client exactly.  Behind a shared public
resolver it sees the POP (ECS off) or a truncated prefix (ECS on) —
three measurable effects this module quantifies from a finished run:

* **Mis-mapping distance** — how much farther the selected edge is
  from each client than the nearest edge in rotation would have been
  (reusing :func:`~repro.net.geo.great_circle_km`), for probes behind
  POPs vs probes on the ISP path.
* **Selection responsiveness** — how long after the release-time
  weight flip a shared cache first re-resolves the terminal selection
  hop, per POP (the TTL-15 re-steer seen through a shared cache).
* **Cache-hit dilution** — the shared cache's hit ratio against the
  ISP-path counterfactual for the same probes over the same tick grid.

All aggregates are *recomputed analytically* by replaying the cache
timeline over each campaign's measured tick grid with fresh resolvers,
never read from runtime counters: per-probe hit/miss flags depend on
intra-worker ordering, so runtime counters are shard-dependent while
this replay — like the measurements themselves — is a pure function of
the scenario (mirroring
:meth:`~repro.anycast.analysis.CatchmentAnalysis.from_plane`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from ..dns.resolver import RecursiveResolver, ResolutionError
from ..net.geo import Coordinates, great_circle_km
from ..obs import NullRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.scenario import Sep2017Scenario

__all__ = ["ResolverAccuracy"]


def _nearest_km(origin: Coordinates, candidates: list[Coordinates]) -> float:
    best = float("inf")
    for coordinates in candidates:
        km = great_circle_km(origin, coordinates)
        if km < best:
            best = km
    return best


@dataclass(frozen=True)
class ResolverAccuracy:
    """Run-level mapping-accuracy aggregates for the resolver plane."""

    population: str
    public_share: float
    ecs: bool
    scope: int
    pops_live: int = 0
    partitions: int = 0
    public_probes: int = 0
    isp_probes: int = 0
    # Mean km from client to the edges it was handed vs the nearest
    # edge observed in rotation; the delta is the mapping price of the
    # resolver path.
    public_mismap_km: float = 0.0
    public_nearest_km: float = 0.0
    public_mismap_delta_km: float = 0.0
    isp_mismap_km: float = 0.0
    isp_nearest_km: float = 0.0
    isp_mismap_delta_km: float = 0.0
    # Shared-cache behaviour vs the ISP-path counterfactual.
    shared_hits: int = 0
    shared_misses: int = 0
    isp_hits: int = 0
    isp_misses: int = 0
    public_hit_ratio: float = 0.0
    isp_hit_ratio: float = 0.0
    cache_hit_dilution: float = 0.0  # public minus counterfactual
    # Seconds from the release-time weight flip until a shared cache
    # first re-resolved the terminal selection hop.
    propagation_by_pop: dict = field(default_factory=dict)
    propagation_seconds: float = 0.0
    isp_propagation_seconds: float = 0.0

    @classmethod
    def from_scenario(cls, scenario: "Sep2017Scenario") -> "ResolverAccuracy":
        """Fold a finished run's stores and resolver plane (empty is fine)."""
        plane = scenario.resolver_plane
        if plane is None:
            raise ValueError(
                "scenario has no resolver plane "
                "(resolver_population is 'isp')"
            )
        config = scenario.config
        campaigns = {
            "ripe-global": scenario.global_campaign,
            "ripe-isp": scenario.isp_campaign,
        }
        coordinates_of = _server_coordinates(scenario)
        quiet = NullRegistry()
        flip = scenario.timeline.ios_11_0_release

        public_sel: list[float] = []
        public_near: list[float] = []
        isp_sel: list[float] = []
        isp_near: list[float] = []
        shared_hits = shared_misses = 0
        isp_hits = isp_misses = 0
        propagation: dict[str, list[float]] = {}
        isp_propagation: list[float] = []
        partitions = 0
        public_probes: set[int] = set()
        isp_path_probes: set[int] = set()

        for name, campaign in campaigns.items():
            if name not in plane.campaigns:
                continue
            probes_by_id = {p.probe_id: p for p in plane.probes(name)}
            for probe in plane.probes(name):
                if probe.probe_id in plane.pop_of:
                    public_probes.add(probe.probe_id)
                else:
                    isp_path_probes.add(probe.probe_id)

            # --- mis-mapping from the recorded measurements -----------
            # "Nearest" is judged against the edges this campaign
            # actually saw in rotation, not the whole estate.
            candidates = sorted(
                {
                    address
                    for address in campaign.store.unique_addresses()
                    if address in coordinates_of
                }
            )
            candidate_coords = [coordinates_of[a] for a in candidates]
            grid: set[float] = set()
            for measurement in campaign.store.dns:
                grid.add(measurement.timestamp)
                probe = probes_by_id.get(measurement.probe_id)
                if probe is None or not measurement.addresses:
                    continue
                known = [
                    coordinates_of[a]
                    for a in measurement.addresses
                    if a in coordinates_of
                ]
                if not known or not candidate_coords:
                    continue
                selected = sum(
                    great_circle_km(probe.coordinates, c) for c in known
                ) / len(known)
                nearest = _nearest_km(probe.coordinates, candidate_coords)
                if measurement.probe_id in plane.pop_of:
                    public_sel.append(selected)
                    public_near.append(nearest)
                else:
                    isp_sel.append(selected)
                    isp_near.append(nearest)

            # --- cache replay over the measured tick grid -------------
            ticks = sorted(grid)
            if not ticks:
                partitions += len(plane.groups(name))
                continue
            groups_by_pop: dict[str, list] = {}
            for group in plane.groups(name):
                groups_by_pop.setdefault(group.pop.pop_id, []).append(group)
            partitions += len(plane.groups(name))
            for pop_id, groups in groups_by_pop.items():
                shared = RecursiveResolver(
                    scenario.estate.servers,
                    cache=True,
                    metrics=quiet,
                    cache_scope=plane.scope if plane.ecs else 0,
                    cache_capacity=plane.cache_capacity,
                )
                flipped: dict[int, bool] = {i: False for i in range(len(groups))}
                for tick in ticks:
                    for index, group in enumerate(groups):
                        context = replace(group.canonical, now=tick)
                        try:
                            outcome = shared.resolve(campaign.target, context)
                        except ResolutionError:
                            continue
                        hops = len(outcome.steps)
                        fresh = sum(
                            1 for s in outcome.steps if not s.from_cache
                        )
                        shared_misses += fresh
                        shared_hits += (hops - fresh) + (group.size - 1) * hops
                        terminal_fresh = (
                            outcome.steps and not outcome.steps[-1].from_cache
                        )
                        if (
                            not flipped[index]
                            and tick >= flip
                            and terminal_fresh
                        ):
                            flipped[index] = True
                            propagation.setdefault(pop_id, []).append(
                                tick - flip
                            )
                # ISP-path counterfactual: the same clients with
                # per-client caches walk an identical TTL lattice, so
                # one replay per partition scales by its size.
                for group in groups:
                    private = RecursiveResolver(
                        scenario.estate.servers, cache=True, metrics=quiet
                    )
                    seen_flip = False
                    for tick in ticks:
                        context = replace(group.canonical, now=tick)
                        try:
                            outcome = private.resolve(campaign.target, context)
                        except ResolutionError:
                            continue
                        hops = len(outcome.steps)
                        fresh = sum(
                            1 for s in outcome.steps if not s.from_cache
                        )
                        isp_misses += fresh * group.size
                        isp_hits += (hops - fresh) * group.size
                        if (
                            not seen_flip
                            and tick >= flip
                            and outcome.steps
                            and not outcome.steps[-1].from_cache
                        ):
                            seen_flip = True
                            isp_propagation.append(tick - flip)

        def mean(values: list[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        shared_total = shared_hits + shared_misses
        isp_total = isp_hits + isp_misses
        public_ratio = shared_hits / shared_total if shared_total else 0.0
        isp_ratio = isp_hits / isp_total if isp_total else 0.0
        all_propagation = [s for pop in propagation.values() for s in pop]
        return cls(
            population=config.resolver_population,
            public_share=config.public_resolver_share,
            ecs=plane.ecs,
            scope=plane.scope,
            pops_live=len(plane.live_pops()),
            partitions=partitions,
            public_probes=len(public_probes),
            isp_probes=len(isp_path_probes),
            public_mismap_km=mean(public_sel),
            public_nearest_km=mean(public_near),
            public_mismap_delta_km=mean(public_sel) - mean(public_near),
            isp_mismap_km=mean(isp_sel),
            isp_nearest_km=mean(isp_near),
            isp_mismap_delta_km=mean(isp_sel) - mean(isp_near),
            shared_hits=shared_hits,
            shared_misses=shared_misses,
            isp_hits=isp_hits,
            isp_misses=isp_misses,
            public_hit_ratio=public_ratio,
            isp_hit_ratio=isp_ratio,
            cache_hit_dilution=public_ratio - isp_ratio,
            propagation_by_pop={
                pop_id: mean(values)
                for pop_id, values in sorted(propagation.items())
            },
            propagation_seconds=mean(all_propagation),
            isp_propagation_seconds=mean(isp_propagation),
        )

    def to_json_dict(self) -> dict:
        """Canonical JSON form (sorted keys, rounded floats)."""
        return {
            "population": self.population,
            "public_share": round(self.public_share, 6),
            "ecs": self.ecs,
            "scope": self.scope,
            "pops_live": self.pops_live,
            "partitions": self.partitions,
            "public_probes": self.public_probes,
            "isp_probes": self.isp_probes,
            "public_mismap_km": round(self.public_mismap_km, 3),
            "public_nearest_km": round(self.public_nearest_km, 3),
            "public_mismap_delta_km": round(self.public_mismap_delta_km, 3),
            "isp_mismap_km": round(self.isp_mismap_km, 3),
            "isp_nearest_km": round(self.isp_nearest_km, 3),
            "isp_mismap_delta_km": round(self.isp_mismap_delta_km, 3),
            "shared_hits": self.shared_hits,
            "shared_misses": self.shared_misses,
            "isp_hits": self.isp_hits,
            "isp_misses": self.isp_misses,
            "public_hit_ratio": round(self.public_hit_ratio, 6),
            "isp_hit_ratio": round(self.isp_hit_ratio, 6),
            "cache_hit_dilution": round(self.cache_hit_dilution, 6),
            "propagation_by_pop": {
                pop: round(seconds, 3)
                for pop, seconds in sorted(self.propagation_by_pop.items())
            },
            "propagation_seconds": round(self.propagation_seconds, 3),
            "isp_propagation_seconds": round(self.isp_propagation_seconds, 3),
        }

    def render(self) -> str:
        """A human-readable block for reports and the CLI."""
        lines = [
            f"population: {self.population} "
            f"(public share {self.public_share:.2f}, "
            f"ecs {'on' if self.ecs else 'off'}, scope /{self.scope})",
            f"POPs live: {self.pops_live}, shared-cache partitions: "
            f"{self.partitions}",
            f"probes: {self.public_probes} public, {self.isp_probes} "
            "ISP-path",
            "mis-mapping (selected vs nearest in-rotation edge):",
            f"  public: {self.public_mismap_km:8.1f} km selected, "
            f"{self.public_nearest_km:8.1f} km nearest "
            f"(delta {self.public_mismap_delta_km:+.1f} km)",
            f"  isp:    {self.isp_mismap_km:8.1f} km selected, "
            f"{self.isp_nearest_km:8.1f} km nearest "
            f"(delta {self.isp_mismap_delta_km:+.1f} km)",
            f"cache hits: shared {self.shared_hits}/{self.shared_misses} "
            f"(ratio {self.public_hit_ratio:.3f}) vs isp-path "
            f"{self.isp_hits}/{self.isp_misses} "
            f"(ratio {self.isp_hit_ratio:.3f}); "
            f"dilution {self.cache_hit_dilution:+.3f}",
            f"weight-flip propagation: {self.propagation_seconds:.0f} s "
            f"mean via POPs vs {self.isp_propagation_seconds:.0f} s "
            "ISP-path",
        ]
        for pop_id, seconds in sorted(self.propagation_by_pop.items()):
            lines.append(f"  {pop_id}: {seconds:8.0f} s")
        return "\n".join(lines)


def _server_coordinates(scenario: "Sep2017Scenario") -> dict:
    """Address -> coordinates for every placed edge (plus Apple VIPs)."""
    coordinates = {}
    for deployment in scenario.estate.deployments.values():
        for placed in deployment.servers:
            coordinates[placed.server.address] = placed.location.coordinates
    for site in scenario.estate.apple.sites:
        for vip in site.vip_addresses:
            coordinates[vip] = site.location.coordinates
    return coordinates
