"""The reproduction scoreboard: every paper target, checked in one pass.

EXPERIMENTS.md is the human-readable comparison; this module is the
machine-checkable one.  :data:`PAPER_TARGETS` lists the paper's headline
quantities with tolerances calibrated to the reproduction's scale, and
:func:`evaluate_scoreboard` measures each from a completed event run and
returns pass/fail verdicts — the bench prints it as the final word on
the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..isp.classify import ClassifiedFlow
from ..net.geo import Continent
from ..workload.timeline import Timeline
from .categories import CdnCategorizer
from .offload import summarize_offload
from .overflow import overflow_share_series, peak_share
from .sites import discover_sites
from .unique_ips import peak_vs_baseline, unique_ip_series

__all__ = ["TargetCheck", "PAPER_TARGETS", "evaluate_scoreboard", "render_scoreboard"]


@dataclass(frozen=True)
class TargetCheck:
    """One scoreboard row."""

    name: str
    paper_value: str
    measured: float
    low: float
    high: float
    unit: str = ""

    @property
    def passed(self) -> bool:
        """Whether the measured value falls inside the accepted band."""
        return self.low <= self.measured <= self.high

    def render(self) -> str:
        """One table row."""
        verdict = "ok " if self.passed else "FAIL"
        return (
            f"    [{verdict}] {self.name:<42} paper {self.paper_value:>10}   "
            f"measured {self.measured:>8.2f}{self.unit} "
            f"(accepted {self.low:g}..{self.high:g})"
        )


# name -> (paper value label, accepted band).  Bands encode the
# shape-not-absolute philosophy: exact where the model is exact
# (structure), generous where probe-scale matters (unique-IP factors).
PAPER_TARGETS: dict[str, tuple[str, float, float, str]] = {
    "apple-sites": ("34", 34, 34, ""),
    "apple-edge-bx": ("1072", 1072, 1072, ""),
    "fig7-apple-peak-ratio": ("211%", 1.7, 2.6, "x"),
    "fig7-limelight-peak-ratio": ("438%", 3.2, 5.5, "x"),
    "fig7-akamai-peak-ratio": ("113%", 1.0, 1.5, "x"),
    "fig7-excess-apple": ("33%", 0.2, 0.5, ""),
    "fig7-excess-limelight": ("44%", 0.35, 0.65, ""),
    "fig7-excess-akamai": ("23%", 0.05, 0.35, ""),
    "fig8-asd-peak-overflow-share": (">40%", 0.4, 0.8, ""),
    "fig8-asd-saturated-links": ("2 of 4", 2, 2, ""),
    "fig4-europe-spike-factor": ("5.1x", 2.5, 8.0, "x"),
}


def evaluate_scoreboard(
    scenario,
    classified: Iterable[ClassifiedFlow],
    timeline: Optional[Timeline] = None,
    new_as=None,
) -> list[TargetCheck]:
    """Measure every target from a completed event run."""
    from ..simulation.scenario import AS_TRANSIT_D

    tl = timeline if timeline is not None else scenario.timeline
    release = tl.ios_11_0_release
    release_day = tl.day_start(release)
    asd = new_as if new_as is not None else AS_TRANSIT_D
    classified = list(classified)
    checks: list[TargetCheck] = []

    def add(name: str, measured: float) -> None:
        paper_value, low, high, unit = PAPER_TARGETS[name]
        checks.append(TargetCheck(name, paper_value, measured, low, high, unit))

    # Structure (Figure 3 / Table 1).
    discovery = discover_sites(scenario.estate.apple.reverse_dns_table())
    add("apple-sites", discovery.site_count)
    add("apple-edge-bx", discovery.total_edge_bx)

    # Figure 7.
    offload = summarize_offload(classified, release_day)
    add("fig7-apple-peak-ratio", offload.ratio_peaks.get("Apple", 0.0))
    add("fig7-limelight-peak-ratio", offload.ratio_peaks.get("Limelight", 0.0))
    add("fig7-akamai-peak-ratio", offload.ratio_peaks.get("Akamai", 0.0))
    add("fig7-excess-apple", offload.excess_shares_release_day.get("Apple", 0.0))
    add(
        "fig7-excess-limelight",
        offload.excess_shares_release_day.get("Limelight", 0.0),
    )
    add("fig7-excess-akamai", offload.excess_shares_release_day.get("Akamai", 0.0))

    # Figure 8.
    series = overflow_share_series(classified, bin_seconds=21600.0,
                                   operator="Limelight")
    add("fig8-asd-peak-overflow-share", peak_share(series, asd))
    saturated = set()
    for hour in range(48):
        saturated.update(
            link
            for link in scenario.snmp.saturated_links(
                scenario.isp, release + hour * 3600.0, threshold=0.95
            )
            if link.startswith("transit-d-")
        )
    add("fig8-asd-saturated-links", len(saturated))

    # Figure 4 (needs the global campaign).  The store goes straight to
    # unique_ip_series so the aggregation streams over columnar
    # segments instead of reconstructing every record.
    global_store = scenario.global_campaign.store
    if global_store.dns_count:
        categorizer = CdnCategorizer(scenario.estate.deployments)
        europe = unique_ip_series(
            global_store, categorizer.category, 7200.0, continent=Continent.EUROPE
        )
        peak, baseline = peak_vs_baseline(europe, release)
        add(
            "fig4-europe-spike-factor",
            peak / baseline if baseline else 0.0,
        )
    return checks


def render_scoreboard(checks: list[TargetCheck]) -> str:
    """The full scoreboard as text."""
    passed = sum(1 for check in checks if check.passed)
    lines = [
        f"Reproduction scoreboard: {passed}/{len(checks)} targets in band",
        "",
    ]
    lines.extend(check.render() for check in checks)
    return "\n".join(lines)
