"""Apple CDN site discovery (Figure 3 and Table 1 in action).

Section 3.3: the authors scanned Apple's ``17.0.0.0/8`` for iOS image
availability, enumerated reverse DNS names, reconstructed the naming
scheme, and geolocated 34 edge sites via the embedded UN/LOCODE codes.

:func:`discover_sites` replays that pipeline over a PTR table (address
-> hostname): parse every name with the Table 1 grammar, group by
``(locode, site id)``, count ``edge-bx`` delivery servers, and emit the
Figure 3 per-metro ``<sites>/<servers>`` labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..apple.naming import NamingError, parse_hostname
from ..cdn.server import SecondaryFunction, ServerFunction
from ..net.geo import Continent
from ..net.ipv4 import IPv4Address
from ..net.locode import LocodeDatabase

__all__ = ["SiteRecord", "SiteDiscovery", "discover_sites"]


@dataclass
class SiteRecord:
    """One discovered edge site."""

    locode: str
    site_id: int
    vip_count: int = 0
    edge_bx_count: int = 0
    edge_lx_count: int = 0
    other_count: int = 0

    @property
    def site_key(self) -> tuple[str, int]:
        """The (locode, site id) identity."""
        return (self.locode, self.site_id)


@dataclass
class SiteDiscovery:
    """The outcome of a PTR-table scan."""

    sites: dict = field(default_factory=dict)  # site_key -> SiteRecord
    unparsed: int = 0

    @property
    def site_count(self) -> int:
        """Number of distinct edge sites (the paper found 34)."""
        return len(self.sites)

    @property
    def total_edge_bx(self) -> int:
        """Delivery servers across all sites."""
        return sum(record.edge_bx_count for record in self.sites.values())

    def metros(self) -> dict:
        """Per-metro (sites, edge-bx servers) aggregation."""
        per_metro: dict[str, list[int]] = {}
        for record in self.sites.values():
            entry = per_metro.setdefault(record.locode, [0, 0])
            entry[0] += 1
            entry[1] += record.edge_bx_count
        return {
            locode: (sites, servers)
            for locode, (sites, servers) in sorted(per_metro.items())
        }

    def figure3_labels(self) -> dict:
        """The Figure 3 ``<sites>/<servers>`` label per metro."""
        return {
            locode: f"{sites}/{servers}"
            for locode, (sites, servers) in self.metros().items()
        }

    def continent_site_counts(
        self, locations: Optional[LocodeDatabase] = None
    ) -> dict:
        """Sites per continent (the density ordering of Section 3.3)."""
        db = locations if locations is not None else LocodeDatabase.builtin()
        counts: dict[Continent, int] = {}
        for record in self.sites.values():
            location = db.find(record.locode)
            if location is None:
                continue
            counts[location.continent] = counts.get(location.continent, 0) + 1
        return counts

    def render(self) -> str:
        """Text rendering of the Figure 3 regeneration."""
        lines = [
            f"Discovered {self.site_count} Apple edge sites, "
            f"{self.total_edge_bx} edge-bx delivery servers",
            "",
            f"{'metro':<8}{'label':>10}",
        ]
        for locode, label in self.figure3_labels().items():
            lines.append(f"{locode:<8}{label:>10}")
        return "\n".join(lines)


def discover_sites(ptr_table: Mapping[IPv4Address, str]) -> SiteDiscovery:
    """Run the Section 3.3 discovery over a reverse-DNS table.

    Unparseable names (non-Apple hosts swept up by the scan) are
    counted, not fatal — a real /8 scan sees plenty of them.
    """
    discovery = SiteDiscovery()
    for _, hostname in sorted(ptr_table.items(), key=lambda item: item[0]):
        try:
            name = parse_hostname(hostname)
        except NamingError:
            discovery.unparsed += 1
            continue
        record = discovery.sites.setdefault(
            name.site_key, SiteRecord(name.locode, name.site_id)
        )
        if name.function is ServerFunction.VIP:
            record.vip_count += 1
        elif name.function is ServerFunction.EDGE:
            if name.secondary is SecondaryFunction.BX:
                record.edge_bx_count += 1
            elif name.secondary is SecondaryFunction.LX:
                record.edge_lx_count += 1
            else:
                record.other_count += 1
        else:
            record.other_count += 1
    return discovery
