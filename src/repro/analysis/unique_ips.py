"""Unique cache IPs over time (Figures 4 and 5).

The paper's headline Figure 4 facts, which these functions recover from
the measurement store: Europe's unique-IP count peaks right after the
release at roughly five times its two-day pre-event average (977 vs
191 in the paper), the spike being mostly Limelight plus Akamai caches
in third-party networks, while Apple's own count stays flat; and inside
the eyeball ISP (Figure 5), Akamai's count rises ~408 % from Sep 18 to
Sep 20 while Apple's does not react.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..atlas.columnar import CONTINENT_INDEX, CONTINENTS
from ..atlas.results import DnsMeasurement
from ..net.geo import Continent
from ..net.ipv4 import IPv4Address
from .categories import CATEGORY_ORDER

__all__ = [
    "UniqueIpPoint",
    "unique_ip_series",
    "windowed_unique_ip_series",
    "series_by_continent",
    "peak_vs_baseline",
    "count_change_ratio",
]


@dataclass(frozen=True)
class UniqueIpPoint:
    """Unique IPs per category within one time bin."""

    bin_start: float
    counts: dict

    @property
    def total(self) -> int:
        """Unique IPs across all categories in the bin."""
        return sum(self.counts.values())

    def count(self, category: str) -> int:
        """Unique IPs of one category in the bin."""
        return self.counts.get(category, 0)


def _points(bins: dict) -> list[UniqueIpPoint]:
    """Materialize the bin accumulator as a sorted point series."""
    return [
        UniqueIpPoint(
            bin_start=bin_start,
            counts={
                category: len(addresses)
                for category, addresses in sorted(per_category.items())
            },
        )
        for bin_start, per_category in sorted(bins.items())
    ]


def _accumulate_store(
    store,
    categorize: Callable[[IPv4Address], str],
    bin_seconds: float,
    continent: Optional[Continent],
    start: Optional[float],
    end: Optional[float],
    cat_of: Optional[dict] = None,
) -> dict:
    """One streaming pass over a store's columnar segments.

    Works on packed address ints (category per int memoized in
    ``cat_of``) and never reconstructs a measurement object; segments
    wholly outside ``[start, end)`` are pruned by their summaries.
    Matches the object path exactly, including its subtlety that a
    matching measurement creates its time bin even when the answer
    carried no addresses.
    """
    wanted = None if continent is None else CONTINENT_INDEX[continent]
    if cat_of is None:
        cat_of = {}
    bins: dict = {}
    for columns, lo, hi in store.dns_segments(start, end):
        times = columns.times
        continents = columns.continents
        offsets = columns.addr_offsets
        values = columns.addr_values
        for row in range(lo, hi):
            if wanted is not None and continents[row] != wanted:
                continue
            bin_start = math.floor(times[row] / bin_seconds) * bin_seconds
            per_category = bins.setdefault(bin_start, {})
            for position in range(offsets[row], offsets[row + 1]):
                value = values[position]
                category = cat_of.get(value)
                if category is None:
                    category = categorize(IPv4Address(value))
                    cat_of[value] = category
                per_category.setdefault(category, set()).add(value)
    return bins


def unique_ip_series(
    measurements,
    categorize: Callable[[IPv4Address], str],
    bin_seconds: float = 7200.0,
    continent: Optional[Continent] = None,
) -> list[UniqueIpPoint]:
    """Unique cache IPs per category per time bin.

    ``continent`` filters by probe continent (the Figure 4 facets);
    ``None`` aggregates worldwide (the Figure 5 single panel uses the
    ISP campaign store instead, no filter needed).

    ``measurements`` may be any iterable of :class:`DnsMeasurement`
    or a :class:`~repro.atlas.results.MeasurementStore`; a store is
    aggregated columnar-segment-wise without reconstructing records.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if hasattr(measurements, "dns_segments"):
        return _points(
            _accumulate_store(
                measurements, categorize, bin_seconds, continent, None, None
            )
        )
    bins: dict[float, dict[str, set[IPv4Address]]] = {}
    for measurement in measurements:
        if continent is not None and measurement.continent is not continent:
            continue
        bin_start = math.floor(measurement.timestamp / bin_seconds) * bin_seconds
        per_category = bins.setdefault(bin_start, {})
        for address in measurement.addresses:
            per_category.setdefault(categorize(address), set()).add(address)
    return _points(bins)


def windowed_unique_ip_series(
    store,
    categorize: Callable[[IPv4Address], str],
    bin_seconds: float = 7200.0,
    start: Optional[float] = None,
    end: Optional[float] = None,
    continent: Optional[Continent] = None,
) -> list[UniqueIpPoint]:
    """Unique-IP series restricted to ``start <= t < end``.

    The windowed form of :func:`unique_ip_series` for stores: segment
    summaries prune everything outside the window before any column is
    decoded (or read back from a spill file), so the cost scales with
    the window, not the run length.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    return _points(
        _accumulate_store(store, categorize, bin_seconds, continent, start, end)
    )


def series_by_continent(
    measurements,
    categorize: Callable[[IPv4Address], str],
    bin_seconds: float = 7200.0,
) -> dict[Continent, list[UniqueIpPoint]]:
    """The full Figure 4: one unique-IP series per continent facet."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if hasattr(measurements, "dns_segments"):
        # Single streaming pass building every facet at once (the
        # per-continent scans of the object path re-read the history
        # len(Continent) times); the category memo is shared.
        per_continent: dict[int, dict] = {
            index: {} for index in range(len(CONTINENTS))
        }
        cat_of: dict = {}
        for columns, lo, hi in measurements.dns_segments():
            times = columns.times
            continents = columns.continents
            offsets = columns.addr_offsets
            values = columns.addr_values
            for row in range(lo, hi):
                bins = per_continent[continents[row]]
                bin_start = (
                    math.floor(times[row] / bin_seconds) * bin_seconds
                )
                per_category = bins.setdefault(bin_start, {})
                for position in range(offsets[row], offsets[row + 1]):
                    value = values[position]
                    category = cat_of.get(value)
                    if category is None:
                        category = categorize(IPv4Address(value))
                        cat_of[value] = category
                    per_category.setdefault(category, set()).add(value)
        return {
            continent: _points(per_continent[CONTINENT_INDEX[continent]])
            for continent in Continent
        }
    materialized = list(measurements)
    return {
        continent: unique_ip_series(
            materialized, categorize, bin_seconds, continent=continent
        )
        for continent in Continent
    }


def peak_vs_baseline(
    series: list[UniqueIpPoint],
    event_time: float,
    baseline_seconds: float = 2 * 86400.0,
    peak_seconds: float = 86400.0,
) -> tuple[int, float]:
    """(post-event peak, pre-event average) of total unique IPs.

    Reproduces the paper's "maximum of 977 IPs immediately after the
    release ... more than four times the average of 191 ... in the two
    days before" comparison for any series.
    """
    before = [
        point.total
        for point in series
        if event_time - baseline_seconds <= point.bin_start < event_time
    ]
    after = [
        point.total
        for point in series
        if event_time <= point.bin_start < event_time + peak_seconds
    ]
    baseline = sum(before) / len(before) if before else 0.0
    peak = max(after) if after else 0
    return peak, baseline


def count_change_ratio(
    series: list[UniqueIpPoint],
    category: str,
    from_time: float,
    to_time: float,
) -> Optional[float]:
    """How one category's count changed between two instants.

    Reproduces Figure 5's "the number of Akamai CDN IPs rise by 408 %
    from Sep. 18 to Sep. 20": returns ``to/from`` for the bins
    containing the two times, or ``None`` if either is missing/empty.
    """
    def count_at(when: float) -> Optional[int]:
        best: Optional[UniqueIpPoint] = None
        for point in series:
            if point.bin_start <= when:
                best = point
            else:
                break
        return best.count(category) if best is not None else None

    start = count_at(from_time)
    end = count_at(to_time)
    if not start or end is None:
        return None
    return end / start


def format_series(series: list[UniqueIpPoint], label_time) -> str:
    """A text rendering of a unique-IP series (report helper)."""
    categories = [
        category
        for category in CATEGORY_ORDER
        if any(point.count(category) for point in series)
    ]
    header = "time        " + "".join(f"{c:>20}" for c in categories) + f"{'total':>10}"
    lines = [header]
    for point in series:
        row = f"{label_time(point.bin_start):<12}"
        row += "".join(f"{point.count(c):>20}" for c in categories)
        row += f"{point.total:>10}"
        lines.append(row)
    return "\n".join(lines)
