"""Anycast steering: shared-VIP announcements, catchments, flap faults.

The paper's Meta-CDN steers clients with DNS (the 15 s selection
CNAME).  Real brokers also run anycast, where one VIP is announced from
many sites at once and BGP best-path selection — not DNS — decides
which site a client reaches.  This package models that plane
deterministically: per-client catchments fall out of AS-path selection
(shortest path, then a stable BLAKE2b tie-break) over a
:class:`~repro.isp.bgp.BgpRib` holding every site's candidate
announcement, and mid-event route flaps (withdraw / prepend) shift
catchments instantly and invisibly to DNS health failover.
"""

from .catchment import CatchmentMap, build_catchment_map
from .plane import AnycastPlane, AnycastSite, AnycastTick, ClientGroup
from .analysis import CatchmentAnalysis

__all__ = [
    "AnycastPlane",
    "AnycastSite",
    "AnycastTick",
    "CatchmentAnalysis",
    "CatchmentMap",
    "ClientGroup",
    "build_catchment_map",
]
