"""Catchment analysis: what the anycast plane did over a run.

Folds the per-tick :class:`~repro.anycast.plane.AnycastTick` log into
run-level aggregates for the report, the scoreboard and the golden
snapshots: peak catchment share per site, the affinity-break rate
(how often a client population changed site mid-run), the traffic
volume those breaks moved, and the mapping-distance delta against the
DNS ideal (nearest site), which prices anycast's topology-driven
mapping against DNS's geography-driven one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .catchment import mean_mapping_distance_km, mean_nearest_distance_km

if TYPE_CHECKING:  # pragma: no cover
    from .plane import AnycastPlane

__all__ = ["CatchmentAnalysis"]


@dataclass(frozen=True)
class CatchmentAnalysis:
    """Run-level catchment aggregates."""

    ticks: int
    sites_live: int  # distinct sites that held any catchment
    peak_share_by_site: dict = field(default_factory=dict)
    map_changes: int = 0  # ticks whose map differed from the previous
    affinity_break_rate: float = 0.0  # group-moves per group per tick
    shifted_gbps_total: float = 0.0  # demand moved by catchment shifts
    mapping_distance_km: float = 0.0  # mean client -> catchment site
    nearest_distance_km: float = 0.0  # mean client -> nearest site
    mapping_distance_delta_km: float = 0.0  # anycast price vs DNS ideal

    @classmethod
    def from_plane(cls, plane: "AnycastPlane") -> "CatchmentAnalysis":
        """Fold a plane's tick log (empty log is fine)."""
        log = plane.log
        peak: dict[str, float] = {}
        changes = 0
        breaks = 0
        shifted_gbps = 0.0
        for tick in log:
            for site, share in tick.share_by_site.items():
                if share > peak.get(site, 0.0):
                    peak[site] = share
            if tick.broken_groups:
                changes += 1
                breaks += len(tick.broken_groups)
            shifted_gbps += tick.shifted_gbps
        group_count = len(plane.groups)
        tick_count = len(log)
        rate = (
            breaks / (group_count * tick_count)
            if group_count and tick_count
            else 0.0
        )
        # Distance quality of the steady-state (unfaulted) map.
        baseline = plane.catchment_map(-1.0)
        mapping_km = mean_mapping_distance_km(baseline, plane.site_by_id)
        nearest_km = mean_nearest_distance_km(baseline, plane.site_by_id)
        return cls(
            ticks=tick_count,
            sites_live=len(peak),
            peak_share_by_site={site: peak[site] for site in sorted(peak)},
            map_changes=changes,
            affinity_break_rate=rate,
            shifted_gbps_total=shifted_gbps,
            mapping_distance_km=mapping_km,
            nearest_distance_km=nearest_km,
            mapping_distance_delta_km=mapping_km - nearest_km,
        )

    def to_json_dict(self) -> dict:
        """Canonical JSON form (sorted keys, rounded floats)."""
        return {
            "ticks": self.ticks,
            "sites_live": self.sites_live,
            "peak_share_by_site": {
                site: round(share, 6)
                for site, share in sorted(self.peak_share_by_site.items())
            },
            "map_changes": self.map_changes,
            "affinity_break_rate": round(self.affinity_break_rate, 6),
            "shifted_gbps_total": round(self.shifted_gbps_total, 6),
            "mapping_distance_km": round(self.mapping_distance_km, 3),
            "nearest_distance_km": round(self.nearest_distance_km, 3),
            "mapping_distance_delta_km": round(self.mapping_distance_delta_km, 3),
        }
