"""Catchment maps: which anycast site each client population reaches.

A catchment map is a pure function of the candidate announcements and
the client populations.  Selection follows BGP practice scaled to the
model: the effective AS-path length a client's upstream sees is the
announced path plus the inter-region transit hops between the client
and the announcing site, shortest path wins, and remaining ties break
on a stable BLAKE2b digest of (site, client prefix) — never on
insertion order, ``id()`` or RNG state, so maps are bit-identical
across processes, workers and runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..net.geo import great_circle_km
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..net.trie import PrefixTrie

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..isp.bgp import BgpRoute
    from .plane import AnycastSite, ClientGroup

__all__ = ["CatchmentMap", "build_catchment_map", "transit_hops"]


def transit_hops(client_region: str, site_region: str) -> int:
    """Extra transit ASes between a client's region and a site's region.

    Same mapping region: the announcement arrives over a local peering
    (no extra hops).  Different regions: one intercontinental transit
    hop.  This is what makes catchments *mostly* geographic while the
    tie-break keeps them imperfect, as anycast catchments are.
    """
    return 0 if client_region == site_region else 1


def _tiebreak(site_id: str, prefix: IPv4Prefix) -> bytes:
    """Stable per-(site, client) digest breaking equal-length paths."""
    text = f"catchment|{site_id}|{prefix}"
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()


class CatchmentMap:
    """An immutable client-prefix -> anycast-site assignment.

    Lookup is longest-prefix-match over the client populations, so the
    map answers for any concrete client address inside a known
    population.  ``signature`` is a content digest used for cheap
    equality and golden snapshots.
    """

    def __init__(self, assignments: Iterable[tuple["ClientGroup", str]]) -> None:
        self._assignments: tuple[tuple["ClientGroup", str], ...] = tuple(assignments)
        self._trie: PrefixTrie[str] = PrefixTrie()
        for group, site_id in self._assignments:
            self._trie.insert(group.prefix, site_id)

    @property
    def assignments(self) -> tuple[tuple["ClientGroup", str], ...]:
        """Every ``(client group, site id)`` pair, in group order."""
        return self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def site_of(self, address: IPv4Address) -> Optional[str]:
        """The site serving ``address``, or ``None`` if unknown."""
        return self._trie.lookup(address)

    def site_of_group(self, name: str) -> Optional[str]:
        """The site serving the client group called ``name``."""
        for group, site_id in self._assignments:
            if group.name == name:
                return site_id
        return None

    def sites_under(self, prefix: IPv4Prefix) -> dict[str, int]:
        """Site -> client-group count inside a covering ``prefix``.

        Uses the trie's subtree walk, so scoping to e.g. the ISP's
        customer block costs only that subtree.
        """
        counts: dict[str, int] = {}
        for _, site_id in self._trie.items_under(prefix):
            counts[site_id] = counts.get(site_id, 0) + 1
        return counts

    def share_by_site(self) -> dict[str, float]:
        """Weight-normalised share of clients each site captures."""
        total = sum(group.weight for group, _ in self._assignments)
        if total <= 0:
            return {}
        shares: dict[str, float] = {}
        for group, site_id in self._assignments:
            shares[site_id] = shares.get(site_id, 0.0) + group.weight / total
        return {site: shares[site] for site in sorted(shares)}

    def diff(self, other: "CatchmentMap") -> tuple[str, ...]:
        """Names of client groups mapped to a different site in ``other``."""
        theirs = {group.name: site for group, site in other._assignments}
        return tuple(
            group.name
            for group, site_id in self._assignments
            if theirs.get(group.name, site_id) != site_id
        )

    @property
    def signature(self) -> str:
        """A stable content digest of the full assignment."""
        digest = hashlib.blake2b(digest_size=8)
        for group, site_id in self._assignments:
            digest.update(f"{group.name}|{group.prefix}|{site_id}\n".encode("utf-8"))
        return digest.hexdigest()

    def to_json_dict(self) -> dict:
        """Canonical JSON form (sorted keys, rounded shares) for goldens."""
        return {
            "assignments": {
                group.name: site_id for group, site_id in sorted(
                    self._assignments, key=lambda pair: pair[0].name
                )
            },
            "share_by_site": {
                site: round(share, 6)
                for site, share in self.share_by_site().items()
            },
            "signature": self.signature,
        }


def build_catchment_map(
    groups: Iterable["ClientGroup"],
    candidates: Iterable["BgpRoute"],
    sites_by_link: dict[str, "AnycastSite"],
) -> CatchmentMap:
    """Run per-client best-path selection over the announced candidates.

    ``candidates`` are the live announcements of the shared VIP prefix
    (one per announcing site, path prepends already applied);
    ``sites_by_link`` resolves a route's ingress link back to the
    announcing site.  For each client group the winner minimises
    ``(len(as_path) + transit_hops, tiebreak digest)``.
    """
    routes = list(candidates)
    assignments: list[tuple["ClientGroup", str]] = []
    for group in groups:
        best_key: Optional[tuple[int, bytes]] = None
        best_site: Optional[str] = None
        for route in routes:
            site = sites_by_link.get(route.link_ids[0])
            if site is None:
                continue
            key = (
                len(route.as_path) + transit_hops(group.region, site.region),
                _tiebreak(site.site_id, group.prefix),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_site = site.site_id
        if best_site is not None:
            assignments.append((group, best_site))
    return CatchmentMap(assignments)


def mean_mapping_distance_km(
    catchment: CatchmentMap, sites: dict[str, "AnycastSite"]
) -> float:
    """Weighted mean client -> catchment-site distance."""
    total_weight = 0.0
    total_km = 0.0
    for group, site_id in catchment.assignments:
        site = sites.get(site_id)
        if site is None:
            continue
        total_weight += group.weight
        total_km += group.weight * great_circle_km(
            group.coordinates, site.coordinates
        )
    return total_km / total_weight if total_weight else 0.0


def mean_nearest_distance_km(
    catchment: CatchmentMap, sites: dict[str, "AnycastSite"]
) -> float:
    """Weighted mean client -> *nearest* site distance (the DNS ideal).

    DNS steering maps a client to the geographically best site; the
    delta between this and :func:`mean_mapping_distance_km` is the
    mapping-quality price of anycast's topology-driven catchments.
    """
    if not sites:
        return 0.0
    total_weight = 0.0
    total_km = 0.0
    for group, _ in catchment.assignments:
        nearest = min(
            great_circle_km(group.coordinates, site.coordinates)
            for site in sites.values()
        )
        total_weight += group.weight
        total_km += group.weight * nearest
    return total_km / total_weight if total_weight else 0.0
