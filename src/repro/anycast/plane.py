"""The anycast steering plane: shared-VIP announcements over time.

One VIP prefix is announced from every participating site into a
multi-candidate :class:`~repro.isp.bgp.BgpRib`.  The plane evaluates
the fault schedule's routing windows (``route-withdraw`` /
``route-prepend``) *directly* — never through the injector's mutable
edge-detection state — so the catchment map at any instant is a pure
function of ``(sites, clients, schedule, now)``.  That is what makes
sharded runs bit-identical: every worker replica and the coordinator
derive the same maps from the same inputs with no cross-process state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..faults.schedule import FaultKind, FaultSchedule
from ..isp.bgp import BgpRib, BgpRoute
from ..net.asys import AS_APPLE, ASN
from ..net.geo import Continent, Coordinates, MappingRegion
from ..net.ipv4 import IPv4Address, IPv4Prefix

__all__ = [
    "ANYCAST_VIP_PREFIX",
    "AnycastPlane",
    "AnycastSite",
    "AnycastTick",
    "ClientGroup",
]

# The shared service prefix, inside Apple's 17/8 but distinct from the
# unicast vip pool (17.253/16): every participating site announces it.
ANYCAST_VIP_PREFIX = IPv4Prefix.parse("17.172.224.0/22")

# Regional transit ASes carrying a site's announcement toward clients.
_REGION_TRANSIT = {
    MappingRegion.US: ASN(65101),
    MappingRegion.EU: ASN(65102),
    MappingRegion.APAC: ASN(65103),
}


@dataclass(frozen=True)
class AnycastSite:
    """One edge site announcing the shared VIP prefix."""

    site_id: str  # "<locode>-<n>", e.g. "defra-1"
    coordinates: Coordinates
    continent: Continent
    backend_vip: IPv4Address  # the site's unicast vip behind the VIP
    capacity_gbps: float = 0.0

    @property
    def region(self) -> MappingRegion:
        """The mapping region the site announces from."""
        return MappingRegion.for_continent(self.continent)

    @property
    def link_id(self) -> str:
        """The ingress link its announcement arrives over."""
        return f"anycast-{self.site_id}"

    def base_route(self, prepend: int = 0) -> BgpRoute:
        """The site's announcement with ``prepend`` extra path entries."""
        path = (_REGION_TRANSIT[self.region],) + (AS_APPLE,) * (1 + prepend)
        return BgpRoute(
            prefix=ANYCAST_VIP_PREFIX,
            as_path=path,
            link_ids=(self.link_id,),
        )


@dataclass(frozen=True)
class ClientGroup:
    """One client population competing for a catchment."""

    name: str
    prefix: IPv4Prefix
    continent: Continent
    coordinates: Coordinates
    weight: float = 1.0

    @property
    def region(self) -> MappingRegion:
        """The mapping region the population resolves from."""
        return MappingRegion.for_continent(self.continent)


@dataclass(frozen=True)
class AnycastTick:
    """Per-tick catchment bookkeeping appended by ``observe``."""

    now: float
    signature: str
    share_by_site: dict
    broken_groups: tuple[str, ...]  # groups whose site changed this tick
    shifted_share: float  # weight share of clients that moved
    shifted_gbps: float  # demand carried by the moved share


class AnycastPlane:
    """Sites, clients and the RIB the catchments are computed from."""

    def __init__(
        self,
        sites: Sequence[AnycastSite],
        groups: Sequence[ClientGroup],
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        if not sites:
            raise ValueError("an anycast plane needs at least one site")
        self.sites: tuple[AnycastSite, ...] = tuple(sites)
        self.groups: tuple[ClientGroup, ...] = tuple(groups)
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.site_by_id = {site.site_id: site for site in self.sites}
        self._site_by_link = {site.link_id: site for site in self.sites}
        # Full candidate table: every site's unfaulted announcement.
        self.rib = BgpRib()
        for site in self.sites:
            self.rib.install(site.base_route())
        self._map_cache: dict[tuple, "CatchmentMap"] = {}
        self.log: list[AnycastTick] = []
        self._last_map: Optional["CatchmentMap"] = None

    # -- routing state ------------------------------------------------

    def route_state(self, now: float) -> tuple[tuple[str, int], ...]:
        """Live ``(site_id, prepend)`` pairs at ``now`` (the map's key).

        A site under ``route-withdraw`` is absent; ``route-prepend``
        severity is the prepend count.  Read straight off the schedule:
        no injector state, so identical in every process.
        """
        state = []
        for site in self.sites:
            if self.schedule.find(FaultKind.ROUTE_WITHDRAW, now, site.site_id):
                continue
            window = self.schedule.find(FaultKind.ROUTE_PREPEND, now, site.site_id)
            prepend = max(1, int(window.severity)) if window else 0
            state.append((site.site_id, prepend))
        if not state:
            # All sites withdrawn: keep the last site up rather than
            # blackholing the VIP (a full withdrawal would be a
            # cdn-blackout, which is a different fault kind).
            state = [(self.sites[-1].site_id, 0)]
        return tuple(state)

    def candidate_routes(self, now: float) -> tuple[BgpRoute, ...]:
        """The live announcements of the VIP prefix at ``now``."""
        return tuple(
            self.site_by_id[site_id].base_route(prepend)
            for site_id, prepend in self.route_state(now)
        )

    # -- catchments ----------------------------------------------------

    def catchment_map(self, now: float) -> "CatchmentMap":
        """The catchment map in force at ``now`` (cached per route state)."""
        from .catchment import build_catchment_map

        state = self.route_state(now)
        cached = self._map_cache.get(state)
        if cached is not None:
            return cached
        built = build_catchment_map(
            self.groups, self.candidate_routes(now), self._site_by_link
        )
        self._map_cache[state] = built
        return built

    def site_for(self, address: IPv4Address, now: float) -> Optional[AnycastSite]:
        """The site a concrete client address reaches at ``now``."""
        site_id = self.catchment_map(now).site_of(address)
        return self.site_by_id.get(site_id) if site_id else None

    def observe(self, now: float, demand_gbps: float = 0.0) -> AnycastTick:
        """Record the tick's catchment state (affinity vs the last tick).

        Called once per engine tick in strict time order; every replica
        makes the same calls, so the log is bit-identical across
        workers.  ``demand_gbps`` prices the shifted share in traffic.
        """
        current = self.catchment_map(now)
        broken: tuple[str, ...] = ()
        shifted_share = 0.0
        if self._last_map is not None and current is not self._last_map:
            broken = self._last_map.diff(current)
            if broken:
                names = set(broken)
                total = sum(group.weight for group in self.groups)
                moved = sum(
                    group.weight for group in self.groups if group.name in names
                )
                shifted_share = moved / total if total else 0.0
        tick = AnycastTick(
            now=now,
            signature=current.signature,
            share_by_site=current.share_by_site(),
            broken_groups=broken,
            shifted_share=shifted_share,
            shifted_gbps=shifted_share * demand_gbps,
        )
        self.log.append(tick)
        self._last_map = current
        return tick
