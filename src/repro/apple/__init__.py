"""The paper's subject: Apple's self-operated Meta-CDN.

* :mod:`repro.apple.naming` — the Table 1 server naming scheme;
* :mod:`repro.apple.deployment` — the 34-site own-CDN estate (Figure 3);
* :mod:`repro.apple.policy` — the Meta-CDN selection (Apple-first offload);
* :mod:`repro.apple.mapping` — the full Figure 2 DNS request-mapping chain;
* :mod:`repro.apple.manifest` / :mod:`repro.apple.device` — the iOS
  update discovery and download behaviour of Section 3.1.
"""

from .deployment import (
    APPLE_DELIVERY_PREFIX,
    APPLE_METRO_PLANS,
    EDGE_BX_PER_VIP,
    AppleCdn,
    AppleSite,
    MetroPlan,
)
from .device import CHECK_INTERVAL_SECONDS, DeviceState, IosDevice
from .manifest import (
    DEVICE_MODELS,
    DOWNLOAD_HOST,
    MANIFEST_HOST,
    MANIFEST_PATH,
    UPDATEBRAIN_PATH,
    UpdateEntry,
    UpdateManifest,
    build_manifest,
    build_updatebrain,
)
from .mapping import NAMES, MappingNames, MetaCdnEstate, build_meta_cdn
from .naming import (
    AAPLIMG_DOMAIN,
    TS_APPLE_DOMAIN,
    AppleServerName,
    NamingError,
    format_hostname,
    parse_hostname,
)
from .policy import AkamaiHandoverPolicy, MetaCdnController, OffloadCnamePolicy

__all__ = [
    "AppleServerName",
    "parse_hostname",
    "format_hostname",
    "NamingError",
    "AAPLIMG_DOMAIN",
    "TS_APPLE_DOMAIN",
    "MetroPlan",
    "APPLE_METRO_PLANS",
    "APPLE_DELIVERY_PREFIX",
    "EDGE_BX_PER_VIP",
    "AppleSite",
    "AppleCdn",
    "MetaCdnController",
    "OffloadCnamePolicy",
    "AkamaiHandoverPolicy",
    "MappingNames",
    "NAMES",
    "MetaCdnEstate",
    "build_meta_cdn",
    "UpdateEntry",
    "UpdateManifest",
    "build_manifest",
    "build_updatebrain",
    "DEVICE_MODELS",
    "MANIFEST_HOST",
    "DOWNLOAD_HOST",
    "MANIFEST_PATH",
    "UPDATEBRAIN_PATH",
    "IosDevice",
    "DeviceState",
    "CHECK_INTERVAL_SECONDS",
]
