"""Apple's own CDN infrastructure: the 34 edge sites of Figure 3.

Figure 3 labels each metro with ``<# of sites>/<total # of cache
servers>`` where the server count refers to ``edge-bx`` nodes.  The
reproduction encodes the figure's 30 labels — 34 sites, 1072 edge-bx
servers in total — with a canonical metro assignment honouring the
paper's density statement: densest in the USA, then Europe, then East
Asia; nothing in South America or Africa.

Structure per site (Section 3.3): each DNS-visible ``vip-bx`` address
fronts four ``edge-bx`` caches ("a single Apple CDN IP represents the
download capacity of four servers"); misses fall back to a site-shared
``edge-lx`` tier and then to the origin.  Delivery addresses live in
``17.253.0.0/16`` inside Apple's ``17.0.0.0/8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..cdn.cache import ContentCache
from ..cdn.deployment import CdnDeployment
from ..cdn.server import (
    CacheServer,
    SecondaryFunction,
    ServerFunction,
    ServerRole,
)
from ..cdn.site import EdgeSite, Origin, ServedRequest
from ..http.messages import HttpRequest
from ..net.asys import AS_APPLE
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..net.locode import Location, LocodeDatabase
from .naming import AAPLIMG_DOMAIN, TS_APPLE_DOMAIN, format_hostname

__all__ = [
    "MetroPlan",
    "APPLE_METRO_PLANS",
    "AppleSite",
    "AppleCdn",
    "APPLE_DELIVERY_PREFIX",
    "EDGE_BX_PER_VIP",
]

APPLE_DELIVERY_PREFIX = IPv4Prefix.parse("17.253.0.0/16")
EDGE_BX_PER_VIP = 4  # Section 3.3: one vip load-balances four edge-bx


@dataclass(frozen=True)
class MetroPlan:
    """One Figure 3 label: a metro with sites and total edge-bx count."""

    locode: str
    sites: int
    edge_bx_total: int

    def __post_init__(self) -> None:
        if self.sites <= 0:
            raise ValueError("sites must be positive")
        if self.edge_bx_total % self.sites != 0:
            raise ValueError(
                f"{self.locode}: {self.edge_bx_total} servers do not split "
                f"evenly over {self.sites} sites"
            )
        per_site = self.edge_bx_total // self.sites
        if per_site % EDGE_BX_PER_VIP != 0:
            raise ValueError(
                f"{self.locode}: {per_site} edge-bx per site is not a "
                f"multiple of {EDGE_BX_PER_VIP}"
            )

    @property
    def edge_bx_per_site(self) -> int:
        """edge-bx servers in each of the metro's sites."""
        return self.edge_bx_total // self.sites

    @property
    def label(self) -> str:
        """The Figure 3 label text for this metro."""
        return f"{self.sites}/{self.edge_bx_total}"


# The 30 Figure 3 labels, assigned to metros following the paper's
# density ordering (US > Europe > East Asia; none in SA/Africa).
APPLE_METRO_PLANS: tuple[MetroPlan, ...] = (
    # United States — 14 metros, 18 sites, 648 servers
    MetroPlan("usnyc", 2, 96),
    MetroPlan("uslax", 2, 80),
    MetroPlan("ussjc", 2, 80),
    MetroPlan("uschi", 2, 64),
    MetroPlan("usiad", 1, 48),
    MetroPlan("usdal", 1, 40),
    MetroPlan("usmia", 1, 40),
    MetroPlan("ussea", 1, 32),
    MetroPlan("usatl", 1, 32),
    MetroPlan("usden", 1, 32),
    MetroPlan("ushou", 1, 32),
    MetroPlan("usbos", 1, 32),
    MetroPlan("usphx", 1, 24),
    MetroPlan("usmsp", 1, 16),
    # Canada — 1 metro, 1 site, 32 servers
    MetroPlan("cayto", 1, 32),
    # Europe — 8 metros, 8 sites, 192 servers
    MetroPlan("defra", 1, 40),
    MetroPlan("uklon", 1, 32),
    MetroPlan("nlams", 1, 32),
    MetroPlan("frpar", 1, 32),
    MetroPlan("deber", 1, 16),
    MetroPlan("semma", 1, 16),
    MetroPlan("itmil", 1, 16),
    MetroPlan("esmad", 1, 8),
    # East Asia & Oceania — 7 metros, 7 sites, 200 servers
    MetroPlan("jptyo", 1, 32),
    MetroPlan("hkhkg", 1, 32),
    MetroPlan("sgsin", 1, 32),
    MetroPlan("krsel", 1, 32),
    MetroPlan("ausyd", 1, 32),
    MetroPlan("jposa", 1, 24),
    MetroPlan("twtpe", 1, 16),
)


class AppleSite:
    """One Apple edge site: vip groups plus a shared edge-lx tier."""

    def __init__(
        self,
        location: Location,
        site_id: int,
        groups: list[EdgeSite],
        edge_lx: CacheServer,
    ) -> None:
        if not groups:
            raise ValueError("a site needs at least one vip group")
        self.location = location
        self.site_id = site_id
        self.groups = groups
        self.edge_lx = edge_lx
        self._by_vip = {group.vip.address: group for group in groups}

    @property
    def site_key(self) -> tuple[str, int]:
        """(locode, site id) — the identity used by site discovery."""
        return (self.location.code, self.site_id)

    @property
    def vip_addresses(self) -> tuple[IPv4Address, ...]:
        """Every DNS-visible address of this site."""
        return tuple(group.vip.address for group in self.groups)

    @property
    def edge_bx_count(self) -> int:
        """Delivery servers (the Figure 3 denominator contribution)."""
        return sum(len(group.edge_bx) for group in self.groups)

    @property
    def capacity_gbps(self) -> float:
        """Aggregate delivery capacity of the site."""
        return sum(group.capacity_gbps for group in self.groups)

    @property
    def served_bytes(self) -> int:
        """Bytes delivered by all edge-bx servers so far."""
        return sum(
            server.served_bytes for group in self.groups for server in group.edge_bx
        )

    def serve(self, vip: IPv4Address, request: HttpRequest, size: int) -> ServedRequest:
        """Serve a request that arrived at one of this site's vips."""
        group = self._by_vip.get(vip)
        if group is None:
            raise KeyError(f"{vip} is not a vip of {self.location.code}{self.site_id}")
        return group.serve(request, size)

    def __str__(self) -> str:
        return (
            f"AppleSite({self.location.code}{self.site_id}: "
            f"{len(self.groups)} vips, {self.edge_bx_count} edge-bx)"
        )


class AppleCdn:
    """Apple's complete delivery estate plus its DNS-facing pool."""

    def __init__(
        self,
        sites: list[AppleSite],
        deployment: CdnDeployment,
        reverse_dns: dict[IPv4Address, str],
    ) -> None:
        self.sites = sites
        self.deployment = deployment
        self._reverse_dns = reverse_dns
        self._site_by_vip: dict[IPv4Address, AppleSite] = {}
        for site in sites:
            for address in site.vip_addresses:
                self._site_by_vip[address] = site

    @classmethod
    def build(
        cls,
        locations: Optional[LocodeDatabase] = None,
        plans: tuple[MetroPlan, ...] = APPLE_METRO_PLANS,
        edge_bx_gbps: float = 10.0,
        edge_bx_cache_bytes: int = 2 << 40,
        edge_lx_cache_bytes: int = 20 << 40,
        pool_limit: int = 8,
        origin: Optional[Origin] = None,
    ) -> "AppleCdn":
        """Instantiate the full Figure 3 deployment.

        Each site is allocated a /22 inside ``17.253.0.0/16``: vips in
        its first /24, edge-bx in the next two, edge-lx in the last.
        """
        db = locations if locations is not None else LocodeDatabase.builtin()
        shared_origin = origin if origin is not None else Origin()
        sites: list[AppleSite] = []
        deployment = CdnDeployment(
            operator="Apple", asn=AS_APPLE, exposure_factory=None, pool_limit=pool_limit
        )
        reverse_dns: dict[IPv4Address, str] = {}
        site_index = 0
        for plan in plans:
            location = db.get(plan.locode)
            for site_id in range(1, plan.sites + 1):
                site = cls._build_site(
                    location,
                    site_id,
                    plan.edge_bx_per_site,
                    site_index,
                    edge_bx_gbps,
                    edge_bx_cache_bytes,
                    edge_lx_cache_bytes,
                    shared_origin,
                    reverse_dns,
                )
                sites.append(site)
                for group in site.groups:
                    deployment.add_server(group.vip, location)
                site_index += 1
        return cls(sites, deployment, reverse_dns)

    @staticmethod
    def _build_site(
        location: Location,
        site_id: int,
        edge_bx_count: int,
        site_index: int,
        edge_bx_gbps: float,
        edge_bx_cache_bytes: int,
        edge_lx_cache_bytes: int,
        origin: Origin,
        reverse_dns: dict[IPv4Address, str],
    ) -> AppleSite:
        base = APPLE_DELIVERY_PREFIX.network.value + (site_index << 10)  # /22 per site
        vip_count = edge_bx_count // EDGE_BX_PER_VIP

        def make_server(
            function: ServerFunction,
            secondary: SecondaryFunction,
            server_id: int,
            offset: int,
            domain: str,
            cache_bytes: Optional[int],
        ) -> CacheServer:
            address = IPv4Address(base + offset)
            hostname = format_hostname(
                location.code, site_id, function, secondary, server_id, domain
            )
            reverse_dns[address] = format_hostname(
                location.code, site_id, function, secondary, server_id, AAPLIMG_DOMAIN
            )
            return CacheServer(
                hostname=hostname,
                address=address,
                role=ServerRole(function, secondary),
                asn=AS_APPLE,
                capacity_gbps=edge_bx_gbps * (EDGE_BX_PER_VIP if function is ServerFunction.VIP else 1),
                cache=ContentCache(cache_bytes) if cache_bytes else None,
            )

        edge_lx = make_server(
            ServerFunction.EDGE,
            SecondaryFunction.LX,
            server_id=1,
            offset=(3 << 8) + 1,
            domain=TS_APPLE_DOMAIN,
            cache_bytes=edge_lx_cache_bytes,
        )
        # Support roles (Table 1 lists gslb, dns, ntp, tool): present in
        # the PTR estate so a 17/8 scan sees the full naming grammar.
        for function, offset in (
            (ServerFunction.DNS, (3 << 8) + 16),
            (ServerFunction.NTP, (3 << 8) + 17),
            (ServerFunction.TOOL, (3 << 8) + 18),
        ):
            address = IPv4Address(base + offset)
            reverse_dns[address] = format_hostname(
                location.code, site_id, function, None, 1, AAPLIMG_DOMAIN
            )
        groups: list[EdgeSite] = []
        for vip_id in range(1, vip_count + 1):
            vip = make_server(
                ServerFunction.VIP,
                SecondaryFunction.BX,
                server_id=vip_id,
                offset=vip_id,
                domain=AAPLIMG_DOMAIN,
                cache_bytes=None,
            )
            edge_bx = [
                make_server(
                    ServerFunction.EDGE,
                    SecondaryFunction.BX,
                    server_id=(vip_id - 1) * EDGE_BX_PER_VIP + n,
                    offset=(1 << 8) + (vip_id - 1) * EDGE_BX_PER_VIP + n,
                    domain=TS_APPLE_DOMAIN,
                    cache_bytes=edge_bx_cache_bytes,
                )
                for n in range(1, EDGE_BX_PER_VIP + 1)
            ]
            groups.append(
                EdgeSite(
                    location=location,
                    site_id=site_id,
                    vip=vip,
                    edge_bx=edge_bx,
                    edge_lx=edge_lx,
                    origin=origin,
                )
            )
        return AppleSite(location, site_id, groups, edge_lx)

    # ----- lookups ------------------------------------------------------

    def site_for(self, vip: IPv4Address) -> Optional[AppleSite]:
        """The site owning the vip address, if any."""
        return self._site_by_vip.get(vip)

    def install_fault_injector(self, injector) -> None:
        """Arm every vip group with a fault plane.

        ``injector`` is a :class:`repro.faults.FaultInjector` (or None
        to disarm); crashed edge-bx caches then fall through to the
        edge-lx tier per Section 3.3.
        """
        for site in self.sites:
            for group in site.groups:
                group.faults = injector

    def reverse_dns(self, address: IPv4Address) -> Optional[str]:
        """The ``aaplimg.com`` PTR name of ``address`` (any function)."""
        return self._reverse_dns.get(address)

    def reverse_dns_table(self) -> dict[IPv4Address, str]:
        """The whole PTR table (what a 17/8 scan would enumerate)."""
        return dict(self._reverse_dns)

    def ptr_server(self):
        """An authoritative ``in-addr.arpa`` server over the estate.

        Lets the Section 3.3 discovery run through actual PTR queries
        (see :func:`repro.dns.reverse.scan_ptr_records`).
        """
        from ..dns.reverse import build_ptr_zone

        return build_ptr_zone(self._reverse_dns, operator="Apple")

    def aaplimg_server(self):
        """An authoritative ``aaplimg.com`` server with per-host A records.

        The forward complement of the PTR estate: every server name
        resolves to its address, which is what Aquatone-style name
        enumeration (the paper's reference [21]) probes against.
        """
        from ..dns.policies import StaticPolicy
        from ..dns.records import ARecord
        from ..dns.zone import AuthoritativeServer, Zone
        from .naming import AAPLIMG_DOMAIN

        zone = Zone(AAPLIMG_DOMAIN)
        for address, hostname in self._reverse_dns.items():
            zone.bind(hostname, StaticPolicy((ARecord(hostname, address, 3600),)))
        return AuthoritativeServer("Apple", [zone])

    def serve(self, vip: IPv4Address, request: HttpRequest, size: int) -> ServedRequest:
        """Serve ``request`` at the site owning ``vip``."""
        site = self.site_for(vip)
        if site is None:
            raise KeyError(f"no Apple site serves {vip}")
        return site.serve(vip, request, size)

    # ----- aggregate facts -----------------------------------------------

    @property
    def site_count(self) -> int:
        """Number of edge sites (the paper discovered 34)."""
        return len(self.sites)

    @property
    def edge_bx_count(self) -> int:
        """Total delivery servers across all sites."""
        return sum(site.edge_bx_count for site in self.sites)

    @property
    def total_capacity_gbps(self) -> float:
        """Aggregate delivery capacity."""
        return sum(site.capacity_gbps for site in self.sites)

    def sites_in(self, locode: str) -> Iterator[AppleSite]:
        """All sites in one metro."""
        for site in self.sites:
            if site.location.code == locode:
                yield site
