"""iOS device update behaviour (Section 3.1).

The paper observed (from an Apple TV and an iPhone 7 Plus) that iOS
devices download the manifest from ``mesu.apple.com`` once per hour; if
it advertises a newer build, the user is notified, and when the user
manually starts the update the image is fetched from
``appldnld.apple.com`` over plain HTTP.

:class:`IosDevice` reproduces that loop.  The flash-crowd simulation
aggregates millions of devices statistically, but this class is the
faithful per-device model used by examples and integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..http.messages import Headers, HttpRequest
from .manifest import (
    DOWNLOAD_HOST,
    MANIFEST_HOST,
    MANIFEST_PATH,
    UpdateEntry,
    UpdateManifest,
)

__all__ = ["DeviceState", "IosDevice", "CHECK_INTERVAL_SECONDS"]

CHECK_INTERVAL_SECONDS = 3600.0  # manifest poll period observed in traffic


class DeviceState(str, Enum):
    """Where a device stands in the update cycle."""

    IDLE = "idle"
    UPDATE_AVAILABLE = "update-available"
    DOWNLOADING = "downloading"
    UP_TO_DATE = "up-to-date"


@dataclass
class IosDevice:
    """One device: model, installed build and the hourly check loop."""

    device_model: str
    os_version: str
    state: DeviceState = DeviceState.IDLE
    pending: Optional[UpdateEntry] = None
    last_check: Optional[float] = field(default=None)

    def needs_check(self, now: float) -> bool:
        """Whether the hourly manifest poll is due."""
        if self.last_check is None:
            return True
        return now - self.last_check >= CHECK_INTERVAL_SECONDS

    def manifest_request(self) -> HttpRequest:
        """The hourly poll request to ``mesu.apple.com``."""
        return HttpRequest(method="GET", host=MANIFEST_HOST, path=MANIFEST_PATH)

    def check(self, manifest: UpdateManifest, now: float) -> Optional[UpdateEntry]:
        """Process one manifest poll; returns a newly found update.

        On a hit the user is notified (state becomes UPDATE_AVAILABLE);
        the download itself only starts when the user acts — see
        :meth:`start_update`.
        """
        self.last_check = now
        if self.state is DeviceState.DOWNLOADING:
            return None
        entry = manifest.lookup(self.device_model, self.os_version)
        if entry is None:
            if self.state is DeviceState.IDLE:
                self.state = DeviceState.UP_TO_DATE
            return None
        self.pending = entry
        self.state = DeviceState.UPDATE_AVAILABLE
        return entry

    def start_update(self, client_address: str = "") -> HttpRequest:
        """The user-initiated image download from ``appldnld.apple.com``."""
        if self.pending is None:
            raise RuntimeError("no update pending; poll the manifest first")
        self.state = DeviceState.DOWNLOADING
        headers = Headers()
        if client_address:
            headers.add("X-Client", client_address)
        return HttpRequest(
            method="GET",
            host=DOWNLOAD_HOST,
            path=self.pending.path,
            headers=headers,
        )

    def finish_update(self) -> None:
        """Installation completed; the device now runs the new build."""
        if self.pending is None or self.state is not DeviceState.DOWNLOADING:
            raise RuntimeError("no download in progress")
        self.os_version = self.pending.target_version
        self.pending = None
        self.state = DeviceState.UP_TO_DATE

    def __str__(self) -> str:
        return f"{self.device_model} (iOS {self.os_version}, {self.state.value})"
