"""iOS software-update manifests (Section 3.1).

iOS devices fetch two XML manifests from ``mesu.apple.com`` once per
hour.  The first ("the manifest") lists the current version and download
URL for every device/OS-version combination — about 1800 entries as of
July 2017.  The second ("UpdateBrain") holds only six entries and was
never observed in use; the authors take it for a last-resort upgrade
path for badly outdated devices.

The reproduction models both files and a generator that produces a
realistically sized manifest from the device/version matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "UpdateEntry",
    "UpdateManifest",
    "MANIFEST_PATH",
    "UPDATEBRAIN_PATH",
    "MANIFEST_HOST",
    "DOWNLOAD_HOST",
    "build_manifest",
    "build_updatebrain",
    "DEVICE_MODELS",
]

MANIFEST_HOST = "mesu.apple.com"
DOWNLOAD_HOST = "appldnld.apple.com"
MANIFEST_PATH = (
    "/assets/com_apple_MobileAsset_SoftwareUpdate/"
    "com_apple_MobileAsset_SoftwareUpdate.xml"
)
UPDATEBRAIN_PATH = (
    "/assets/com_apple_MobileAsset_MobileSoftwareUpdate_UpdateBrain/"
    "com_apple_MobileAsset_MobileSoftwareUpdate_UpdateBrain.xml"
)

# iOS device families around the iOS 11 release (iPhone, iPad, iPod —
# the populations the paper's "up to 1 billion devices" estimate covers).
DEVICE_MODELS: tuple[str, ...] = (
    "iPhone5,1", "iPhone5,2", "iPhone5,3", "iPhone5,4",
    "iPhone6,1", "iPhone6,2",
    "iPhone7,1", "iPhone7,2",
    "iPhone8,1", "iPhone8,2", "iPhone8,4",
    "iPhone9,1", "iPhone9,2", "iPhone9,3", "iPhone9,4",
    "iPhone10,1", "iPhone10,2", "iPhone10,3", "iPhone10,4", "iPhone10,5",
    "iPad4,1", "iPad4,2", "iPad4,4", "iPad4,5", "iPad4,7",
    "iPad5,1", "iPad5,2", "iPad5,3", "iPad5,4",
    "iPad6,3", "iPad6,4", "iPad6,7", "iPad6,8", "iPad6,11", "iPad6,12",
    "iPad7,1", "iPad7,2", "iPad7,3", "iPad7,4",
    "iPod7,1", "iPod9,1",
    "AppleTV5,3", "AppleTV6,2",
)


@dataclass(frozen=True)
class UpdateEntry:
    """One manifest row: what a given device on a given build gets."""

    device_model: str
    from_version: str
    target_version: str
    url: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("update size must be positive")
        if not self.url.startswith("http://"):
            raise ValueError("updates are delivered over plain http (Section 3.1)")

    @property
    def path(self) -> str:
        """The URL path on the download host."""
        prefix = f"http://{DOWNLOAD_HOST}"
        if not self.url.startswith(prefix):
            raise ValueError(f"unexpected download host in {self.url!r}")
        return self.url[len(prefix):]


class UpdateManifest:
    """A manifest: entries indexed by (device model, installed version)."""

    def __init__(self, entries: list[UpdateEntry]) -> None:
        self._entries = list(entries)
        self._index: dict[tuple[str, str], UpdateEntry] = {}
        for entry in entries:
            key = (entry.device_model, entry.from_version)
            if key in self._index:
                raise ValueError(f"duplicate manifest entry for {key}")
            self._index[key] = entry

    def lookup(self, device_model: str, installed_version: str) -> Optional[UpdateEntry]:
        """The update offered to a device, or ``None`` if up to date."""
        entry = self._index.get((device_model, installed_version))
        if entry is None:
            return None
        if entry.target_version == installed_version:
            return None
        return entry

    @property
    def entry_count(self) -> int:
        """Number of rows (the paper counted ~1800 in July 2017)."""
        return len(self._entries)

    def __iter__(self) -> Iterator[UpdateEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


def _image_size(device_model: str, target_version: str) -> int:
    """A deterministic, plausible image size (1.9-3.1 GB) per combination."""
    seed = sum(ord(ch) for ch in device_model + target_version)
    return (19 + seed % 13) * 100 * 1024 * 1024


def build_manifest(
    target_version: str = "11.0",
    prior_versions: Optional[tuple[str, ...]] = None,
    device_models: tuple[str, ...] = DEVICE_MODELS,
) -> UpdateManifest:
    """Build a full manifest offering ``target_version`` to every device.

    With the default 43 device models and 42 prior versions this yields
    1806 entries, matching the ~1800 the paper reports.
    """
    if prior_versions is None:
        prior_versions = tuple(
            f"{major}.{minor}" for major in (8, 9, 10) for minor in range(14)
        )
    entries = []
    for model in device_models:
        for version in prior_versions:
            if version == target_version:
                continue
            url = (
                f"http://{DOWNLOAD_HOST}/ios{target_version}/"
                f"{model.lower().replace(',', '_')}_{target_version}_restore.ipsw"
            )
            entries.append(
                UpdateEntry(
                    device_model=model,
                    from_version=version,
                    target_version=target_version,
                    url=url,
                    size_bytes=_image_size(model, target_version),
                )
            )
    return UpdateManifest(entries)


def build_updatebrain(target_version: str = "11.0") -> UpdateManifest:
    """The six-entry last-resort manifest (never observed in use)."""
    families = ("iPhone5", "iPhone6", "iPhone7", "iPad4", "iPad5", "iPod7")
    entries = [
        UpdateEntry(
            device_model=f"{family},1",
            from_version="legacy",
            target_version=target_version,
            url=(
                f"http://{DOWNLOAD_HOST}/updatebrain/"
                f"{family.lower()}_{target_version}_brain.ipsw"
            ),
            size_bytes=50 * 1024 * 1024,
        )
        for family in families
    ]
    return UpdateManifest(entries)
