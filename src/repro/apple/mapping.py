"""The Figure 2 request-mapping estate, wired end to end.

This module assembles the complete DNS infrastructure of the Apple
Meta-CDN as the paper dissected it:

* step 1 — ``appldnld.apple.com.akadns.net`` (Akamai): world vs
  India/China country split;
* step 2 — ``appldnld.g.applimg.com`` (Apple, TTL 15 s): the Meta-CDN
  service deciding between Apple's own CDN and third parties;
* step 3 — ``ios8-{us|eu|apac}-lb.apple.com.akadns.net`` (Akamai):
  selection of the third-party CDN with operator-controlled shares;
* step 4 — ``{a|b}.gslb.applimg.com`` (Apple): the GSLB answering with
  Apple cache-server addresses;
* the third-party handover names: ``appldnld2.apple.com.edgesuite.net``
  → ``a1271.gi3.akamai.net`` (and ``a1015`` after the rollout change),
  ``apple.vo.llnwi.net`` (US/EU) and ``apple-dnld.vo.llnwd.net`` (APAC)
  for Limelight, plus the Level3 names removed in late June 2017.

Two of the three selection steps run on Akamai's DNS, one on Apple's —
the operator attribution the analysis layer recovers from resolutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..cdn.deployment import CdnDeployment
from ..dns.policies import (
    CnamePolicy,
    CountrySplitPolicy,
    GslbAddressPolicy,
    StaticPolicy,
    WeightSchedule,
    WeightedCnamePolicy,
)
from ..dns.records import ARecord
from ..dns.resolver import RecursiveResolver
from ..dns.zone import AuthoritativeServer, Zone
from ..net.geo import MappingRegion
from ..net.ipv4 import IPv4Address
from .deployment import AppleCdn
from .policy import AkamaiHandoverPolicy, MetaCdnController, OffloadCnamePolicy

__all__ = ["MappingNames", "NAMES", "MetaCdnEstate", "build_meta_cdn"]


@dataclass(frozen=True)
class MappingNames:
    """Every DNS name in the Figure 2 chain, as measured."""

    entry_point: str = "appldnld.apple.com"
    manifest_host: str = "mesu.apple.com"
    akadns_entry: str = "appldnld.apple.com.akadns.net"
    india_lb: str = "india-lb.itunes-apple.com.akadns.net"
    china_lb: str = "china-lb.itunes-apple.com.akadns.net"
    selection: str = "appldnld.g.applimg.com"
    gslb_a: str = "a.gslb.applimg.com"
    gslb_b: str = "b.gslb.applimg.com"
    edgesuite: str = "appldnld2.apple.com.edgesuite.net"
    akamai_primary: str = "a1271.gi3.akamai.net"
    akamai_secondary: str = "a1015.gi3.akamai.net"
    limelight_us_eu: str = "apple.vo.llnwi.net"
    limelight_apac: str = "apple-dnld.vo.llnwd.net"
    level3: str = "apple.fp.lsws.net"  # removed late June 2017

    def ios8_lb(self, region: MappingRegion) -> str:
        """The regional third-party selection name."""
        return f"ios8-{region.value}-lb.apple.com.akadns.net"

    def limelight_handover(self, region: MappingRegion) -> str:
        """Limelight's region-specific handover name."""
        if region is MappingRegion.APAC:
            return self.limelight_apac
        return self.limelight_us_eu

    def member_of(self, name: str) -> Optional[str]:
        """The member CDN a handover/GSLB name steers traffic to.

        ``None`` for names that are not failover-steerable targets
        (the entry point, the selection step itself, ...).  This is the
        mapping the health-check loop uses to filter answers.
        """
        if name in (self.gslb_a, self.gslb_b):
            return "Apple"
        if name in (self.edgesuite, self.akamai_primary, self.akamai_secondary):
            return "Akamai"
        if name in (self.limelight_us_eu, self.limelight_apac):
            return "Limelight"
        if name == self.level3:
            return "Level3"
        return None


NAMES = MappingNames()

# Measured TTLs (Figure 2): entry hop 21600 s, country split 120 s,
# selection 15 s, third-party selection 300 s, Akamai handover 300 s,
# Limelight A records 20 s (US/EU) / 60 s (APAC), Apple GSLB 15 s.
ENTRY_TTL = 21600
COUNTRY_SPLIT_TTL = 120
SELECTION_TTL = 15
THIRD_PARTY_SELECT_TTL = 300
EDGESUITE_TTL = 300
AKAMAI_A_TTL = 20
LIMELIGHT_US_EU_A_TTL = 20
LIMELIGHT_APAC_A_TTL = 60
GSLB_A_TTL = 15
MANIFEST_A_TTL = 3600

MANIFEST_SERVER_ADDRESS = IPv4Address.parse("17.171.4.33")


def _default_weights() -> dict[MappingRegion, WeightSchedule]:
    """Even Akamai/Limelight split everywhere (scenarios override)."""
    return {
        region: WeightSchedule.constant(
            {
                NAMES.edgesuite: 0.5,
                NAMES.limelight_handover(region): 0.5,
            }
        )
        for region in MappingRegion
    }


@dataclass
class MetaCdnEstate:
    """The assembled Meta-CDN: DNS servers, deployments and controller."""

    names: MappingNames
    apple: AppleCdn
    akamai: CdnDeployment
    limelight: CdnDeployment
    controller: MetaCdnController
    servers: list[AuthoritativeServer]
    level3: Optional[CdnDeployment] = None
    third_party_weights: dict[MappingRegion, WeightSchedule] = field(
        default_factory=dict
    )
    # Health-aware failover view ("SelectionHealth"); None = the estate
    # never fails over and every hot path skips the health checks.
    health: Optional[object] = None

    def resolver(self, cache: bool = True) -> RecursiveResolver:
        """A recursive resolver over the full estate."""
        return RecursiveResolver(self.servers, cache=cache)

    def apple_share(self, region: MappingRegion, now: float) -> float:
        """The step-2 Apple share, bent by failover when health is wired."""
        share = self.controller.apple_share(region)
        if self.health is not None:
            share = self.health.effective_share(share, region, now)
        return share

    @property
    def deployments(self) -> dict[str, CdnDeployment]:
        """Every delivery fleet by operator name."""
        fleets = {
            "Apple": self.apple.deployment,
            "Akamai": self.akamai,
            "Limelight": self.limelight,
        }
        if self.level3 is not None:
            fleets["Level3"] = self.level3
        return fleets

    def deployment_at(self, address: IPv4Address) -> Optional[str]:
        """The operator whose delivery fleet owns ``address``."""
        for operator, deployment in self.deployments.items():
            if deployment.server_at(address) is not None:
                return operator
        return None


def build_meta_cdn(
    apple_cdn: AppleCdn,
    akamai: CdnDeployment,
    limelight: CdnDeployment,
    controller: MetaCdnController,
    third_party_weights: Optional[Mapping[MappingRegion, WeightSchedule]] = None,
    a1015_from: Optional[float] = None,
    level3: Optional[CdnDeployment] = None,
    names: MappingNames = NAMES,
    health_monitor=None,
) -> MetaCdnEstate:
    """Wire the full Figure 2 estate across the three DNS operators.

    ``third_party_weights`` drives step 3 per region (the shares Apple
    adjusts commercially); ``a1015_from`` is the simulation time at
    which Akamai's extra EU handover name appears (``None`` = never —
    the pre-rollout configuration).  Passing ``level3`` restores the
    pre-late-June 2017 configuration for ablations; its weight must
    then appear in the schedules.

    ``health_monitor`` (a :class:`repro.faults.CdnHealthMonitor`) makes
    the estate failover-aware: the step-2 selection consults member
    health before picking a branch and the step-3 weight schedules
    answer only healthy members.  Without one, behaviour is identical
    to the healthy-path build.
    """
    weights = dict(third_party_weights) if third_party_weights else _default_weights()
    for region in MappingRegion:
        if region not in weights:
            raise ValueError(f"missing third-party weights for region {region.value}")

    health = None
    if health_monitor is not None:
        from ..faults.health import SelectionHealth

        health = SelectionHealth(health_monitor, names.member_of)
        weights = {
            region: health.wrap_schedule(region, schedule)
            for region, schedule in weights.items()
        }

    # --- Apple's DNS -----------------------------------------------------
    apple_zone = Zone("apple.com")
    apple_zone.bind(names.entry_point, CnamePolicy(names.akadns_entry, ENTRY_TTL))
    apple_zone.bind(
        names.manifest_host,
        StaticPolicy(
            (ARecord(names.manifest_host, MANIFEST_SERVER_ADDRESS, MANIFEST_A_TTL),)
        ),
    )
    applimg_zone = Zone("applimg.com")
    applimg_zone.bind(
        names.selection,
        OffloadCnamePolicy(
            controller=controller,
            gslb_targets=(names.gslb_a, names.gslb_b),
            ttl=SELECTION_TTL,
            health=health,
        ),
    )
    for gslb_name in (names.gslb_a, names.gslb_b):
        applimg_zone.bind(
            gslb_name,
            GslbAddressPolicy(
                pool=apple_cdn.deployment.pool_for,
                ttl=GSLB_A_TTL,
                answer_count=4,
                salt=gslb_name,
            ),
        )
    apple_server = AuthoritativeServer("Apple", [apple_zone, applimg_zone])

    # --- Akamai's DNS ------------------------------------------------------
    akadns_zone = Zone("akadns.net")
    akadns_zone.bind(
        names.akadns_entry,
        CountrySplitPolicy(
            default=names.selection,
            overrides={"in": names.india_lb, "cn": names.china_lb},
            ttl=COUNTRY_SPLIT_TTL,
        ),
    )
    # India/China are not studied further (few probes there); both names
    # hand straight to the Akamai CDN so resolutions still complete.
    akadns_zone.bind(names.india_lb, CnamePolicy(names.edgesuite, COUNTRY_SPLIT_TTL))
    akadns_zone.bind(names.china_lb, CnamePolicy(names.edgesuite, COUNTRY_SPLIT_TTL))
    for region in MappingRegion:
        akadns_zone.bind(
            names.ios8_lb(region),
            WeightedCnamePolicy(
                schedule=weights[region],
                ttl=THIRD_PARTY_SELECT_TTL,
                salt=region.value,
            ),
        )
    edgesuite_zone = Zone("edgesuite.net")
    edgesuite_zone.bind(
        names.edgesuite,
        AkamaiHandoverPolicy(
            primary=names.akamai_primary,
            secondary=names.akamai_secondary,
            secondary_from=a1015_from,
            ttl=EDGESUITE_TTL,
        ),
    )
    akamai_net_zone = Zone("akamai.net")
    for handover in (names.akamai_primary, names.akamai_secondary):
        akamai_net_zone.bind(
            handover,
            GslbAddressPolicy(
                pool=akamai.pool_for,
                ttl=AKAMAI_A_TTL,
                answer_count=8,
                salt=handover,
            ),
        )
    akamai_server = AuthoritativeServer(
        "Akamai", [akadns_zone, edgesuite_zone, akamai_net_zone]
    )

    # --- Limelight's DNS ---------------------------------------------------
    llnwi_zone = Zone("llnwi.net")
    llnwi_zone.bind(
        names.limelight_us_eu,
        GslbAddressPolicy(
            pool=limelight.pool_for,
            ttl=LIMELIGHT_US_EU_A_TTL,
            answer_count=8,
            salt=names.limelight_us_eu,
        ),
    )
    llnwd_zone = Zone("llnwd.net")
    llnwd_zone.bind(
        names.limelight_apac,
        GslbAddressPolicy(
            pool=limelight.pool_for,
            ttl=LIMELIGHT_APAC_A_TTL,
            answer_count=8,
            salt=names.limelight_apac,
        ),
    )
    limelight_server = AuthoritativeServer("Limelight", [llnwi_zone, llnwd_zone])

    servers = [apple_server, akamai_server, limelight_server]

    # --- optional Level3 (pre-June 2017 configuration) ----------------------
    if level3 is not None:
        lsws_zone = Zone("lsws.net")
        lsws_zone.bind(
            names.level3,
            GslbAddressPolicy(
                pool=level3.pool_for, ttl=AKAMAI_A_TTL, answer_count=8, salt="level3"
            ),
        )
        servers.append(AuthoritativeServer("Level3", [lsws_zone]))

    return MetaCdnEstate(
        names=names,
        apple=apple_cdn,
        akamai=akamai,
        limelight=limelight,
        controller=controller,
        servers=servers,
        level3=level3,
        third_party_weights=weights,
        health=health,
    )
