"""Apple's CDN server naming scheme (Table 1).

The scheme is ``ab-c-d-e.aaplimg.com`` where

* ``a`` — UN/LOCODE location, e.g. ``deber`` for Berlin (with Apple's
  known deviation ``uklon`` for London);
* ``b`` — location site id, e.g. ``1``;
* ``c`` — function: ``vip``, ``edge``, ``gslb``, ``dns``, ``ntp``, ``tool``;
* ``d`` — secondary function identifier: ``bx``, ``lx``, ``sx``;
* ``e`` — id for same-function servers, zero-padded, e.g. ``004``.

Example: ``usnyc3-vip-bx-008.aaplimg.com``.  The HTTP ``Via`` headers
show the same host part under ``ts.apple.com``
(``defra1-edge-lx-011.ts.apple.com``), so the parser accepts any domain.

The paper reconstructed this scheme by scanning Apple's ``17.0.0.0/8``
range and enumerating reverse DNS names; :func:`parse_hostname` is the
code that turns such names back into structured facts, and it is what
the Figure 3 site-discovery analysis runs on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..cdn.server import SecondaryFunction, ServerFunction, ServerRole
from ..net.locode import LocodeDatabase

__all__ = ["AppleServerName", "parse_hostname", "format_hostname", "NamingError",
           "AAPLIMG_DOMAIN", "TS_APPLE_DOMAIN"]

AAPLIMG_DOMAIN = "aaplimg.com"
TS_APPLE_DOMAIN = "ts.apple.com"

_HOST_PART = re.compile(
    r"^(?P<locode>[a-z]{5})(?P<site_id>\d+)"
    r"-(?P<function>vip|edge|gslb|dns|ntp|tool)"
    r"(?:-(?P<secondary>bx|lx|sx))?"
    r"-(?P<server_id>\d+)$"
)


class NamingError(ValueError):
    """Raised for hostnames that do not follow the Table 1 scheme."""


@dataclass(frozen=True)
class AppleServerName:
    """A parsed Apple server name."""

    locode: str
    site_id: int
    function: ServerFunction
    secondary: Optional[SecondaryFunction]
    server_id: int
    domain: str = AAPLIMG_DOMAIN

    @property
    def role(self) -> ServerRole:
        """The (function, secondary) role of this server."""
        return ServerRole(self.function, self.secondary)

    @property
    def site_key(self) -> tuple[str, int]:
        """Identifies the edge site: (locode, site id)."""
        return (self.locode, self.site_id)

    @property
    def canonical_locode(self) -> str:
        """The real UN/LOCODE (resolves Apple's ``uklon`` deviation)."""
        return LocodeDatabase.canonical_code(self.locode)

    def hostname(self) -> str:
        """Render back to a full hostname."""
        return format_hostname(
            self.locode,
            self.site_id,
            self.function,
            self.secondary,
            self.server_id,
            self.domain,
        )

    def __str__(self) -> str:
        return self.hostname()


def format_hostname(
    locode: str,
    site_id: int,
    function: ServerFunction,
    secondary: Optional[SecondaryFunction],
    server_id: int,
    domain: str = AAPLIMG_DOMAIN,
) -> str:
    """Build a hostname following the Table 1 scheme.

    >>> format_hostname("usnyc", 3, ServerFunction.VIP, SecondaryFunction.BX, 8)
    'usnyc3-vip-bx-008.aaplimg.com'
    """
    if len(locode) != 5 or not locode.isalpha():
        raise NamingError(f"bad locode {locode!r}")
    if site_id < 0 or server_id < 0:
        raise NamingError("site and server ids must be non-negative")
    middle = function.value if secondary is None else f"{function.value}-{secondary.value}"
    return f"{locode.lower()}{site_id}-{middle}-{server_id:03d}.{domain}"


def parse_hostname(hostname: str) -> AppleServerName:
    """Parse a full hostname into an :class:`AppleServerName`.

    >>> name = parse_hostname("usnyc3-vip-bx-008.aaplimg.com")
    >>> name.site_key
    ('usnyc', 3)
    >>> str(name.role)
    'vip-bx'
    """
    cleaned = hostname.strip().lower().rstrip(".")
    host_part, _, domain = cleaned.partition(".")
    if not domain:
        raise NamingError(f"hostname has no domain: {hostname!r}")
    match = _HOST_PART.match(host_part)
    if match is None:
        raise NamingError(f"not an Apple server name: {hostname!r}")
    secondary_text = match.group("secondary")
    return AppleServerName(
        locode=match.group("locode"),
        site_id=int(match.group("site_id")),
        function=ServerFunction(match.group("function")),
        secondary=SecondaryFunction(secondary_text) if secondary_text else None,
        server_id=int(match.group("server_id")),
        domain=domain,
    )
