"""The Meta-CDN service: Apple's CDN-selection policy.

Section 5.3's key finding is the *Apple-first* shape of the offload:
"Apple uses its own CDN first before offloading" — its CDN runs at high
capacity through the event while third-party CDNs absorb the spill, with
the third-party split changing day by day (Akamai only on release day,
Limelight throughout).

:class:`MetaCdnController` implements that decision: given the demand a
region currently offers and Apple's regional capacity, it computes the
share of requests kept on Apple's own CDN; the remainder is handed to
the third-party selection step.  :class:`OffloadCnamePolicy` is the
DNS-facing half — the policy bound to ``appldnld.g.applimg.com``, whose
15 s TTL is what makes this control loop responsive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..dns.policies import stable_fraction
from ..dns.query import QueryContext
from ..dns.records import CnameRecord, ResourceRecord
from ..net.geo import MappingRegion

__all__ = ["MetaCdnController", "OffloadCnamePolicy", "AkamaiHandoverPolicy"]


class MetaCdnController:
    """Decides, per region and instant, the share Apple's CDN keeps.

    ``capacity_gbps`` is Apple's own delivery capacity per region;
    ``target_utilization`` is the fill level Apple is willing to run at
    before spilling (the ISP data shows Apple "runs at high capacity"
    on the busiest days).  Demand is fed in by the simulation loop via
    :meth:`observe_demand`; with no observation yet, everything stays
    on Apple.
    """

    def __init__(
        self,
        capacity_gbps: Mapping[MappingRegion, float],
        target_utilization: float = 0.95,
        min_third_party_share: float = 0.0,
    ) -> None:
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0.0 <= min_third_party_share < 1.0:
            raise ValueError("min_third_party_share must be in [0, 1)")
        self._capacity = dict(capacity_gbps)
        self.target_utilization = target_utilization
        self.min_third_party_share = min_third_party_share
        self._demand: dict[MappingRegion, float] = {}

    def observe_demand(self, region: MappingRegion, gbps: float) -> None:
        """Report the demand currently offered in ``region``."""
        if gbps < 0:
            raise ValueError("demand cannot be negative")
        self._demand[region] = gbps

    def demand(self, region: MappingRegion) -> float:
        """The last observed demand for ``region`` (0 before any)."""
        return self._demand.get(region, 0.0)

    def capacity(self, region: MappingRegion) -> float:
        """Apple's own capacity in ``region``."""
        return self._capacity.get(region, 0.0)

    def apple_share(self, region: MappingRegion) -> float:
        """Fraction of requests kept on Apple's own CDN right now.

        Apple-first: the full non-contracted share while demand fits
        under the utilisation target, then exactly the servable
        fraction — the spill goes to third parties.  A standing
        ``min_third_party_share`` (commercial volume contracts; the
        reason Europe shows ~50 % third-party cache IPs even before the
        event) is always routed away.  A region without Apple capacity
        gets 0.0.
        """
        ceiling = 1.0 - self.min_third_party_share
        usable = self.capacity(region) * self.target_utilization
        if usable <= 0.0:
            return 0.0
        demand = self.demand(region)
        if demand * ceiling <= usable:
            return ceiling
        return usable / demand

    def offload_gbps(self, region: MappingRegion) -> float:
        """The demand volume currently spilled to third parties."""
        return self.demand(region) * (1.0 - self.apple_share(region))

    def apple_utilization(self, region: MappingRegion) -> float:
        """Apple's own fill level (1.0 == at the utilisation target)."""
        usable = self.capacity(region) * self.target_utilization
        if usable <= 0.0:
            return 0.0
        return min(1.0, self.demand(region) / usable)


@dataclass(frozen=True)
class OffloadCnamePolicy:
    """The ``appldnld.g.applimg.com`` decision (step 2 of Figure 2).

    Keeps ``controller.apple_share`` of clients on Apple's GSLB names
    (``{a|b}.gslb.applimg.com``) and redirects the rest to the region's
    third-party selection name.  Selection is sticky per 15 s bucket,
    matching the measured TTL.
    """

    controller: MetaCdnController
    gslb_targets: tuple[str, ...] = ("a.gslb.applimg.com", "b.gslb.applimg.com")
    third_party_pattern: str = "ios8-{region}-lb.apple.com.akadns.net"
    ttl: int = 15
    salt: str = ""
    # Failover view (repro.faults.SelectionHealth); None = never bend
    # the share — the healthy-path behaviour.
    health: Optional[object] = None

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        target = self.select(name, context)
        return (CnameRecord(name, target, self.ttl),)

    def select(self, name: str, context: QueryContext) -> str:
        """The CNAME target for this client: Apple GSLB or third-party."""
        share = self.controller.apple_share(context.region)
        if self.health is not None:
            share = self.health.effective_share(share, context.region, context.now)
        bucket = int(context.now // self.ttl) if self.ttl > 0 else 0
        fraction = stable_fraction(name, context.client, bucket, self.salt)
        if fraction < share:
            pick = stable_fraction("gslb", context.client, bucket, self.salt)
            index = int(pick * len(self.gslb_targets))
            return self.gslb_targets[index]
        return self.third_party_pattern.format(region=context.region.value)


@dataclass(frozen=True)
class AkamaiHandoverPolicy:
    """The ``appldnld2.apple.com.edgesuite.net`` hop with the rollout change.

    Normally a CNAME to ``a1271.gi3.akamai.net``.  Six hours into the
    iOS 11 rollout (Sep 19 around 23h UTC) Akamai added
    ``a1015.gi3.akamai.net`` for requests arriving via the EU load
    balancer; from ``secondary_from`` onwards, EU clients split between
    the two handover names.
    """

    primary: str = "a1271.gi3.akamai.net"
    secondary: str = "a1015.gi3.akamai.net"
    secondary_from: Optional[float] = None  # simulation seconds; None = never
    secondary_region: MappingRegion = MappingRegion.EU
    secondary_share: float = 0.5
    ttl: int = 300
    salt: str = ""

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        return (CnameRecord(name, self.select(name, context), self.ttl),)

    def select(self, name: str, context: QueryContext) -> str:
        """Which ``gi3.akamai.net`` name this client is handed to."""
        if (
            self.secondary_from is not None
            and context.now >= self.secondary_from
            and context.region is self.secondary_region
        ):
            bucket = int(context.now // self.ttl) if self.ttl > 0 else 0
            fraction = stable_fraction(name, context.client, bucket, self.salt)
            if fraction < self.secondary_share:
                return self.secondary
        return self.primary
