"""RIPE Atlas substrate: probes, placement, campaigns, result records
and a simulated tracer — the measurement side of the methodology."""

from .awsvm import (
    AWS_REGION_METROS,
    AvailabilityCheck,
    AwsVantage,
    AwsVmCampaign,
    AwsVmResult,
    build_aws_vantages,
)
from .campaign import DnsCampaign, TracerouteCampaign
from .columnar import DnsColumns, DnsRowRef, DnsSegment
from .placement import (
    ATLAS_CONTINENT_WEIGHTS,
    place_global_probes,
    place_isp_probes,
)
from .probe import AtlasProbe
from .results import (
    DnsMeasurement,
    MeasurementStore,
    TracerouteHop,
    TracerouteMeasurement,
)
from .traceroute import TRANSIT_HOP_PREFIX, SimulatedTracer

__all__ = [
    "AtlasProbe",
    "AwsVantage",
    "AwsVmCampaign",
    "AwsVmResult",
    "AvailabilityCheck",
    "build_aws_vantages",
    "AWS_REGION_METROS",
    "place_global_probes",
    "place_isp_probes",
    "ATLAS_CONTINENT_WEIGHTS",
    "DnsCampaign",
    "TracerouteCampaign",
    "DnsColumns",
    "DnsRowRef",
    "DnsSegment",
    "DnsMeasurement",
    "TracerouteHop",
    "TracerouteMeasurement",
    "MeasurementStore",
    "SimulatedTracer",
    "TRANSIT_HOP_PREFIX",
]
