"""AWS-VM vantage points: detailed resolution + availability checks.

Besides the RIPE Atlas probes, the paper ran nine AWS VMs "distributed
over all continents except Africa" that performed *full recursive DNS
resolution* (keeping every hop, TTL and answering operator — the raw
material of Figure 2) and *checked the availability of the relevant
files* on the resolved CDN servers (Section 3.2).

:class:`AwsVantage` models one VM; :class:`AwsVmCampaign` the periodic
sweep.  Unlike Atlas probes, results keep the structured
:class:`~repro.dns.resolver.Resolution` plus per-address HTTP
availability verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..dns.query import Question, QueryContext, RCode
from ..dns.records import normalize_name
from ..dns.resolver import RecursiveResolver, Resolution, ResolutionError
from ..dns.zone import AuthoritativeServer
from ..http.messages import Headers, HttpRequest, HttpResponse
from ..net.geo import Continent
from ..net.ipv4 import IPv4Address
from ..net.locode import Location, LocodeDatabase
from ..workload.timeline import MeasurementWindow

__all__ = ["AwsVantage", "AvailabilityCheck", "AwsVmResult", "AwsVmCampaign",
           "AWS_REGION_METROS", "build_aws_vantages"]

# The nine 2017-era AWS regions: every continent except Africa.
AWS_REGION_METROS: tuple[tuple[str, str], ...] = (
    ("us-east-1", "usiad"),
    ("us-west-1", "ussjc"),
    ("ca-central-1", "camtr"),
    ("sa-east-1", "brsao"),
    ("eu-west-1", "iedub"),
    ("eu-central-1", "defra"),
    ("ap-northeast-1", "jptyo"),
    ("ap-southeast-1", "sgsin"),
    ("ap-southeast-2", "ausyd"),
)


@dataclass(frozen=True)
class AvailabilityCheck:
    """One HTTP availability verdict for a resolved cache address."""

    address: IPv4Address
    status: Optional[int]  # None when the fetch failed outright
    cache_verdict: Optional[str]

    @property
    def available(self) -> bool:
        """Whether the file was obtainable from this cache."""
        return self.status is not None and 200 <= self.status < 300


@dataclass(frozen=True)
class AwsVmResult:
    """One tick of one VM: the full resolution plus availability."""

    region: str
    timestamp: float
    resolution: Resolution
    checks: tuple[AvailabilityCheck, ...]

    @property
    def all_available(self) -> bool:
        """True when every resolved cache served the file."""
        return bool(self.checks) and all(check.available for check in self.checks)


@dataclass
class AwsVantage:
    """One AWS VM: a region, a metro, and its own resolver."""

    region: str
    address: IPv4Address
    location: Location
    servers: Sequence[AuthoritativeServer]

    @property
    def continent(self) -> Continent:
        """The VM's continent."""
        return self.location.continent

    def context(self, now: float) -> QueryContext:
        """The DNS query context this VM presents."""
        return QueryContext(
            client=self.address,
            coordinates=self.location.coordinates,
            continent=self.continent,
            country=self.location.country,
            now=now,
        )

    def measure(
        self,
        target: str,
        now: float,
        fetch: Callable[[IPv4Address, HttpRequest], Optional[HttpResponse]],
        path: str = "/ios11.0/iphone9_1_11.0_restore.ipsw",
        size: int = 2_800_000_000,
    ) -> AwsVmResult:
        """One detailed measurement: resolve, then probe every address.

        ``fetch`` maps (cache address, request) to a response, or
        ``None`` when the address serves nothing — the scenario provides
        a fetcher that routes to the owning CDN's delivery model.
        """
        try:
            resolution = self._resolver().resolve(target, self.context(now))
        except ResolutionError:
            resolution = Resolution(
                question=Question(normalize_name(target)),
                steps=(),
                rcode=RCode.SERVFAIL,
            )
        checks = []
        for address in resolution.addresses:
            request = HttpRequest(
                "GET", target, path,
                headers=Headers({"X-Client": str(self.address)}),
            )
            response = fetch(address, request)
            if response is None:
                checks.append(AvailabilityCheck(address, None, None))
            else:
                checks.append(
                    AvailabilityCheck(
                        address,
                        response.status,
                        response.headers.get("X-Cache"),
                    )
                )
        return AwsVmResult(
            region=self.region,
            timestamp=now,
            resolution=resolution,
            checks=tuple(checks),
        )

    def _resolver(self) -> RecursiveResolver:
        # Fresh per measurement: the VMs performed *full* recursive
        # resolutions, deliberately bypassing caches.
        return RecursiveResolver(self.servers, cache=False)


def build_aws_vantages(
    servers: Sequence[AuthoritativeServer],
    locations: Optional[LocodeDatabase] = None,
    base_address: str = "198.19.255.1",
) -> list[AwsVantage]:
    """The paper's nine VMs, one per 2017 AWS region."""
    db = locations if locations is not None else LocodeDatabase.builtin()
    base = IPv4Address.parse(base_address)
    vantages = []
    for index, (region, metro) in enumerate(AWS_REGION_METROS):
        vantages.append(
            AwsVantage(
                region=region,
                address=base.shifted(index),
                location=db.get(metro),
                servers=list(servers),
            )
        )
    return vantages


@dataclass
class AwsVmCampaign:
    """Periodic detailed measurements from all VMs."""

    vantages: Sequence[AwsVantage]
    target: str
    interval: float
    window: MeasurementWindow
    fetch: Callable[[IPv4Address, HttpRequest], Optional[HttpResponse]]
    results: list = field(default_factory=list)
    _next_due: Optional[float] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not self.vantages:
            raise ValueError("campaign needs at least one vantage")

    def maybe_run(self, now: float) -> int:
        """Fire a sweep if due; returns the number of measurements."""
        if not self.window.contains(now):
            return 0
        if self._next_due is not None and now < self._next_due:
            return 0
        for vantage in self.vantages:
            self.results.append(vantage.measure(self.target, now, self.fetch))
        if self._next_due is None:
            self._next_due = now + self.interval
        while self._next_due <= now:
            self._next_due += self.interval
        return len(self.vantages)

    def resolutions(self) -> list[Resolution]:
        """All structured resolutions collected so far."""
        return [result.resolution for result in self.results]

    def availability_ratio(self) -> float:
        """Fraction of availability checks that succeeded."""
        checks = [check for result in self.results for check in result.checks]
        if not checks:
            return 0.0
        return sum(1 for check in checks if check.available) / len(checks)
