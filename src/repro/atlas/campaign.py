"""Measurement campaigns: scheduled DNS (and traceroute) sweeps.

The paper's cadence: the 800 global probes resolved
``appldnld.apple.com`` every 5 minutes for a week either side of the
release; the 400 ISP probes every 12 hours from Aug 21 to Dec 31;
traceroutes ran hourly against all server IPs seen in DNS.

A campaign is driven by the simulation clock: the engine calls
:meth:`DnsCampaign.maybe_run` every step and the campaign fires when a
tick is due.  This keeps DNS observations interleaved with the demand
and exposure dynamics they are supposed to witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..dns.resolver import ServerMap, resolve_bulk
from ..obs import get_registry
from ..workload.timeline import MeasurementWindow
from .columnar import DnsRowRef
from .probe import AtlasProbe
from .results import DnsMeasurement, MeasurementStore

__all__ = ["DnsCampaign", "TracerouteCampaign"]


@dataclass
class DnsCampaign:
    """A scheduled DNS measurement over a probe set.

    ``name`` labels this campaign's telemetry series; a *late* tick is
    one that fired after its scheduled grid slot (the engine stepped
    past the due time), a *missed* slot is a grid point skipped
    entirely because the engine's step outpaced the interval.
    """

    probes: Sequence[AtlasProbe]
    target: str
    interval: float
    window: MeasurementWindow
    store: MeasurementStore = field(default_factory=MeasurementStore)
    name: str = "dns"
    # bulk=True resolves a tick's queries level-synchronously in one
    # sweep (shared server lookups); bulk=False is the legacy one-chase-
    # per-probe loop.  Results are value-identical either way.
    bulk: bool = True
    _next_due: Optional[float] = field(default=None, init=False, repr=False)
    _server_map: Optional[ServerMap] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not self.probes:
            raise ValueError("campaign needs at least one probe")
        registry = get_registry()
        self._m_measurements = registry.counter(
            "atlas_measurements_total",
            "Measurements taken, by campaign",
            ("campaign",),
        ).labels(self.name)
        self._m_late = registry.counter(
            "atlas_ticks_late_total",
            "Campaign ticks fired after their scheduled slot",
            ("campaign",),
        ).labels(self.name)
        self._m_missed = registry.counter(
            "atlas_slots_missed_total",
            "Scheduled slots skipped because the engine stepped past them",
            ("campaign",),
        ).labels(self.name)

    def due(self, now: float) -> bool:
        """Whether a tick should fire at ``now``."""
        if not self.window.contains(now):
            return False
        if self._next_due is None:
            return True
        return now >= self._next_due

    def maybe_run(self, now: float) -> int:
        """Fire a tick if due; returns the number of measurements taken."""
        if not self.due(now):
            return 0
        for measurement in self.measure_slice(now):
            self.store.add_dns(measurement)
        self.mark_fired(now)
        return len(self.probes)

    def measure_slice(
        self, now: float, indices: Optional[Sequence[int]] = None
    ) -> List[DnsMeasurement]:
        """Measure a subset of probes (all by default) without recording.

        Sharded execution carves the probe set into index slices owned
        by different workers; each worker measures only its slice and
        the coordinator recombines them in probe order via
        :meth:`absorb_tick`.  No store, grid or telemetry state is
        touched here.
        """
        probes = (
            list(self.probes) if indices is None
            else [self.probes[i] for i in indices]
        )
        if not self.bulk:
            return [probe.measure_dns(self.target, now) for probe in probes]
        if self._server_map is None:
            # All campaign probes are built from one estate server
            # list, so a single shared map serves every chase.
            self._server_map = ServerMap(self.probes[0].resolver.servers)
        outcomes = resolve_bulk(
            [(probe.resolver, probe.context(now)) for probe in probes],
            self.target,
            self._server_map,
        )
        return [
            probe.measurement_from(self.target, now, outcome)
            for probe, outcome in zip(probes, outcomes)
        ]

    def mark_fired(self, now: float, count_metrics: bool = True) -> None:
        """Advance the due grid after a tick fired at ``now``.

        Every replica of a sharded run calls this (so ``due`` stays in
        lockstep across workers), but only the process that owns the
        recorded measurements counts telemetry — workers pass
        ``count_metrics=False`` and the coordinator counts once.
        """
        if count_metrics:
            self._m_measurements.inc(len(self.probes))
        if self._next_due is None:
            self._next_due = now + self.interval
        else:
            if now > self._next_due and count_metrics:
                self._m_late.inc()
            # Keep the grid aligned even if the engine stepped past a tick.
            slots = 0
            while self._next_due <= now:
                self._next_due += self.interval
                slots += 1
            if slots > 1 and count_metrics:
                self._m_missed.inc(slots - 1)
        return None

    def absorb_tick(self, now: float, measurements: Sequence) -> int:
        """Record one tick's worth of externally measured results.

        The coordinator of a sharded run merges the workers' slices —
        already recombined into probe order — through this, producing
        the same store contents and grid state as a serial
        :meth:`maybe_run` at ``now``.  Items are either
        :class:`DnsMeasurement` objects or columnar
        :class:`~repro.atlas.columnar.DnsRowRef` handles (the sealed
        batches workers ship home), which land in the store without
        object reconstruction.
        """
        for item in measurements:
            if isinstance(item, DnsRowRef):
                self.store.add_dns_row(item.columns, item.row)
            else:
                self.store.add_dns(item)
        self.mark_fired(now)
        return len(self.probes)

    def run_window(self, step: Optional[float] = None) -> MeasurementStore:
        """Run the whole window standalone (no engine), returning the store.

        Useful for analyses that do not need demand dynamics; ``step``
        defaults to the campaign interval.
        """
        stride = step if step is not None else self.interval
        now = self.window.start
        while now < self.window.end:
            self.maybe_run(now)
            now += stride
        return self.store


@dataclass
class TracerouteCampaign:
    """Hourly traceroutes to every cache address seen in DNS so far."""

    probes: Sequence[AtlasProbe]
    dns_store: MeasurementStore
    interval: float
    window: MeasurementWindow
    tracer: Callable  # (probe, destination, now) -> TracerouteMeasurement
    store: MeasurementStore = field(default_factory=MeasurementStore)
    max_targets_per_tick: int = 64
    name: str = "traceroute"
    _next_due: Optional[float] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        registry = get_registry()
        self._m_measurements = registry.counter(
            "atlas_measurements_total",
            "Measurements taken, by campaign",
            ("campaign",),
        ).labels(self.name)
        self._m_late = registry.counter(
            "atlas_ticks_late_total",
            "Campaign ticks fired after their scheduled slot",
            ("campaign",),
        ).labels(self.name)

    def maybe_run(self, now: float) -> int:
        """Fire a traceroute sweep if due; returns measurements taken."""
        if not self.window.contains(now):
            return 0
        if self._next_due is not None and now < self._next_due:
            return 0
        targets = sorted(self.dns_store.unique_addresses())[
            : self.max_targets_per_tick
        ]
        taken = 0
        for probe in self.probes:
            for destination in targets:
                self.store.add_traceroute(self.tracer(probe, destination, now))
                taken += 1
        if taken:
            self._m_measurements.inc(taken)
        if self._next_due is not None and now > self._next_due:
            self._m_late.inc()
        self._next_due = (now + self.interval) if self._next_due is None else self._next_due
        while self._next_due <= now:
            self._next_due += self.interval
        return taken
