"""Columnar (struct-of-arrays) storage for DNS measurement records.

:class:`~repro.atlas.results.MeasurementStore` used to keep every
:class:`~repro.atlas.results.DnsMeasurement` as a Python object in a
list, which made analysis cost and memory grow with run length: the
paper's §4/§5 aggregations only need a handful of fields per record,
yet every scan paid full dataclass attribute access and every
``store.dns`` access copied the whole history.  This module provides
the columnar core behind the store:

* :class:`DnsColumns` — an append-only block of typed columns
  (timestamps as ``array('d')``, packed IPv4 ints in a CSR layout,
  interned target/country/rcode/CNAME-chain tables), self-contained
  and losslessly convertible back to :class:`DnsMeasurement` rows;
* :class:`DnsSegment` — a sealed, immutable block plus the summary
  (min/max time, unique address ints, byte size) that lets
  time-window queries prune whole segments, and a compact binary
  on-disk form so sealed segments can spill out of RAM;
* :class:`DnsRowRef` — a (block, row) handle used by the sharded
  engine to ship measurement slices between processes in columnar
  form and absorb them without rebuilding objects.

Everything round-trips exactly: a reconstructed row compares equal to
the measurement that was appended, which is what keeps golden-run
summaries byte-identical across the columnar swap.
"""

from __future__ import annotations

import json
import os
import struct
import sys
from array import array
from typing import Iterator, List, NamedTuple, Optional, Sequence

from ..net.asys import ASN
from ..net.geo import Continent
from ..net.ipv4 import IPv4Address

__all__ = [
    "CONTINENTS",
    "CONTINENT_INDEX",
    "DnsColumns",
    "DnsRowRef",
    "DnsSegment",
    "SegmentFormatError",
]

# Continent <-> column index mapping (enum definition order is stable).
CONTINENTS: tuple = tuple(Continent)
CONTINENT_INDEX: dict = {continent: index for index, continent in enumerate(CONTINENTS)}

_MAGIC = b"RSEG1\n"
_HEADER_LEN = struct.Struct("<I")

# (attribute, array typecode) in serialization order.
_ARRAY_FIELDS = (
    ("times", "d"),
    ("probe_ids", "q"),
    ("asns", "I"),
    ("continents", "B"),
    ("target_ids", "H"),
    ("country_ids", "H"),
    ("rcode_ids", "B"),
    ("chain_ids", "I"),
    ("addr_offsets", "Q"),
    ("addr_values", "I"),
)

_DNS_MEASUREMENT = None


def _record_type():
    """The DnsMeasurement class (imported lazily to avoid a cycle)."""
    global _DNS_MEASUREMENT
    if _DNS_MEASUREMENT is None:
        from .results import DnsMeasurement

        _DNS_MEASUREMENT = DnsMeasurement
    return _DNS_MEASUREMENT


class SegmentFormatError(ValueError):
    """Raised for a malformed on-disk segment payload."""


class DnsRowRef(NamedTuple):
    """One row of a columnar block, addressable without decoding it."""

    columns: "DnsColumns"
    row: int


class DnsColumns:
    """An append-only columnar block of DNS measurements.

    Self-contained: the interned string/chain tables travel with the
    block, so a block can be pickled to another process or written to
    disk and read back without any external state.
    """

    __slots__ = (
        "times",
        "probe_ids",
        "asns",
        "continents",
        "target_ids",
        "country_ids",
        "rcode_ids",
        "chain_ids",
        "addr_offsets",
        "addr_values",
        "targets",
        "countries",
        "rcodes",
        "chains",
        "_target_index",
        "_country_index",
        "_rcode_index",
        "_chain_index",
    )

    def __init__(self) -> None:
        for name, typecode in _ARRAY_FIELDS:
            setattr(self, name, array(typecode))
        self.addr_offsets.append(0)
        self.targets: List[str] = []
        self.countries: List[str] = []
        self.rcodes: List[str] = []
        self.chains: List[tuple] = []
        self._target_index: Optional[dict] = {}
        self._country_index: Optional[dict] = {}
        self._rcode_index: Optional[dict] = {}
        self._chain_index: Optional[dict] = {}

    # ----- interning ----------------------------------------------------

    def _ensure_indexes(self) -> None:
        """Rebuild the intern indexes (dropped on pickle/deserialize)."""
        if self._target_index is None:
            self._target_index = {value: i for i, value in enumerate(self.targets)}
            self._country_index = {value: i for i, value in enumerate(self.countries)}
            self._rcode_index = {value: i for i, value in enumerate(self.rcodes)}
            self._chain_index = {value: i for i, value in enumerate(self.chains)}

    @staticmethod
    def _intern(index: dict, table: list, value) -> int:
        interned = index.get(value)
        if interned is None:
            interned = len(table)
            index[value] = interned
            table.append(value)
        return interned

    # ----- append -------------------------------------------------------

    def append(self, measurement) -> None:
        """Append one :class:`DnsMeasurement` as a columnar row."""
        self._ensure_indexes()
        self.times.append(measurement.timestamp)
        self.probe_ids.append(measurement.probe_id)
        self.asns.append(measurement.probe_asn.number)
        self.continents.append(CONTINENT_INDEX[measurement.continent])
        self.target_ids.append(
            self._intern(self._target_index, self.targets, measurement.target)
        )
        self.country_ids.append(
            self._intern(self._country_index, self.countries, measurement.country)
        )
        self.rcode_ids.append(
            self._intern(self._rcode_index, self.rcodes, measurement.rcode)
        )
        self.chain_ids.append(
            self._intern(self._chain_index, self.chains, measurement.chain)
        )
        for address in measurement.addresses:
            self.addr_values.append(address.value)
        self.addr_offsets.append(len(self.addr_values))

    def append_row_from(self, other: "DnsColumns", row: int) -> None:
        """Copy one row out of ``other`` without building an object."""
        self._ensure_indexes()
        self.times.append(other.times[row])
        self.probe_ids.append(other.probe_ids[row])
        self.asns.append(other.asns[row])
        self.continents.append(other.continents[row])
        self.target_ids.append(
            self._intern(self._target_index, self.targets, other.targets[other.target_ids[row]])
        )
        self.country_ids.append(
            self._intern(
                self._country_index, self.countries, other.countries[other.country_ids[row]]
            )
        )
        self.rcode_ids.append(
            self._intern(self._rcode_index, self.rcodes, other.rcodes[other.rcode_ids[row]])
        )
        self.chain_ids.append(
            self._intern(self._chain_index, self.chains, other.chains[other.chain_ids[row]])
        )
        for position in range(other.addr_offsets[row], other.addr_offsets[row + 1]):
            self.addr_values.append(other.addr_values[position])
        self.addr_offsets.append(len(self.addr_values))

    @classmethod
    def from_measurements(cls, measurements: Sequence) -> "DnsColumns":
        """Encode a measurement sequence as one columnar block."""
        columns = cls()
        for measurement in measurements:
            columns.append(measurement)
        return columns

    # ----- read back ----------------------------------------------------

    def measurement(self, row: int):
        """Reconstruct row ``row`` as a :class:`DnsMeasurement`."""
        record = _record_type()
        lo = self.addr_offsets[row]
        hi = self.addr_offsets[row + 1]
        return record(
            probe_id=self.probe_ids[row],
            timestamp=self.times[row],
            target=self.targets[self.target_ids[row]],
            probe_asn=ASN(self.asns[row]),
            continent=CONTINENTS[self.continents[row]],
            country=self.countries[self.country_ids[row]],
            rcode=self.rcodes[self.rcode_ids[row]],
            chain=self.chains[self.chain_ids[row]],
            addresses=tuple(
                IPv4Address(self.addr_values[position]) for position in range(lo, hi)
            ),
        )

    def iter_measurements(self, lo: int = 0, hi: Optional[int] = None) -> Iterator:
        """Yield reconstructed measurements for rows ``lo..hi``."""
        stop = len(self) if hi is None else hi
        for row in range(lo, stop):
            yield self.measurement(row)

    def addresses_of(self, row: int) -> tuple:
        """The packed address ints of one row."""
        return tuple(
            self.addr_values[self.addr_offsets[row] : self.addr_offsets[row + 1]]
        )

    def __len__(self) -> int:
        return len(self.times)

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the typed columns."""
        total = 0
        for name, _ in _ARRAY_FIELDS:
            column = getattr(self, name)
            total += len(column) * column.itemsize
        return total

    # ----- pickling (worker <-> coordinator exchange) -------------------

    def __getstate__(self) -> tuple:
        arrays = tuple(getattr(self, name) for name, _ in _ARRAY_FIELDS)
        return arrays, self.targets, self.countries, self.rcodes, self.chains

    def __setstate__(self, state: tuple) -> None:
        arrays, self.targets, self.countries, self.rcodes, self.chains = state
        for (name, _), column in zip(_ARRAY_FIELDS, arrays):
            setattr(self, name, column)
        # Rebuilt lazily, and only if this block is appended to again.
        self._target_index = None
        self._country_index = None
        self._rcode_index = None
        self._chain_index = None

    # ----- binary segment format ----------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the compact binary segment form.

        Layout: magic, a little-endian ``uint32`` header length, a JSON
        header (row count, byte order, intern tables, per-array
        typecode + count), then the raw array payloads concatenated in
        a fixed order.
        """
        header = {
            "rows": len(self),
            "byteorder": sys.byteorder,
            "tables": {
                "targets": self.targets,
                "countries": self.countries,
                "rcodes": self.rcodes,
                "chains": [list(chain) for chain in self.chains],
            },
            "arrays": [
                [name, typecode, len(getattr(self, name))]
                for name, typecode in _ARRAY_FIELDS
            ],
        }
        encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
        parts = [_MAGIC, _HEADER_LEN.pack(len(encoded)), encoded]
        for name, _ in _ARRAY_FIELDS:
            parts.append(getattr(self, name).tobytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "DnsColumns":
        """Deserialize a block written by :meth:`to_bytes`."""
        if not payload.startswith(_MAGIC):
            raise SegmentFormatError("bad segment magic")
        cursor = len(_MAGIC)
        try:
            (header_len,) = _HEADER_LEN.unpack_from(payload, cursor)
        except struct.error as exc:
            raise SegmentFormatError(f"truncated segment header: {exc}") from exc
        cursor += _HEADER_LEN.size
        if cursor + header_len > len(payload):
            raise SegmentFormatError(
                f"truncated segment header ({len(payload) - cursor} of "
                f"{header_len} header bytes present)"
            )
        try:
            header = json.loads(payload[cursor : cursor + header_len])
        except ValueError as exc:
            raise SegmentFormatError(f"bad segment header: {exc}") from exc
        cursor += header_len
        columns = cls.__new__(cls)
        columns.targets = list(header["tables"]["targets"])
        columns.countries = list(header["tables"]["countries"])
        columns.rcodes = list(header["tables"]["rcodes"])
        columns.chains = [tuple(chain) for chain in header["tables"]["chains"]]
        swap = header.get("byteorder", "little") != sys.byteorder
        for (name, typecode), (stored_name, stored_code, count) in zip(
            _ARRAY_FIELDS, header["arrays"]
        ):
            if stored_name != name or stored_code != typecode:
                raise SegmentFormatError(
                    f"unexpected column {stored_name}:{stored_code}"
                )
            column = array(typecode)
            nbytes = count * column.itemsize
            if cursor + nbytes > len(payload):
                raise SegmentFormatError(f"truncated column {name}")
            column.frombytes(payload[cursor : cursor + nbytes])
            if swap:
                column.byteswap()
            setattr(columns, name, column)
            cursor += nbytes
        if cursor != len(payload):
            raise SegmentFormatError(
                f"{len(payload) - cursor} trailing bytes after last column"
            )
        if len(columns.addr_offsets) != header["rows"] + 1:
            raise SegmentFormatError("offset column does not match row count")
        columns._target_index = None
        columns._country_index = None
        columns._rcode_index = None
        columns._chain_index = None
        return columns


class DnsSegment:
    """A sealed, immutable run of rows with a prunable summary.

    The summary (time bounds, unique address ints, size) stays resident
    even after the columns spill to disk, so windowed queries can skip
    a spilled segment without touching the filesystem.
    """

    __slots__ = (
        "segment_id",
        "start_row",
        "rows",
        "min_time",
        "max_time",
        "unique_values",
        "nbytes",
        "path",
        "_columns",
    )

    def __init__(self, columns: DnsColumns, segment_id: int, start_row: int) -> None:
        if not len(columns):
            raise ValueError("cannot seal an empty segment")
        self.segment_id = segment_id
        self.start_row = start_row
        self.rows = len(columns)
        self.min_time = columns.times[0]
        self.max_time = columns.times[-1]
        self.unique_values = frozenset(columns.addr_values)
        self.nbytes = columns.nbytes
        self.path = None
        self._columns: Optional[DnsColumns] = columns

    @property
    def resident(self) -> bool:
        """Whether the columns are currently held in memory."""
        return self._columns is not None

    def spill(self, path) -> int:
        """Write the columns to ``path`` atomically and drop them from memory.

        The payload lands in ``path.tmp`` first, is fsynced, then renamed
        over ``path`` — a crash mid-spill leaves either the old file or
        no file, never a torn ``RSEG1`` payload.
        """
        if self._columns is None:
            return 0
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(self._columns.to_bytes())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.path = path
        self._columns = None
        return self.nbytes

    def load(self) -> DnsColumns:
        """The segment's columns, read back from disk if spilled."""
        if self._columns is not None:
            return self._columns
        if self.path is None:
            raise SegmentFormatError(
                f"segment {self.segment_id} has neither columns nor a spill path"
            )
        try:
            payload = self.path.read_bytes()
        except FileNotFoundError as exc:
            raise SegmentFormatError(
                f"segment {self.segment_id} spill file is missing: {self.path}"
            ) from exc
        return DnsColumns.from_bytes(payload)
