"""Probe placement.

The paper uses two probe sets: ~800 probes worldwide and ~400 probes
inside the measured European eyeball ISP.  RIPE Atlas coverage is
notoriously Europe-heavy; :data:`ATLAS_CONTINENT_WEIGHTS` encodes that
skew (it is also why the paper does not study India/China further:
"the density of RIPE probes in these regions is low").

Placement is deterministic given a seed, so every analysis run sees the
same vantage points.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..dns.zone import AuthoritativeServer
from ..net.asys import ASN
from ..net.geo import Continent
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..net.locode import Location, LocodeDatabase
from .probe import AtlasProbe

__all__ = ["ATLAS_CONTINENT_WEIGHTS", "place_global_probes", "place_isp_probes"]

# Approximate share of RIPE Atlas probes per continent (2017).
ATLAS_CONTINENT_WEIGHTS: dict[Continent, float] = {
    Continent.EUROPE: 0.55,
    Continent.NORTH_AMERICA: 0.22,
    Continent.ASIA: 0.10,
    Continent.OCEANIA: 0.05,
    Continent.SOUTH_AMERICA: 0.04,
    Continent.AFRICA: 0.04,
}

# Synthetic probe address space (RFC 2544 benchmarking range).
_GLOBAL_PROBE_PREFIX = IPv4Prefix.parse("198.18.0.0/15")


def _eyeball_asn(rng: random.Random) -> ASN:
    """A synthetic eyeball-ISP ASN (private-use 64512-65000 range)."""
    return ASN(rng.randint(64520, 64999))


def place_global_probes(
    servers: Iterable[AuthoritativeServer],
    count: int = 800,
    locations: Optional[LocodeDatabase] = None,
    weights: Optional[dict[Continent, float]] = None,
    seed: int = 9299652,  # the RIPE Atlas measurement id
    first_probe_id: int = 1000,
) -> list[AtlasProbe]:
    """Place ``count`` probes worldwide with Atlas-like continent skew."""
    if count <= 0:
        raise ValueError("count must be positive")
    db = locations if locations is not None else LocodeDatabase.builtin()
    continent_weights = weights if weights is not None else ATLAS_CONTINENT_WEIGHTS
    rng = random.Random(seed)
    server_list = list(servers)

    cities_by_continent: dict[Continent, list[Location]] = {}
    for continent in continent_weights:
        cities = list(db.on_continent(continent))
        if not cities:
            raise ValueError(f"no locations available on {continent}")
        cities_by_continent[continent] = cities

    continents = list(continent_weights)
    weight_values = [continent_weights[c] for c in continents]
    probes = []
    for index in range(count):
        continent = rng.choices(continents, weights=weight_values, k=1)[0]
        city = rng.choice(cities_by_continent[continent])
        address = _GLOBAL_PROBE_PREFIX.host(index + 1)
        probes.append(
            AtlasProbe.create(
                probe_id=first_probe_id + index,
                address=address,
                asn=_eyeball_asn(rng),
                location=city,
                servers=server_list,
            )
        )
    return probes


def place_isp_probes(
    servers: Iterable[AuthoritativeServer],
    isp_asn: ASN,
    customer_prefix: IPv4Prefix,
    count: int = 400,
    country: str = "de",
    locations: Optional[LocodeDatabase] = None,
    seed: int = 929965200,
    first_probe_id: int = 20000,
) -> list[AtlasProbe]:
    """Place ``count`` probes inside the measured eyeball ISP.

    All probes share the ISP's AS and draw addresses from its customer
    prefix; they spread over the ISP's home-country metros.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if count >= customer_prefix.size - 1:
        raise ValueError("customer prefix too small for probe count")
    db = locations if locations is not None else LocodeDatabase.builtin()
    cities = list(db.in_country(country))
    if not cities:
        raise ValueError(f"no locations in country {country!r}")
    rng = random.Random(seed)
    server_list = list(servers)
    probes = []
    for index in range(count):
        probes.append(
            AtlasProbe.create(
                probe_id=first_probe_id + index,
                address=customer_prefix.host(index + 1),
                asn=isp_asn,
                location=rng.choice(cities),
                servers=server_list,
            )
        )
    return probes
