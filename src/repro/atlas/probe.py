"""RIPE Atlas probes.

A probe is a small measurement device in a volunteer's network: it has
a public address, lives in an AS, has a location, and resolves DNS via
a local recursive resolver (so each probe sees its own TTL-cached view
of the mapping chain — exactly the vantage-point diversity the paper's
methodology is built on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..dns.query import QueryContext, RCode
from ..dns.resolver import RecursiveResolver, ResolutionError
from ..dns.zone import AuthoritativeServer
from ..net.asys import ASN
from ..net.geo import Continent, Coordinates
from ..net.ipv4 import IPv4Address
from ..net.locode import Location
from .results import DnsMeasurement

__all__ = ["AtlasProbe"]


@dataclass
class AtlasProbe:
    """One probe: identity, placement and its local resolver."""

    probe_id: int
    address: IPv4Address
    asn: ASN
    location: Location
    resolver: RecursiveResolver

    @classmethod
    def create(
        cls,
        probe_id: int,
        address: IPv4Address,
        asn: ASN,
        location: Location,
        servers: Iterable[AuthoritativeServer],
        cache: bool = True,
    ) -> "AtlasProbe":
        """Build a probe with its own recursive resolver."""
        return cls(
            probe_id=probe_id,
            address=address,
            asn=asn,
            location=location,
            resolver=RecursiveResolver(servers, cache=cache),
        )

    @property
    def continent(self) -> Continent:
        """The continent the probe reports from."""
        return self.location.continent

    @property
    def country(self) -> str:
        """ISO country code of the probe's metro."""
        return self.location.country

    @property
    def coordinates(self) -> Coordinates:
        """The probe's location."""
        return self.location.coordinates

    def context(self, now: float) -> QueryContext:
        """The DNS query context this probe presents."""
        return QueryContext(
            client=self.address,
            coordinates=self.coordinates,
            continent=self.continent,
            country=self.country,
            now=now,
        )

    def measure_dns(self, target: str, now: float) -> DnsMeasurement:
        """Perform one DNS measurement, RIPE-Atlas style.

        Resolution failures are recorded as results with an error
        rcode, not raised — a probe in the field reports what it saw.
        """
        try:
            outcome = self.resolver.resolve(target, self.context(now))
        except ResolutionError as exc:
            outcome = exc
        return self.measurement_from(target, now, outcome)

    def measurement_from(self, target: str, now: float, outcome) -> DnsMeasurement:
        """Wrap a resolution outcome as the measurement record.

        ``outcome`` is either a completed
        :class:`~repro.dns.resolver.Resolution` or the
        :class:`~repro.dns.resolver.ResolutionError` the chase died
        with — the two shapes :func:`~repro.dns.resolver.resolve_bulk`
        returns, so bulk campaign ticks produce records identical to
        the per-probe path.
        """
        if isinstance(outcome, ResolutionError):
            rcode = RCode.SERVFAIL.name
            chain: tuple = (target,)
            addresses: tuple = ()
        else:
            rcode = outcome.rcode.name
            chain = outcome.chain_names
            addresses = outcome.addresses
        return DnsMeasurement(
            probe_id=self.probe_id,
            timestamp=now,
            target=target,
            probe_asn=self.asn,
            continent=self.continent,
            country=self.country,
            rcode=rcode,
            chain=chain,
            addresses=addresses,
        )

    def __str__(self) -> str:
        return f"probe#{self.probe_id} ({self.location.city}, {self.asn})"
