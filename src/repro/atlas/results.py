"""RIPE-Atlas-style measurement result records and their store.

The public dataset behind the paper (RIPE Atlas measurement #9299652)
delivers, per probe and tick, the DNS answer seen by the probe's local
resolver.  The reproduction's records carry the same analytical payload:
who measured (probe, AS, continent), when, what the CNAME chain was and
which addresses came back.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..net.asys import ASN
from ..net.geo import Continent
from ..net.ipv4 import IPv4Address

__all__ = ["DnsMeasurement", "TracerouteHop", "TracerouteMeasurement", "MeasurementStore"]


@dataclass(frozen=True)
class DnsMeasurement:
    """One DNS measurement: a probe's resolution at one tick."""

    probe_id: int
    timestamp: float
    target: str
    probe_asn: ASN
    continent: Continent
    country: str
    rcode: str
    chain: tuple[str, ...]  # names visited, query name first
    addresses: tuple[IPv4Address, ...]

    @property
    def final_name(self) -> str:
        """The terminal name of the CNAME chain."""
        return self.chain[-1] if self.chain else self.target

    @property
    def succeeded(self) -> bool:
        """Whether addresses were obtained."""
        return self.rcode == "NOERROR" and bool(self.addresses)


@dataclass(frozen=True)
class TracerouteHop:
    """One traceroute hop."""

    ttl: int
    address: IPv4Address
    asn: Optional[ASN]
    rtt_ms: float


@dataclass(frozen=True)
class TracerouteMeasurement:
    """One traceroute from a probe to a cache address."""

    probe_id: int
    timestamp: float
    destination: IPv4Address
    hops: tuple[TracerouteHop, ...]

    @property
    def reached(self) -> bool:
        """Whether the destination answered."""
        return bool(self.hops) and self.hops[-1].address == self.destination

    @property
    def as_path(self) -> tuple[ASN, ...]:
        """The AS-level path (consecutive duplicates collapsed)."""
        path: list[ASN] = []
        for hop in self.hops:
            if hop.asn is not None and (not path or path[-1] != hop.asn):
                path.append(hop.asn)
        return tuple(path)


class MeasurementStore:
    """An append-only, time-ordered store of measurement records."""

    def __init__(self) -> None:
        self._dns: list[DnsMeasurement] = []
        self._dns_times: list[float] = []
        self._traceroutes: list[TracerouteMeasurement] = []
        self._unique_addresses: set[IPv4Address] = set()

    def add_dns(self, measurement: DnsMeasurement) -> None:
        """Record a DNS measurement (must be appended in time order)."""
        if self._dns_times and measurement.timestamp < self._dns_times[-1]:
            raise ValueError("measurements must be appended in time order")
        self._dns.append(measurement)
        self._dns_times.append(measurement.timestamp)
        self._unique_addresses.update(measurement.addresses)

    def add_traceroute(self, measurement: TracerouteMeasurement) -> None:
        """Record a traceroute measurement."""
        self._traceroutes.append(measurement)

    @property
    def dns(self) -> tuple[DnsMeasurement, ...]:
        """All DNS measurements, oldest first."""
        return tuple(self._dns)

    @property
    def traceroutes(self) -> tuple[TracerouteMeasurement, ...]:
        """All traceroute measurements."""
        return tuple(self._traceroutes)

    def dns_between(self, start: float, end: float) -> Iterator[DnsMeasurement]:
        """DNS measurements with ``start <= timestamp < end``."""
        lo = bisect.bisect_left(self._dns_times, start)
        hi = bisect.bisect_left(self._dns_times, end)
        return iter(self._dns[lo:hi])

    def dns_where(
        self, predicate: Callable[[DnsMeasurement], bool]
    ) -> Iterator[DnsMeasurement]:
        """DNS measurements satisfying ``predicate``."""
        return (m for m in self._dns if predicate(m))

    def unique_addresses(self) -> set[IPv4Address]:
        """Every cache address observed across all DNS measurements.

        Maintained incrementally in :meth:`add_dns` — the traceroute
        campaign asks for this every sweep, and rescanning the full DNS
        history each hour dominated large-run profiles.  Returns a copy
        so callers cannot mutate the internal set.
        """
        return set(self._unique_addresses)

    def __len__(self) -> int:
        return len(self._dns) + len(self._traceroutes)
