"""RIPE-Atlas-style measurement result records and their store.

The public dataset behind the paper (RIPE Atlas measurement #9299652)
delivers, per probe and tick, the DNS answer seen by the probe's local
resolver.  The reproduction's records carry the same analytical payload:
who measured (probe, AS, continent), when, what the CNAME chain was and
which addresses came back.

:class:`MeasurementStore` keeps DNS history in columnar segments (see
:mod:`repro.atlas.columnar`): appends go into an open typed-column
block that is sealed into an immutable :class:`~repro.atlas.columnar.
DnsSegment` every ``segment_rows`` rows, and sealed segments spill to a
compact binary file under a run directory once the in-memory budget is
exceeded.  Per-segment min/max-time summaries let windowed queries
prune whole segments; ``store.dns`` stays available as a zero-copy
sequence view that reconstructs records on demand.
"""

from __future__ import annotations

import bisect
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Tuple, Union

from ..net.asys import ASN
from ..net.geo import Continent
from ..net.ipv4 import IPv4Address
from ..obs import get_registry
from .columnar import DnsColumns, DnsSegment

__all__ = [
    "DnsMeasurement",
    "TracerouteHop",
    "TracerouteMeasurement",
    "MeasurementStore",
    "DnsSequenceView",
    "ListView",
]


@dataclass(frozen=True)
class DnsMeasurement:
    """One DNS measurement: a probe's resolution at one tick."""

    probe_id: int
    timestamp: float
    target: str
    probe_asn: ASN
    continent: Continent
    country: str
    rcode: str
    chain: tuple[str, ...]  # names visited, query name first
    addresses: tuple[IPv4Address, ...]

    @property
    def final_name(self) -> str:
        """The terminal name of the CNAME chain."""
        return self.chain[-1] if self.chain else self.target

    @property
    def succeeded(self) -> bool:
        """Whether addresses were obtained."""
        return self.rcode == "NOERROR" and bool(self.addresses)


@dataclass(frozen=True)
class TracerouteHop:
    """One traceroute hop."""

    ttl: int
    address: IPv4Address
    asn: Optional[ASN]
    rtt_ms: float


@dataclass(frozen=True)
class TracerouteMeasurement:
    """One traceroute from a probe to a cache address."""

    probe_id: int
    timestamp: float
    destination: IPv4Address
    hops: tuple[TracerouteHop, ...]

    @property
    def reached(self) -> bool:
        """Whether the destination answered."""
        return bool(self.hops) and self.hops[-1].address == self.destination

    @property
    def as_path(self) -> tuple[ASN, ...]:
        """The AS-level path (consecutive duplicates collapsed)."""
        path: list[ASN] = []
        for hop in self.hops:
            if hop.asn is not None and (not path or path[-1] != hop.asn):
                path.append(hop.asn)
        return tuple(path)


class _SequenceViewMixin:
    """Element-wise equality and representation shared by the views."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Sequence, _SequenceViewMixin)):
            return NotImplemented
        if len(self) != len(other):  # type: ignore[arg-type]
            return False
        return all(a == b for a, b in zip(iter(self), iter(other)))  # type: ignore[call-overload]

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # views are mutable windows onto a growing store

    def __repr__(self) -> str:
        return f"<{type(self).__name__} of {len(self)} records>"  # type: ignore[arg-type]


class DnsSequenceView(_SequenceViewMixin, Sequence):
    """A zero-copy, read-only sequence view over a store's DNS history.

    Unlike the old ``tuple(self._dns)`` property this never copies the
    history; records are reconstructed from the columnar segments on
    demand.  Iteration decodes segment by segment (one disk read per
    spilled segment), so full scans stay O(n) even when most of the
    history lives on disk.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "MeasurementStore") -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.dns_count

    def __iter__(self) -> Iterator[DnsMeasurement]:
        return self._store.iter_dns()

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[DnsMeasurement, list]:
        count = self._store.dns_count
        if isinstance(index, slice):
            return [self._store._dns_at(i) for i in range(*index.indices(count))]
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError("DNS measurement index out of range")
        return self._store._dns_at(index)


class ListView(_SequenceViewMixin, Sequence):
    """A zero-copy, read-only view over an internal list."""

    __slots__ = ("_items",)

    def __init__(self, items: list) -> None:
        self._items = items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._items[index]
        return self._items[index]


class MeasurementStore:
    """An append-only, time-ordered store of measurement records.

    DNS history is columnar and segmented: ``segment_rows`` rows per
    sealed segment, with sealed segments spilling to ``spill_dir`` (a
    temporary run directory if none is given) once their resident bytes
    exceed ``memory_budget_bytes``.  ``name`` labels the store's
    telemetry series and spill files.
    """

    #: How many spilled segments' columns are kept decoded at once.
    LOAD_CACHE_SEGMENTS = 2

    def __init__(
        self,
        segment_rows: int = 8192,
        memory_budget_bytes: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        name: str = "store",
    ) -> None:
        if segment_rows < 1:
            raise ValueError("segment_rows must be >= 1")
        if memory_budget_bytes is not None and memory_budget_bytes < 0:
            raise ValueError("memory_budget_bytes must be >= 0")
        self.name = name
        self._segment_rows = segment_rows
        self._memory_budget_bytes = memory_budget_bytes
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._segments: list[DnsSegment] = []
        self._segment_starts: list[int] = []
        self._open = DnsColumns()
        self._dns_count = 0
        self._last_time: Optional[float] = None
        self._sealed_resident_bytes = 0
        self._spill_cursor = 0
        self._load_cache: dict[int, DnsColumns] = {}
        self._traceroutes: list[TracerouteMeasurement] = []
        self._unique_values: set[int] = set()
        self._unique_frozen: Optional[frozenset] = None
        self._dns_view = DnsSequenceView(self)
        self._traceroute_view = ListView(self._traceroutes)
        registry = get_registry()
        labels = (self.name,)
        self._m_sealed = registry.counter(
            "store_segments_sealed_total",
            "Columnar segments sealed, by store",
            ("store",),
        ).labels(*labels)
        self._m_spilled = registry.counter(
            "store_segments_spilled_total",
            "Sealed segments spilled to disk, by store",
            ("store",),
        ).labels(*labels)
        self._m_spilled_bytes = registry.counter(
            "store_spilled_bytes_total",
            "Column bytes written to spill files, by store",
            ("store",),
        ).labels(*labels)
        self._m_reloads = registry.counter(
            "store_segment_reloads_total",
            "Spilled segments decoded back from disk, by store",
            ("store",),
        ).labels(*labels)
        self._m_resident = registry.gauge(
            "store_resident_bytes",
            "Resident column bytes (sealed + open), by store",
            ("store",),
        ).labels(*labels)

    # ----- append paths -------------------------------------------------

    def add_dns(self, measurement: DnsMeasurement) -> None:
        """Record a DNS measurement (must be appended in time order)."""
        timestamp = measurement.timestamp
        if self._last_time is not None and timestamp < self._last_time:
            raise ValueError("measurements must be appended in time order")
        self._open.append(measurement)
        self._last_time = timestamp
        self._dns_count += 1
        if measurement.addresses:
            before = len(self._unique_values)
            for address in measurement.addresses:
                self._unique_values.add(address.value)
            if len(self._unique_values) != before:
                self._unique_frozen = None
        if len(self._open) >= self._segment_rows:
            self._seal_open()

    def add_dns_row(self, columns: DnsColumns, row: int) -> None:
        """Record one columnar row directly (no object reconstruction).

        The sharded coordinator absorbs worker measurement slices
        through this: rows travel between processes as typed columns
        and land in the store column-to-column.
        """
        timestamp = columns.times[row]
        if self._last_time is not None and timestamp < self._last_time:
            raise ValueError("measurements must be appended in time order")
        self._open.append_row_from(columns, row)
        self._last_time = timestamp
        self._dns_count += 1
        before = len(self._unique_values)
        for position in range(columns.addr_offsets[row], columns.addr_offsets[row + 1]):
            self._unique_values.add(columns.addr_values[position])
        if len(self._unique_values) != before:
            self._unique_frozen = None
        if len(self._open) >= self._segment_rows:
            self._seal_open()

    def add_traceroute(self, measurement: TracerouteMeasurement) -> None:
        """Record a traceroute measurement (must be appended in time order).

        The same monotonicity rule as :meth:`add_dns` (equal timestamps
        are fine — a sweep fires many traceroutes at one tick), so
        windowed traceroute queries can rely on time order.
        """
        if (
            self._traceroutes
            and measurement.timestamp < self._traceroutes[-1].timestamp
        ):
            raise ValueError("traceroutes must be appended in time order")
        self._traceroutes.append(measurement)

    # ----- segment management -------------------------------------------

    def _seal_open(self) -> None:
        segment = DnsSegment(
            self._open,
            segment_id=len(self._segments),
            start_row=self._dns_count - len(self._open),
        )
        self._segments.append(segment)
        self._segment_starts.append(segment.start_row)
        self._open = DnsColumns()
        self._sealed_resident_bytes += segment.nbytes
        self._m_sealed.inc()
        self._enforce_budget()
        self._m_resident.set(self.resident_bytes)

    def _enforce_budget(self) -> None:
        if self._memory_budget_bytes is None:
            return
        while (
            self._sealed_resident_bytes > self._memory_budget_bytes
            and self._spill_cursor < len(self._segments)
        ):
            segment = self._segments[self._spill_cursor]
            self._spill_cursor += 1
            if not segment.resident:
                continue
            freed = segment.spill(self._segment_path(segment))
            self._sealed_resident_bytes -= freed
            self._m_spilled.inc()
            self._m_spilled_bytes.inc(freed)

    def _segment_path(self, segment: DnsSegment) -> Path:
        if self._spill_dir is None:
            if self._tmpdir is None:
                self._tmpdir = tempfile.TemporaryDirectory(
                    prefix=f"repro-store-{self.name}-"
                )
            self._spill_dir = Path(self._tmpdir.name)
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        return self._spill_dir / f"{self.name}-{segment.segment_id:06d}.seg"

    def _columns_of(self, segment: DnsSegment) -> DnsColumns:
        if segment.resident:
            return segment.load()
        cached = self._load_cache.get(segment.segment_id)
        if cached is not None:
            return cached
        columns = segment.load()
        self._m_reloads.inc()
        self._load_cache[segment.segment_id] = columns
        while len(self._load_cache) > self.LOAD_CACHE_SEGMENTS:
            self._load_cache.pop(next(iter(self._load_cache)))
        return columns

    def dns_segments(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Iterator[Tuple[DnsColumns, int, int]]:
        """Stream ``(columns, lo, hi)`` scan ranges for a time window.

        Segments wholly outside ``start <= t < end`` are pruned via
        their resident summaries without touching their columns (or the
        disk, for spilled segments); boundary segments are narrowed by
        bisection on the timestamp column.  This is the primitive the
        windowed analysis aggregations stream over.
        """
        blocks: list = list(self._segments)
        if len(self._open):
            blocks.append(None)  # sentinel for the open block
        for block in blocks:
            if block is None:
                columns = self._open
                min_time, max_time = columns.times[0], columns.times[-1]
            else:
                if not block.rows:
                    continue
                min_time, max_time = block.min_time, block.max_time
                columns = None
            if start is not None and max_time < start:
                continue
            if end is not None and min_time >= end:
                break  # segments are time-ordered: nothing later matches
            if columns is None:
                columns = self._columns_of(block)
            rows = len(columns)
            lo = 0
            if start is not None and min_time < start:
                lo = bisect.bisect_left(columns.times, start)
            hi = rows
            if end is not None and max_time >= end:
                hi = bisect.bisect_left(columns.times, end)
            if lo < hi:
                yield columns, lo, hi

    def iter_dns(self) -> Iterator[DnsMeasurement]:
        """All DNS measurements, oldest first, decoded segment-wise."""
        for columns, lo, hi in self.dns_segments():
            for measurement in columns.iter_measurements(lo, hi):
                yield measurement

    def _dns_at(self, index: int) -> DnsMeasurement:
        """Random access for the sequence view (index already validated)."""
        open_start = self._dns_count - len(self._open)
        if index >= open_start:
            return self._open.measurement(index - open_start)
        position = bisect.bisect_right(self._segment_starts, index) - 1
        segment = self._segments[position]
        return self._columns_of(segment).measurement(index - segment.start_row)

    # ----- read API -----------------------------------------------------

    @property
    def dns(self) -> DnsSequenceView:
        """All DNS measurements, oldest first (zero-copy view)."""
        return self._dns_view

    @property
    def traceroutes(self) -> ListView:
        """All traceroute measurements (zero-copy view)."""
        return self._traceroute_view

    @property
    def dns_count(self) -> int:
        """Number of DNS measurements recorded."""
        return self._dns_count

    @property
    def traceroute_count(self) -> int:
        """Number of traceroute measurements recorded."""
        return len(self._traceroutes)

    @property
    def segment_count(self) -> int:
        """Sealed segments so far (excluding the open block)."""
        return len(self._segments)

    @property
    def spilled_segment_count(self) -> int:
        """Sealed segments currently spilled to disk."""
        return sum(1 for segment in self._segments if not segment.resident)

    @property
    def resident_bytes(self) -> int:
        """Resident column bytes: sealed-resident plus the open block.

        The transient decode cache (at most ``LOAD_CACHE_SEGMENTS``
        segments during queries over spilled history) is extra.
        """
        return self._sealed_resident_bytes + self._open.nbytes

    @property
    def spill_dir(self) -> Optional[Path]:
        """Where spilled segments live (``None`` until the first spill
        when no directory was configured)."""
        return self._spill_dir

    def dns_between(self, start: float, end: float) -> Iterator[DnsMeasurement]:
        """DNS measurements with ``start <= timestamp < end``."""
        for columns, lo, hi in self.dns_segments(start, end):
            for measurement in columns.iter_measurements(lo, hi):
                yield measurement

    def dns_where(
        self, predicate: Callable[[DnsMeasurement], bool]
    ) -> Iterator[DnsMeasurement]:
        """DNS measurements satisfying ``predicate``."""
        return (m for m in self.iter_dns() if predicate(m))

    def unique_addresses(self) -> frozenset:
        """Every cache address observed across all DNS measurements.

        Maintained incrementally on the append paths — the traceroute
        campaign asks for this every sweep, and rescanning the full DNS
        history each hour dominated large-run profiles.  Returns an
        immutable (frozen) view, cached until a new address appears, so
        callers can neither mutate store state nor pay a copy.
        """
        if self._unique_frozen is None:
            self._unique_frozen = frozenset(
                IPv4Address(value) for value in self._unique_values
            )
        return self._unique_frozen

    def unique_address_values(self) -> frozenset:
        """The unique addresses as packed 32-bit ints (no objects)."""
        return frozenset(self._unique_values)

    # ----- checkpoint support -------------------------------------------

    def dump_state(self) -> dict:
        """A picklable snapshot of the full store contents.

        Sealed segments travel as their binary ``RSEG1`` payloads
        (spilled segments are read back from disk verbatim), the open
        block as one more payload, plus the counters and the unique-IP
        set.  :meth:`restore_state` on a fresh store reproduces the
        exact segment structure, so a resumed run seals/spills at the
        same row boundaries the uninterrupted run would.
        """
        segments = []
        for segment in self._segments:
            if segment.resident:
                payload = segment.load().to_bytes()
            else:
                payload = segment.path.read_bytes()
            segments.append(
                {
                    "segment_id": segment.segment_id,
                    "start_row": segment.start_row,
                    "payload": payload,
                }
            )
        return {
            "name": self.name,
            "dns_count": self._dns_count,
            "last_time": self._last_time,
            "segments": segments,
            "open": self._open.to_bytes(),
            "traceroutes": list(self._traceroutes),
            "unique_values": sorted(self._unique_values),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the contents dumped by :meth:`dump_state`.

        Only valid on an empty store (a freshly constructed scenario):
        segment ids, start rows and the open block are restored exactly,
        then the memory budget is re-enforced so oversized restored
        history spills straight back to disk.
        """
        if self._dns_count or self._traceroutes or len(self._open):
            raise ValueError("restore_state requires an empty store")
        for entry in state["segments"]:
            columns = DnsColumns.from_bytes(entry["payload"])
            segment = DnsSegment(
                columns,
                segment_id=entry["segment_id"],
                start_row=entry["start_row"],
            )
            self._segments.append(segment)
            self._segment_starts.append(segment.start_row)
            self._sealed_resident_bytes += segment.nbytes
        self._open = DnsColumns.from_bytes(state["open"])
        self._dns_count = state["dns_count"]
        self._last_time = state["last_time"]
        self._traceroutes.extend(state["traceroutes"])
        self._unique_values = set(state["unique_values"])
        self._unique_frozen = None
        self._enforce_budget()
        self._m_resident.set(self.resident_bytes)

    def segment_summaries(self) -> list[dict]:
        """Resident per-segment summaries (for checkpoint verification)."""
        return [
            {
                "segment_id": segment.segment_id,
                "start_row": segment.start_row,
                "rows": segment.rows,
                "min_time": segment.min_time,
                "max_time": segment.max_time,
                "nbytes": segment.nbytes,
            }
            for segment in self._segments
        ]

    def __len__(self) -> int:
        return self._dns_count + len(self._traceroutes)
