"""Simulated traceroute.

The paper ran hourly traceroutes to every server IP identified via DNS
(Section 3.2) to corroborate cache locations and paths.  The simulated
tracer builds an AS-level path — probe AS, optional transit hops, the
destination's AS — with distance-derived RTTs, enough for the analysis
layer to recover AS paths and rough geography.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.asys import ASN, ASRegistry
from ..net.geo import Coordinates, great_circle_km
from ..net.ipv4 import IPv4Address, IPv4Prefix
from .probe import AtlasProbe
from .results import TracerouteHop, TracerouteMeasurement

__all__ = ["SimulatedTracer", "TRANSIT_HOP_PREFIX"]

# Synthetic addresses for anonymous transit routers (TEST-NET-3).
TRANSIT_HOP_PREFIX = IPv4Prefix.parse("203.0.113.0/24")

_SPEED_MS_PER_KM = 0.015  # ~2/3 c in fibre, both directions
_BASE_RTT_MS = 1.2


@dataclass
class SimulatedTracer:
    """Produces traceroute measurements over a registry-backed topology.

    ``server_coordinates`` maps known cache addresses to their metro, so
    RTTs reflect real distances; unknown destinations get a default
    1500 km path.  ``transit_asn`` attributes mid-path hops (a single
    synthetic transit AS keeps AS-path analysis meaningful without a
    full inter-domain topology).
    """

    registry: ASRegistry
    server_coordinates: dict[IPv4Address, Coordinates]
    transit_asn: Optional[ASN] = None

    def trace(
        self, probe: AtlasProbe, destination: IPv4Address, now: float
    ) -> TracerouteMeasurement:
        """One traceroute from ``probe`` to ``destination``."""
        destination_asn = self.registry.asn_for(destination)
        coords = self.server_coordinates.get(destination)
        distance_km = (
            great_circle_km(probe.coordinates, coords) if coords is not None else 1500.0
        )
        path_rtt = _BASE_RTT_MS + distance_km * _SPEED_MS_PER_KM

        hops: list[TracerouteHop] = []
        # Hop 1: the probe's home gateway inside its own AS.
        hops.append(
            TracerouteHop(
                ttl=1,
                address=probe.address.shifted(1),
                asn=probe.asn,
                rtt_ms=round(_BASE_RTT_MS, 3),
            )
        )
        # Mid-path: one transit hop per ~2000 km, capped at 4.
        transit_hops = min(4, max(1, int(distance_km // 2000) + 1))
        for index in range(transit_hops):
            fraction = (index + 1) / (transit_hops + 1)
            hops.append(
                TracerouteHop(
                    ttl=2 + index,
                    address=TRANSIT_HOP_PREFIX.host(
                        1 + (destination.value + index) % 250
                    ),
                    asn=self.transit_asn,
                    rtt_ms=round(_BASE_RTT_MS + path_rtt * fraction, 3),
                )
            )
        # Final hop: the destination itself.
        hops.append(
            TracerouteHop(
                ttl=2 + transit_hops,
                address=destination,
                asn=destination_asn,
                rtt_ms=round(path_rtt, 3),
            )
        )
        return TracerouteMeasurement(
            probe_id=probe.probe_id,
            timestamp=now,
            destination=destination,
            hops=tuple(hops),
        )
