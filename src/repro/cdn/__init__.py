"""Generic CDN building blocks: caches, servers, edge sites, deployments
and builders for the third-party fleets of the Apple Meta-CDN."""

from .cache import CacheStats, ContentCache
from .deployment import CdnDeployment, ExposureController, PlacedServer
from .loadmodel import DownloadFluidModel, FluidStats
from .server import (
    CacheServer,
    SecondaryFunction,
    ServerFunction,
    ServerRole,
)
from .site import EdgeSite, Origin, ServedRequest
from .thirdparty import (
    AKAMAI_PLAN,
    LEVEL3_PLAN,
    LIMELIGHT_PLAN,
    ThirdPartyPlan,
    build_third_party,
)

__all__ = [
    "ContentCache",
    "CacheStats",
    "CacheServer",
    "ServerFunction",
    "SecondaryFunction",
    "ServerRole",
    "EdgeSite",
    "Origin",
    "ServedRequest",
    "CdnDeployment",
    "DownloadFluidModel",
    "FluidStats",
    "ExposureController",
    "PlacedServer",
    "ThirdPartyPlan",
    "build_third_party",
    "AKAMAI_PLAN",
    "LIMELIGHT_PLAN",
    "LEVEL3_PLAN",
]
