"""Content caches with LRU eviction and hit statistics.

Every cache node in the reproduction (Apple edge-bx/edge-lx, third-party
delivery servers) holds an LRU-evicted content store sized in bytes.
Bodies are never materialised: an object is a key plus a size, which is
all the Section 3.3 hierarchy analysis and the traffic accounting need.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ContentCache", "CacheStats"]


@dataclass
class CacheStats:
    """Cumulative hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_served: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups; 0.0 before any lookup."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class ContentCache:
    """A byte-capacity LRU cache of ``key -> object size``.

    >>> cache = ContentCache(capacity_bytes=100)
    >>> cache.admit("ios11.ipsw", 60)
    >>> cache.lookup("ios11.ipsw")
    60
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._objects: "OrderedDict[str, tuple[int, Any]]" = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored."""
        return self._used

    @property
    def object_count(self) -> int:
        """Number of stored objects."""
        return len(self._objects)

    def lookup(self, key: str) -> int | None:
        """Object size if cached (counts a hit), else ``None`` (a miss)."""
        entry = self._objects.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        size, _ = entry
        self._objects.move_to_end(key)
        self.stats.hits += 1
        self.stats.bytes_served += size
        return size

    def metadata(self, key: str) -> Optional[Any]:
        """The metadata stored with ``key`` (no stats/LRU effect).

        Edge caches store the upstream response headers here so a hit
        can replay them — the mechanism that lets the Section 3.3
        analysis see the full Via chain on cached responses.
        """
        entry = self._objects.get(key)
        return entry[1] if entry is not None else None

    def contains(self, key: str) -> bool:
        """Presence check without touching LRU order or stats."""
        return key in self._objects

    def admit(self, key: str, size: int, metadata: Any = None) -> None:
        """Store an object, evicting LRU entries to make room.

        Objects larger than the whole cache are refused silently (they
        stream through without being cached, like any proxy would).
        """
        if size < 0:
            raise ValueError(f"negative object size: {size}")
        if size > self.capacity_bytes:
            return
        if key in self._objects:
            old_size, _ = self._objects.pop(key)
            self._used -= old_size
        while self._used + size > self.capacity_bytes:
            _, (evicted_size, _) = self._objects.popitem(last=False)
            self._used -= evicted_size
            self.stats.evictions += 1
        self._objects[key] = (size, metadata)
        self._used += size

    def evict(self, key: str) -> bool:
        """Explicitly drop ``key``; returns whether it was present."""
        entry = self._objects.pop(key, None)
        if entry is None:
            return False
        self._used -= entry[0]
        return True

    def clear(self) -> None:
        """Drop everything (stats are kept)."""
        self._objects.clear()
        self._used = 0
