"""CDN deployments: server fleets, regional pools and load-driven exposure.

A :class:`CdnDeployment` is one operator's delivery estate as seen from
DNS: a set of delivery addresses grouped by mapping region, of which a
load-dependent subset is *exposed* (handed out in answers) at any time.

The exposure mechanism reproduces the paper's central observation about
unique-IP counts (Figures 4 and 5): when the iOS 11 flash crowd hit,
Limelight and Akamai raised the number of distinct cache IPs visible to
probes — Akamai taking about six hours to reach its load-dependent peak
— while Apple's own IP count stayed flat.  :class:`ExposureController`
models that as a first-order lag from offered demand to active servers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..dns.query import QueryContext
from ..net.asys import ASN
from ..net.geo import MappingRegion, great_circle_km
from ..net.ipv4 import IPv4Address
from ..net.locode import Location
from ..obs import get_registry
from .server import CacheServer

__all__ = ["ExposureController", "PlacedServer", "CdnDeployment"]


@dataclass
class ExposureController:
    """First-order-lag mapping from offered demand to active server count.

    ``tau_seconds`` is the ramp time constant (the paper observed ~6 h
    for Akamai's EU expansion); ``release_tau_seconds`` governs how fast
    capacity is withdrawn once demand falls — operators release
    conservatively, which is why Limelight kept the AS-D caches in
    rotation for about three days (Section 5.4); ``headroom`` is the
    over-provisioning factor kept above smoothed demand;
    ``min_servers`` is the baseline kept active regardless of load.
    """

    per_server_gbps: float
    min_servers: int = 1
    headroom: float = 1.3
    tau_seconds: float = 3600.0
    release_tau_seconds: Optional[float] = None  # defaults to tau_seconds

    def __post_init__(self) -> None:
        if self.per_server_gbps <= 0:
            raise ValueError("per_server_gbps must be positive")
        if self.min_servers < 0:
            raise ValueError("min_servers must be >= 0")
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")
        if self.tau_seconds <= 0:
            raise ValueError("tau_seconds must be positive")
        if self.release_tau_seconds is not None and self.release_tau_seconds <= 0:
            raise ValueError("release_tau_seconds must be positive")
        self._smoothed_gbps = 0.0
        self._last_update: Optional[float] = None

    def offer(self, now: float, demand_gbps: float) -> None:
        """Feed the demand observed at ``now`` into the lag filter."""
        if demand_gbps < 0:
            raise ValueError("demand cannot be negative")
        if self._last_update is None:
            self._smoothed_gbps = demand_gbps if self.tau_seconds == 0 else 0.0
        else:
            dt = max(0.0, now - self._last_update)
            if demand_gbps >= self._smoothed_gbps:
                tau = self.tau_seconds
            else:
                tau = (
                    self.release_tau_seconds
                    if self.release_tau_seconds is not None
                    else self.tau_seconds
                )
            alpha = 1.0 - math.exp(-dt / tau)
            self._smoothed_gbps += (demand_gbps - self._smoothed_gbps) * alpha
        self._last_update = now

    @property
    def smoothed_gbps(self) -> float:
        """The lag-filtered demand estimate."""
        return self._smoothed_gbps

    def active_count(self, pool_size: int) -> int:
        """How many of ``pool_size`` servers to expose right now."""
        wanted = math.ceil(self._smoothed_gbps * self.headroom / self.per_server_gbps)
        return max(min(self.min_servers, pool_size), min(wanted, pool_size))

    def reset(self) -> None:
        """Forget all demand history."""
        self._smoothed_gbps = 0.0
        self._last_update = None


@dataclass(frozen=True)
class PlacedServer:
    """A delivery server plus the metro it is deployed in."""

    server: CacheServer
    location: Location


class CdnDeployment:
    """One CDN operator's delivery fleet, grouped by mapping region.

    ``exposure_factory`` builds a per-region :class:`ExposureController`;
    passing ``None`` makes the whole fleet always exposed, which models
    Apple's own CDN (its observed IP count did not react to the event).
    """

    def __init__(
        self,
        operator: str,
        asn: ASN,
        exposure_factory: Optional[Callable[[], ExposureController]] = None,
        pool_limit: int = 0,
    ) -> None:
        self.operator = operator
        self.asn = asn
        self._servers: list[PlacedServer] = []
        self._by_address: dict[IPv4Address, PlacedServer] = {}
        self._by_region: dict[MappingRegion, list[PlacedServer]] = {
            region: [] for region in MappingRegion
        }
        self._exposure_factory = exposure_factory
        self._exposure: dict[MappingRegion, ExposureController] = {}
        self.pool_limit = pool_limit  # max addresses per answer pool; 0 = all
        # Distance rankings are immutable per (region, client metro,
        # active count); campaigns re-query from fixed probe locations
        # thousands of times, so this memo is the resolution hot path.
        self._ranking_memo: dict[tuple, list[IPv4Address]] = {}
        # Flat third-party delivery telemetry (same families the Apple
        # hierarchy uses, with layer="edge").
        registry = get_registry()
        self._m_requests = registry.counter(
            "http_requests_total",
            "HTTP requests served by CDN delivery paths",
            ("operator",),
        ).labels(operator)
        lookups = registry.counter(
            "cache_requests_total",
            "Cache lookups through the delivery hierarchy",
            ("operator", "layer", "outcome"),
        )
        self._m_hit = lookups.labels(operator, "edge", "hit")
        self._m_miss = lookups.labels(operator, "edge", "miss")

    def add_server(self, server: CacheServer, location: Location) -> PlacedServer:
        """Deploy ``server`` at ``location``; returns the placement."""
        placed = PlacedServer(server, location)
        self._servers.append(placed)
        self._by_address[server.address] = placed
        region = MappingRegion.for_continent(location.continent)
        self._by_region[region].append(placed)
        # Deterministic exposure order regardless of insertion order.
        self._by_region[region].sort(key=lambda p: p.server.hostname)
        self._ranking_memo.clear()
        return placed

    def add_servers(self, placements: Iterable[tuple[CacheServer, Location]]) -> None:
        """Deploy several servers at once."""
        for server, location in placements:
            self.add_server(server, location)

    @property
    def servers(self) -> tuple[PlacedServer, ...]:
        """Every placed server."""
        return tuple(self._servers)

    def servers_in_region(self, region: MappingRegion) -> tuple[PlacedServer, ...]:
        """All placements whose metro maps to ``region``."""
        return tuple(self._by_region[region])

    def server_at(self, address: IPv4Address) -> Optional[CacheServer]:
        """The server owning ``address``, if any."""
        placed = self._by_address.get(address)
        return placed.server if placed is not None else None

    def placement_at(self, address: IPv4Address) -> Optional[PlacedServer]:
        """The placement (server + metro) owning ``address``, if any."""
        return self._by_address.get(address)

    def serve(self, address: IPv4Address, request: "HttpRequest", size: int) -> "HttpResponse":
        """Serve an HTTP request at one of this fleet's delivery servers.

        Third-party fleets are flat (no vip/lx hierarchy): the cache at
        ``address`` answers directly, recording a single Via hop.  This
        is what the AWS-VM availability checks exercise (Section 3.2).
        """
        from ..http.headers import CacheStatus, record_cache_hop
        from ..http.messages import HttpResponse

        placed = self._by_address.get(address)
        if placed is None:
            raise KeyError(f"{address} is not a {self.operator} delivery server")
        server = placed.server
        if server.cache is None:
            raise ValueError(f"{server.hostname} is not a cache")
        key = f"{request.host}{request.path}"
        self._m_requests.inc()
        cached = server.cache.lookup(key)
        if cached is not None:
            self._m_hit.inc()
            response = HttpResponse(status=200, body_size=cached)
            status = CacheStatus.HIT_FRESH
            size = cached
        else:
            self._m_miss.inc()
            server.cache.admit(key, size)
            response = HttpResponse(status=200, body_size=size)
            status = CacheStatus.MISS
        record_cache_hop(
            response, server.hostname, status, agent=f"{self.operator}CacheServer"
        )
        server.account(size)
        return response

    # ----- exposure ---------------------------------------------------

    def _controller(self, region: MappingRegion) -> Optional[ExposureController]:
        if self._exposure_factory is None:
            return None
        if region not in self._exposure:
            self._exposure[region] = self._exposure_factory()
        return self._exposure[region]

    def offer_demand(self, now: float, region: MappingRegion, gbps: float) -> None:
        """Report the demand this deployment carries in ``region``."""
        controller = self._controller(region)
        if controller is not None:
            controller.offer(now, gbps)

    def active_servers(self, region: MappingRegion) -> tuple[PlacedServer, ...]:
        """The exposed subset for ``region`` under current demand."""
        placements = self._by_region[region]
        controller = self._controller(region)
        if controller is None:
            return tuple(placements)
        count = controller.active_count(len(placements))
        return tuple(placements[:count])

    def active_capacity_gbps(self, region: MappingRegion) -> float:
        """Capacity of the currently exposed servers in ``region``."""
        return sum(p.server.capacity_gbps for p in self.active_servers(region))

    def region_capacity_gbps(self, region: MappingRegion) -> float:
        """Total (exposed or not) capacity in ``region``."""
        return sum(p.server.capacity_gbps for p in self._by_region[region])

    # ----- DNS answer pools --------------------------------------------

    def pool_for(self, context: QueryContext) -> list[IPv4Address]:
        """The candidate addresses a GSLB should answer with.

        Active servers in the client's region, nearest metro first; the
        ``pool_limit`` nearest are returned (all of them when 0).  This
        is the ``pool`` callable plugged into
        :class:`repro.dns.policies.GslbAddressPolicy`.
        """
        active = self.active_servers(context.region)
        memo_key = (
            context.region,
            len(active),
            round(context.coordinates.latitude, 2),
            round(context.coordinates.longitude, 2),
        )
        cached = self._ranking_memo.get(memo_key)
        if cached is not None:
            return cached
        ranked = sorted(
            active,
            key=lambda placed: (
                great_circle_km(context.coordinates, placed.location.coordinates),
                placed.server.hostname,
            ),
        )
        if self.pool_limit > 0:
            ranked = ranked[: self.pool_limit]
        addresses = [placed.server.address for placed in ranked]
        self._ranking_memo[memo_key] = addresses
        return addresses

    def __len__(self) -> int:
        return len(self._servers)

    def __str__(self) -> str:
        return f"CdnDeployment({self.operator}, {len(self)} servers)"
