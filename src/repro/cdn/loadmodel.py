"""A fluid model of concurrent downloads under capacity sharing.

The paper sizes infrastructure in delivery capacity ("a single Apple
CDN IP represents the download capacity of four servers"); what users
experience during a flash crowd is the *download completion time* that
capacity allows.  This module provides a processor-sharing fluid model:
arrivals join a pool of active downloads, the fleet's capacity is
shared equally (capped by the per-client access rate), and downloads
complete as their remaining bytes drain.

It answers the what-if questions the Meta-CDN design exists for: how
long would the iOS 11 download have taken had Apple *not* offloaded —
see ``examples/whatif_no_offload.py`` and the capacity ablation bench.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["DownloadFluidModel", "FluidStats", "run_fleet"]


@dataclass(frozen=True)
class FluidStats:
    """The outcome of one fluid-model run."""

    started: float  # downloads begun
    completed: float  # downloads finished within the horizon
    peak_active: float  # maximum concurrent downloads
    mean_completion_seconds: float  # average over completed downloads
    peak_utilization: float  # fleet fill level at the worst instant

    @property
    def completion_ratio(self) -> float:
        """Share of started downloads that finished in the horizon."""
        if self.started == 0:
            return 0.0
        return min(1.0, self.completed / self.started)


@dataclass
class DownloadFluidModel:
    """Processor sharing of ``capacity_gbps`` over active downloads.

    ``client_gbps`` caps what any single client can pull (access-line
    speed); below saturation everyone downloads at that rate, above it
    the fleet capacity is divided equally — the standard fluid view of
    a TCP-fair bottleneck.
    """

    capacity_gbps: float
    image_bytes: float = 2.8e9
    client_gbps: float = 0.05  # 50 Mbit/s access lines (2017-ish)

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError("capacity_gbps must be positive")
        if self.image_bytes <= 0:
            raise ValueError("image_bytes must be positive")
        if self.client_gbps <= 0:
            raise ValueError("client_gbps must be positive")

    def per_client_gbps(self, active: float) -> float:
        """The rate each of ``active`` concurrent downloads gets."""
        if active <= 0:
            return self.client_gbps
        return min(self.client_gbps, self.capacity_gbps / active)

    def run(
        self,
        arrivals_per_second: Callable[[float], float],
        horizon_seconds: float,
        step_seconds: float = 60.0,
    ) -> FluidStats:
        """Integrate the fluid equations over ``horizon_seconds``.

        The active pool is tracked as cohorts (arrival step, remaining
        bytes per download, cohort size); each step every cohort drains
        at the shared rate, and cohorts whose remaining bytes reach
        zero complete.  This keeps completion times exact under the
        fluid approximation without per-download state.
        """
        if horizon_seconds <= 0 or step_seconds <= 0:
            raise ValueError("horizon and step must be positive")
        cohorts: list[list[float]] = []  # [start_time, remaining_bytes, count]
        started = 0.0
        completed = 0.0
        completion_time_sum = 0.0
        peak_active = 0.0
        peak_utilization = 0.0

        now = 0.0
        while now < horizon_seconds:
            rate = arrivals_per_second(now)
            if rate > 0:
                cohorts.append([now, self.image_bytes, rate * step_seconds])
                started += rate * step_seconds
            active = sum(cohort[2] for cohort in cohorts)
            peak_active = max(peak_active, active)
            share = self.per_client_gbps(active)
            if active > 0:
                peak_utilization = max(
                    peak_utilization,
                    min(1.0, active * share / self.capacity_gbps),
                )
            drained = share * 1e9 / 8.0 * step_seconds
            survivors = []
            for cohort in cohorts:
                cohort[1] -= drained
                if cohort[1] <= 0:
                    completed += cohort[2]
                    completion_time_sum += (now + step_seconds - cohort[0]) * cohort[2]
                else:
                    survivors.append(cohort)
            cohorts = survivors
            now += step_seconds

        mean_completion = (
            completion_time_sum / completed if completed > 0 else float("inf")
        )
        return FluidStats(
            started=started,
            completed=completed,
            peak_active=peak_active,
            mean_completion_seconds=mean_completion,
            peak_utilization=peak_utilization,
        )

    def unloaded_completion_seconds(self) -> float:
        """Download time with the fleet idle (client-line bound)."""
        return self.image_bytes * 8.0 / (self.client_gbps * 1e9)


def _run_one(
    model: DownloadFluidModel,
    arrivals_per_second: Callable[[float], float],
    horizon_seconds: float,
    step_seconds: float,
) -> FluidStats:
    return model.run(arrivals_per_second, horizon_seconds, step_seconds)


def run_fleet(
    models: Sequence[DownloadFluidModel],
    arrivals_per_second: Callable[[float], float],
    horizon_seconds: float,
    step_seconds: float = 60.0,
    workers: int = 1,
) -> list[FluidStats]:
    """Run several fluid models against one arrival curve.

    Capacity ablations sweep dozens of hypothetical fleets over the
    same flash crowd; each model is independent, so the sweep shards
    trivially.  With ``workers > 1`` the models run in a
    ``ProcessPoolExecutor`` (``arrivals_per_second`` must then be
    picklable — a module-level function, not a lambda); ``workers=1``
    runs serially and needs no pickling.  Results are returned in
    ``models`` order either way, so both paths produce identical
    output.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(models) <= 1:
        return [
            _run_one(model, arrivals_per_second, horizon_seconds, step_seconds)
            for model in models
        ]
    with ProcessPoolExecutor(max_workers=min(workers, len(models))) as pool:
        futures = [
            pool.submit(_run_one, model, arrivals_per_second, horizon_seconds, step_seconds)
            for model in models
        ]
        return [future.result() for future in futures]
