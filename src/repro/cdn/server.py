"""Cache servers and their roles.

Apple's naming scheme (Table 1) distinguishes server functions: ``vip``
(the load-balancer address handed out by DNS), ``edge`` (caches, with
``bx``/``lx``/``sx`` secondary functions), ``gslb``, ``dns``, ``ntp``
and ``tool``.  :class:`ServerRole` captures the function and
:class:`CacheServer` one concrete machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..net.asys import ASN
from ..net.ipv4 import IPv4Address
from .cache import ContentCache

__all__ = ["ServerFunction", "SecondaryFunction", "ServerRole", "CacheServer"]


class ServerFunction(str, Enum):
    """Primary function identifier (Table 1, identifier ``c``)."""

    VIP = "vip"
    EDGE = "edge"
    GSLB = "gslb"
    DNS = "dns"
    NTP = "ntp"
    TOOL = "tool"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class SecondaryFunction(str, Enum):
    """Secondary function identifier (Table 1, identifier ``d``)."""

    BX = "bx"
    LX = "lx"
    SX = "sx"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ServerRole:
    """A (function, secondary function) pair, e.g. ``edge-bx``."""

    function: ServerFunction
    secondary: Optional[SecondaryFunction] = None

    def __str__(self) -> str:
        if self.secondary is None:
            return self.function.value
        return f"{self.function.value}-{self.secondary.value}"


# The three roles the paper's Figure 2 edge-site inset uses.
VIP_BX = ServerRole(ServerFunction.VIP, SecondaryFunction.BX)
EDGE_BX = ServerRole(ServerFunction.EDGE, SecondaryFunction.BX)
EDGE_LX = ServerRole(ServerFunction.EDGE, SecondaryFunction.LX)


@dataclass
class CacheServer:
    """One delivery machine: hostname, address, role, capacity, cache.

    ``capacity_gbps`` is the sustained delivery capacity used by the
    load model; ``cache`` is ``None`` for pure load balancers (vip) and
    non-delivery roles.  ``asn`` records the AS the address lives in —
    third-party CDNs place caches inside other operators' networks,
    which is exactly what "Akamai other AS" / "Limelight other AS"
    denote in Figures 4 and 5.
    """

    hostname: str
    address: IPv4Address
    role: ServerRole
    asn: ASN
    capacity_gbps: float = 10.0
    cache: Optional[ContentCache] = None
    served_bytes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.hostname = self.hostname.lower()
        if self.capacity_gbps <= 0:
            raise ValueError(f"capacity must be positive: {self.capacity_gbps}")

    @property
    def is_load_balancer(self) -> bool:
        """True for vip servers (they front edge caches, Section 3.3)."""
        return self.role.function is ServerFunction.VIP

    @property
    def is_cache(self) -> bool:
        """True for servers that store content."""
        return self.cache is not None

    def account(self, size: int) -> None:
        """Add ``size`` bytes to this server's delivery counter."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.served_bytes += size

    def __str__(self) -> str:
        return f"{self.hostname} [{self.address}] ({self.role})"
