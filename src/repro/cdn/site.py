"""Edge sites: the vip → edge-bx → edge-lx cache hierarchy.

Section 3.3 infers the internal structure of Apple's delivery sites from
HTTP headers: client requests land on a ``vip-bx`` load balancer that
forwards to one of four associated ``edge-bx`` caches; on a miss the
request goes to an ``edge-lx`` node, and from there to the origin (a
CloudFront host in the paper's header sample).

:class:`EdgeSite` implements that hierarchy faithfully, including the
header mechanics that make the inference possible: each cache stores the
upstream response's headers with the object and replays them on a hit,
then records its own ``Via`` entry and prepends its ``X-Cache`` verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dns.policies import stable_fraction
from ..http.headers import CacheStatus, record_cache_hop
from ..http.messages import Headers, HttpRequest, HttpResponse
from ..net.ipv4 import IPv4Address
from ..net.locode import Location
from ..obs import get_registry
from .server import CacheServer

__all__ = ["Origin", "EdgeSite", "ServedRequest"]


@dataclass
class Origin:
    """The content origin behind a CDN's caches.

    The paper's header sample shows Apple's origin to be CloudFront;
    the defaults reproduce that byte-for-byte recognisable form.
    """

    host: str = "2db316290386960b489a2a16c0a63643.cloudfront.net"
    agent: str = "CloudFront"
    protocol: str = "1.1"

    def fetch(self, request: HttpRequest, size: int) -> HttpResponse:
        """Produce the authoritative response for ``request``."""
        response = HttpResponse(status=200, body_size=size)
        record_cache_hop(
            response,
            host=self.host,
            status=CacheStatus.HIT_FROM_CLOUDFRONT,
            agent=self.agent,
            protocol=self.protocol,
        )
        return response


@dataclass(frozen=True)
class ServedRequest:
    """The outcome of one request served by a site."""

    response: HttpResponse
    vip: CacheServer
    edge_bx: CacheServer
    hit_layer: Optional[str]  # "edge-bx", "edge-lx" or None (origin fetch)


class EdgeSite:
    """One delivery site: a vip fronting edge-bx caches with an lx tier.

    The vip's address is what DNS hands to clients, so "a single Apple
    CDN IP represents the download capacity of four servers"
    (Section 3.3) — :attr:`capacity_gbps` reflects that.
    """

    def __init__(
        self,
        location: Location,
        site_id: int,
        vip: CacheServer,
        edge_bx: list[CacheServer],
        edge_lx: CacheServer,
        origin: Optional[Origin] = None,
    ) -> None:
        if not edge_bx:
            raise ValueError("a site needs at least one edge-bx cache")
        for server in edge_bx:
            if server.cache is None:
                raise ValueError(f"edge-bx {server.hostname} has no content cache")
        if edge_lx.cache is None:
            raise ValueError(f"edge-lx {edge_lx.hostname} has no content cache")
        self.location = location
        self.site_id = site_id
        self.vip = vip
        self.edge_bx = list(edge_bx)
        self.edge_lx = edge_lx
        self.origin = origin if origin is not None else Origin()
        # Fault plane (repro.faults.FaultInjector); None = no faults and
        # the serve path pays a single attribute check.
        self.faults = None
        # Hierarchy telemetry, pre-bound per outcome so the serve path
        # pays one no-op call per hop under the null registry.
        registry = get_registry()
        self._m_requests = registry.counter(
            "http_requests_total",
            "HTTP requests served by CDN delivery paths",
            ("operator",),
        ).labels("Apple")
        lookups = registry.counter(
            "cache_requests_total",
            "Cache lookups through the delivery hierarchy",
            ("operator", "layer", "outcome"),
        )
        self._m_bx_hit = lookups.labels("Apple", "edge-bx", "hit")
        self._m_bx_miss = lookups.labels("Apple", "edge-bx", "miss")
        self._m_lx_hit = lookups.labels("Apple", "edge-lx", "hit")
        self._m_lx_miss = lookups.labels("Apple", "edge-lx", "miss")
        self._m_origin = registry.counter(
            "origin_fetches_total",
            "Requests that fell through every cache layer",
            ("operator",),
        ).labels("Apple")

    @property
    def address(self) -> IPv4Address:
        """The address DNS distributes for this site (the vip's)."""
        return self.vip.address

    @property
    def capacity_gbps(self) -> float:
        """Aggregate delivery capacity behind the vip."""
        return sum(server.capacity_gbps for server in self.edge_bx)

    @property
    def server_count(self) -> int:
        """Number of edge-bx delivery servers (Figure 3's denominators)."""
        return len(self.edge_bx)

    def choose_edge(self, request: HttpRequest) -> CacheServer:
        """The vip's load-sharing decision (step 5 in Figure 2).

        Sharding is by object path so one object concentrates on one
        edge-bx, with the client address as a tie-breaker across the
        replica set — a standard consistent-assignment scheme.
        """
        client = request.headers.get("X-Client", "")
        index = int(
            stable_fraction(self.vip.hostname, request.path, client)
            * len(self.edge_bx)
        )
        return self.edge_bx[index]

    def serve(self, request: HttpRequest, size: int) -> ServedRequest:
        """Serve ``request`` for an object of ``size`` bytes.

        Walks vip → edge-bx → (miss) edge-lx → (miss) origin, recording
        Via/X-Cache exactly like a chain of Apache Traffic Servers, and
        accounting delivered bytes to the chosen edge-bx.
        """
        edge = self.choose_edge(request)
        key = f"{request.host}{request.path}"
        self._m_requests.inc()

        if self.faults is not None and self.faults.edge_crashed(edge.hostname):
            # §3.3 fallback: the vip-bx routes around a dead edge-bx by
            # serving straight from the site's edge-lx tier.
            return self._serve_via_lx(request, key, size)

        cached = edge.cache.lookup(key)
        if cached is not None:
            self._m_bx_hit.inc()
            response = self._replay(edge, key, cached)
            record_cache_hop(response, edge.hostname, CacheStatus.HIT_FRESH)
            edge.account(cached)
            return ServedRequest(response, self.vip, edge, hit_layer="edge-bx")
        self._m_bx_miss.inc()

        lx_cached = self.edge_lx.cache.lookup(key)
        if lx_cached is not None:
            self._m_lx_hit.inc()
            response = self._replay(self.edge_lx, key, lx_cached)
            record_cache_hop(response, self.edge_lx.hostname, CacheStatus.HIT_FRESH)
            self._admit(edge, key, lx_cached, response)
            record_cache_hop(response, edge.hostname, CacheStatus.MISS)
            edge.account(lx_cached)
            return ServedRequest(response, self.vip, edge, hit_layer="edge-lx")
        self._m_lx_miss.inc()

        self._m_origin.inc()
        response = self.origin.fetch(request, size)
        self._admit(self.edge_lx, key, size, response)
        record_cache_hop(response, self.edge_lx.hostname, CacheStatus.MISS)
        self._admit(edge, key, size, response)
        record_cache_hop(response, edge.hostname, CacheStatus.MISS)
        edge.account(size)
        return ServedRequest(response, self.vip, edge, hit_layer=None)

    def _serve_via_lx(self, request: HttpRequest, key: str, size: int) -> ServedRequest:
        """Serve with the chosen edge-bx crashed: edge-lx → origin only.

        The Via/X-Cache chain then shows a single edge hop — the
        degraded form of the Section 3.3 hierarchy — and no bytes are
        admitted to the dead edge-bx cache.
        """
        lx_cached = self.edge_lx.cache.lookup(key)
        if lx_cached is not None:
            self._m_lx_hit.inc()
            response = self._replay(self.edge_lx, key, lx_cached)
            record_cache_hop(response, self.edge_lx.hostname, CacheStatus.HIT_FRESH)
            self.edge_lx.account(lx_cached)
            return ServedRequest(response, self.vip, self.edge_lx, hit_layer="edge-lx")
        self._m_lx_miss.inc()
        self._m_origin.inc()
        response = self.origin.fetch(request, size)
        self._admit(self.edge_lx, key, size, response)
        record_cache_hop(response, self.edge_lx.hostname, CacheStatus.MISS)
        self.edge_lx.account(size)
        return ServedRequest(response, self.vip, self.edge_lx, hit_layer=None)

    @staticmethod
    def _admit(server: CacheServer, key: str, size: int, response: HttpResponse) -> None:
        server.cache.admit(key, size, metadata=response.headers.copy())

    @staticmethod
    def _replay(server: CacheServer, key: str, size: int) -> HttpResponse:
        stored = server.cache.metadata(key)
        headers = stored.copy() if isinstance(stored, Headers) else Headers()
        return HttpResponse(status=200, headers=headers, body_size=size)

    def __str__(self) -> str:
        return (
            f"EdgeSite({self.location.code}{self.site_id}: "
            f"{len(self.edge_bx)}x edge-bx @ {self.address})"
        )
