"""Builders for the third-party CDN fleets of the Apple Meta-CDN.

Section 3.2 identifies three third-party CDNs in the mapping chain:

* **Akamai** — handover ``a1271.gi3.akamai.net`` (plus, from six hours
  into the rollout, ``a1015.gi3.akamai.net`` for the EU); used in all
  three regions.  Akamai famously places many caches inside other
  operators' networks, which Figures 4/5 plot as "Akamai other AS".
* **Limelight** — handovers ``apple.vo.llnwi.net`` (US/EU) and
  ``apple-dnld.vo.llnwd.net`` (APAC); some caches in other ASes too.
* **Level3** — removed from the mapping in late June 2017; the builder
  exists so the pre-removal configuration can be modelled and the
  ablation benches can re-add it.

Address plans use each operator's documented ranges (Akamai 23.0.0.0/12
area, Limelight 68.142.64.0/18, Level3 4.0.0.0/9) so analysis output is
recognisable, with "other AS" caches drawn from a distinct pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..net.asys import AS_AKAMAI, AS_LEVEL3, AS_LIMELIGHT, ASN
from ..net.ipv4 import IPv4Prefix
from ..net.locode import Location, LocodeDatabase
from .cache import ContentCache
from .deployment import CdnDeployment, ExposureController
from .server import CacheServer, ServerFunction, ServerRole

__all__ = ["ThirdPartyPlan", "build_third_party", "AKAMAI_PLAN", "LIMELIGHT_PLAN", "LEVEL3_PLAN"]

_DELIVERY_ROLE = ServerRole(ServerFunction.EDGE)
_DEFAULT_CACHE_BYTES = 4 << 40  # 4 TiB per delivery server


@dataclass(frozen=True)
class ThirdPartyPlan:
    """Everything needed to instantiate one third-party CDN fleet."""

    operator: str
    asn: ASN
    own_prefix: IPv4Prefix
    other_as_prefix: IPv4Prefix  # addresses of caches hosted in other ASs
    hostname_pattern: str  # format with {metro}, {index}
    servers_per_metro: int
    other_as_share: float  # fraction of servers placed in foreign ASs
    per_server_gbps: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.other_as_share <= 1.0:
            raise ValueError("other_as_share must be in [0, 1]")
        if self.servers_per_metro <= 0:
            raise ValueError("servers_per_metro must be positive")


AKAMAI_PLAN = ThirdPartyPlan(
    operator="Akamai",
    asn=AS_AKAMAI,
    own_prefix=IPv4Prefix.parse("23.192.0.0/11"),
    other_as_prefix=IPv4Prefix.parse("92.122.0.0/15"),
    hostname_pattern="a23-{metro}-{index}.deploy.static.akamaitechnologies.com",
    servers_per_metro=48,
    other_as_share=0.45,
    per_server_gbps=8.0,
)

LIMELIGHT_PLAN = ThirdPartyPlan(
    operator="Limelight",
    asn=AS_LIMELIGHT,
    own_prefix=IPv4Prefix.parse("68.142.64.0/18"),
    other_as_prefix=IPv4Prefix.parse("208.111.128.0/18"),
    hostname_pattern="cds{index:02d}.{metro}.llnw.net",
    servers_per_metro=64,
    other_as_share=0.20,
    per_server_gbps=10.0,
)

LEVEL3_PLAN = ThirdPartyPlan(
    operator="Level3",
    asn=AS_LEVEL3,
    own_prefix=IPv4Prefix.parse("4.0.0.0/9"),
    other_as_prefix=IPv4Prefix.parse("8.0.0.0/12"),
    hostname_pattern="cache-{metro}-{index}.level3.net",
    servers_per_metro=32,
    other_as_share=0.10,
    per_server_gbps=10.0,
)


def build_third_party(
    plan: ThirdPartyPlan,
    metros: Iterable[Location],
    other_as: ASN,
    exposure_factory: Optional[Callable[[], ExposureController]] = None,
    pool_limit: int = 0,
    cache_bytes: int = _DEFAULT_CACHE_BYTES,
) -> CdnDeployment:
    """Instantiate a third-party fleet across ``metros``.

    ``other_as`` is the AS that hosts the plan's ``other_as_share`` of
    caches (in reality many different hosting ASs; one suffices for the
    source-AS vs handover-AS analyses).  The default ``exposure_factory``
    derives from the plan's per-server capacity with a one-hour ramp —
    scenario code overrides it for the six-hour Akamai ramp.
    """
    if exposure_factory is None:
        per_server = plan.per_server_gbps

        def exposure_factory() -> ExposureController:
            return ExposureController(
                per_server_gbps=per_server, min_servers=4, tau_seconds=3600.0
            )

    deployment = CdnDeployment(
        operator=plan.operator,
        asn=plan.asn,
        exposure_factory=exposure_factory,
        pool_limit=pool_limit,
    )
    own_addresses = plan.own_prefix.size
    other_addresses = plan.other_as_prefix.size
    own_cursor = 1
    other_cursor = 1
    other_every = round(1.0 / plan.other_as_share) if plan.other_as_share > 0 else 0

    for metro in metros:
        for index in range(plan.servers_per_metro):
            hostname = plan.hostname_pattern.format(metro=metro.code, index=index)
            in_other_as = other_every > 0 and index % other_every == other_every - 1
            if in_other_as:
                if other_cursor >= other_addresses:
                    raise ValueError(f"{plan.operator}: other-AS prefix exhausted")
                address = plan.other_as_prefix.host(other_cursor)
                other_cursor += 1
                asn = other_as
            else:
                if own_cursor >= own_addresses:
                    raise ValueError(f"{plan.operator}: own prefix exhausted")
                address = plan.own_prefix.host(own_cursor)
                own_cursor += 1
                asn = plan.asn
            server = CacheServer(
                hostname=hostname,
                address=address,
                role=_DELIVERY_ROLE,
                asn=asn,
                capacity_gbps=plan.per_server_gbps,
                cache=ContentCache(cache_bytes),
            )
            deployment.add_server(server, metro)
    return deployment
