"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows:

* ``simulate`` — run the Sep-2017 scenario over a date window and print
  per-step aggregates (demand, offload split, measurements, flows);
* ``report`` — run the event window and emit the full reproduction
  report (Figures 2-8 in one document);
* ``survey`` — the paper's generic CDN-survey methodology: mapping
  graph, site discovery and header inference, no time simulation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import MappingGraph, discover_sites, infer_hierarchy
from .analysis.report import generate_report
from .dns.query import QueryContext
from .dns.trace import DelegationTree
from .http.messages import Headers, HttpRequest
from .net.geo import Continent, Coordinates, MappingRegion
from .net.ipv4 import IPv4Address
from .simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from .workload import TIMELINE

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dissecting Apple's Meta-CDN during "
                    "an iOS Update' (IMC 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run the Sep-2017 scenario over a date window"
    )
    simulate.add_argument("--start", default="9-17", metavar="M-D",
                          help="start date in 2017 (default 9-17)")
    simulate.add_argument("--end", default="9-21", metavar="M-D",
                          help="end date in 2017 (default 9-21)")
    simulate.add_argument("--step", type=float, default=1800.0,
                          help="engine step in seconds (default 1800)")
    simulate.add_argument("--probes", type=int, default=60,
                          help="global probe count (default 60)")
    simulate.add_argument("--isp-probes", type=int, default=30,
                          help="ISP probe count (default 30)")

    report = commands.add_parser(
        "report", help="run the event window and print the full report"
    )
    report.add_argument("--probes", type=int, default=80)
    report.add_argument("--isp-probes", type=int, default=40)
    report.add_argument("--step", type=float, default=1800.0)

    commands.add_parser(
        "survey", help="survey the mapping chain, sites and headers"
    )
    return parser


def _parse_date(text: str) -> float:
    month, _, day = text.partition("-")
    try:
        return TIMELINE.at(int(month), int(day))
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"bad date {text!r}; expected M-D, e.g. 9-19") from exc


def _cmd_simulate(args: argparse.Namespace) -> int:
    start = _parse_date(args.start)
    end = _parse_date(args.end)
    scenario = Sep2017Scenario(
        ScenarioConfig(
            global_probe_count=args.probes, isp_probe_count=args.isp_probes
        )
    )
    engine = SimulationEngine(scenario, step_seconds=args.step)

    day_cursor = [None]

    def progress(report):
        day = TIMELINE.date_label(report.now)
        if day != day_cursor[0]:
            day_cursor[0] = day
            split = ", ".join(
                f"{op}={gbps:.0f}G" for op, gbps in sorted(report.operator_gbps.items())
            )
            print(f"{day}: EU demand "
                  f"{report.demand_gbps[MappingRegion.EU]:.0f} Gbps ({split})")

    steps = engine.run(start, end, progress=progress)
    print(f"\n{steps} steps; "
          f"{len(scenario.global_campaign.store.dns)} global + "
          f"{len(scenario.isp_campaign.store.dns)} ISP DNS measurements; "
          f"{len(scenario.netflow.records)} flow records")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    scenario = Sep2017Scenario(
        ScenarioConfig(
            global_probe_count=args.probes, isp_probe_count=args.isp_probes
        )
    )
    engine = SimulationEngine(scenario, step_seconds=args.step)
    engine.run(TIMELINE.at(9, 15), TIMELINE.at(9, 23))
    print(generate_report(scenario))
    return 0


def _cmd_survey(_args: argparse.Namespace) -> int:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    estate = scenario.estate
    vantage_points = (
        (Continent.EUROPE, "de", (50.11, 8.68)),
        (Continent.NORTH_AMERICA, "us", (40.71, -74.0)),
        (Continent.ASIA, "jp", (35.67, 139.65)),
        (Continent.ASIA, "in", (19.07, 72.87)),
        (Continent.SOUTH_AMERICA, "br", (-23.55, -46.63)),
    )
    resolutions = []
    for load in (0.0, 1e6):
        for region in MappingRegion:
            estate.controller.observe_demand(region, load)
        for index in range(20):
            for continent, country, coords in vantage_points:
                context = QueryContext(
                    client=IPv4Address.parse(f"198.51.{index}.1"),
                    coordinates=Coordinates(*coords),
                    continent=continent,
                    country=country,
                    now=0.0,
                )
                resolutions.append(
                    estate.resolver(cache=False).resolve(
                        estate.names.entry_point, context
                    )
                )
    for region in MappingRegion:
        estate.controller.observe_demand(region, 0.0)
    print(MappingGraph.from_resolutions(resolutions).render())
    print()
    # Delegation attribution, dig-+trace style.
    tree = DelegationTree(estate.servers)
    for name in (
        estate.names.entry_point,
        estate.names.akadns_entry,
        estate.names.selection,
        estate.names.limelight_us_eu,
    ):
        print(tree.trace(name).render())
        print()
    print(discover_sites(estate.apple.reverse_dns_table()).render())
    print()
    site = estate.apple.sites[0]
    samples = []
    for vip in site.vip_addresses[:2]:
        for index in range(10):
            request = HttpRequest(
                "GET", "appldnld.apple.com", f"/survey/file{index}.ipsw",
                headers=Headers({"X-Client": f"198.51.99.{index}"}),
            )
            samples.append((vip, estate.apple.serve(vip, request, 1000).response))
    print(infer_hierarchy(samples).render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "report": _cmd_report,
        "survey": _cmd_survey,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
