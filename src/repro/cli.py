"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the common workflows:

* ``simulate`` — run the Sep-2017 scenario over a date window and print
  per-step aggregates (demand, offload split, measurements, flows);
* ``report`` — run the event window and emit the full reproduction
  report (Figures 2-8 in one document);
* ``resume`` — continue a checkpointed run (``--checkpoint-every`` on
  simulate/report) bit-identically from its newest ``RCKPT`` snapshot;
* ``survey`` — the paper's generic CDN-survey methodology: mapping
  graph, site discovery and header inference, no time simulation;
* ``serve`` — boot the live DNS + HTTP serving layer on loopback and
  keep it up for external clients (``dig``, ``curl``, the loadgen);
* ``loadgen`` — drive the closed-loop load generator against an
  already-running serve endpoint pair;
* ``selftest`` — boot a cluster, drive a full load run through it and
  verify throughput, latency and cache health in one shot;
* ``chaos`` — the fault-injection drill: scheduled outages against the
  live cluster plus an engine-time blackout, gated on error rate,
  re-steer time and recovery;
* ``top`` — poll a running cluster's admin endpoint and render a live
  panel (qps, cache-hit ratio, error rate, latency percentiles);
* ``profile`` — run the engine under the phase profiler and print the
  per-worker per-phase time breakdown.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
import urllib.request
from contextlib import nullcontext
from typing import Optional, Sequence

from .analysis import MappingGraph, discover_sites, infer_hierarchy
from .analysis.report import generate_report
from .dns.query import QueryContext
from .dns.trace import DelegationTree
from .http.messages import Headers, HttpRequest
from .net.geo import Continent, Coordinates, MappingRegion
from .net.ipv4 import IPv4Address
from .obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    EventTracer,
    FlightRecorder,
    MetricsRegistry,
    parse_exposition,
    parsed_histogram,
    summary_table,
    use_flight_recorder,
    use_registry,
    use_tracer,
    write_metrics,
    write_trace,
)
from .serve import (
    ClientDirectory,
    ClusterConfig,
    LoadConfig,
    LoadGenerator,
    ServeCluster,
    render_selftest,
    selftest,
    selftest_checks,
)
from .simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from .workload import TIMELINE

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dissecting Apple's Meta-CDN during "
                    "an iOS Update' (IMC 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", aliases=["run"],
        help="run the Sep-2017 scenario over a date window",
    )
    simulate.add_argument("--start", default="9-17", metavar="M-D",
                          help="start date in 2017 (default 9-17)")
    simulate.add_argument("--end", default="9-21", metavar="M-D",
                          help="end date in 2017 (default 9-21)")
    simulate.add_argument("--step", type=float, default=1800.0,
                          help="engine step in seconds (default 1800)")
    simulate.add_argument("--probes", type=int, default=60,
                          help="global probe count (default 60)")
    simulate.add_argument("--isp-probes", type=int, default=30,
                          help="ISP probe count (default 30)")
    simulate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the sharded engine "
                               "(default 1 = serial)")
    _add_steering_args(simulate)
    _add_resolver_args(simulate)
    simulate.add_argument("--fault", action="append", default=None,
                          metavar="SPEC",
                          help="fault window as kind@target:start-end"
                               "[:severity], e.g. route-withdraw@defra-1:"
                               "3600-7200 (repeatable; seconds are "
                               "relative to --start)")
    _add_store_args(simulate)
    _add_checkpoint_args(simulate)
    _add_telemetry_args(simulate)
    _add_flight_args(simulate)

    report = commands.add_parser(
        "report", help="run the event window and print the full report"
    )
    report.add_argument("--probes", type=int, default=80)
    report.add_argument("--isp-probes", type=int, default=40)
    report.add_argument("--step", type=float, default=1800.0)
    report.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sharded engine "
                             "(default 1 = serial)")
    _add_steering_args(report)
    _add_resolver_args(report)
    _add_store_args(report)
    _add_checkpoint_args(report)
    _add_telemetry_args(report)
    _add_flight_args(report)

    resume = commands.add_parser(
        "resume",
        help="continue a checkpointed run bit-identically to completion",
    )
    resume.add_argument("--from", dest="from_path", required=True,
                        metavar="PATH",
                        help="checkpoint file, or a checkpoint directory "
                             "(the newest valid ckpt-*.rckpt is used)")
    resume.add_argument("--end", default=None, metavar="M-D",
                        help="extend/trim the run end (default: the "
                             "original run's end)")
    resume.add_argument("--workers", type=int, default=1,
                        help="worker processes for the resumed run "
                             "(default 1 = serial)")
    _add_checkpoint_args(resume)
    _add_telemetry_args(resume)
    _add_flight_args(resume)

    commands.add_parser(
        "survey", help="survey the mapping chain, sites and headers"
    )

    serve = commands.add_parser(
        "serve", help="boot the live DNS + HTTP serving layer and keep it up"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind both servers on (default loopback)")
    serve.add_argument("--dns-port", type=int, default=5333,
                       help="DNS port, UDP and TCP (default 5333; 0 = ephemeral)")
    serve.add_argument("--http-port", type=int, default=8080,
                       help="HTTP edge port (default 8080; 0 = ephemeral)")
    serve.add_argument("--object-size", type=int, default=262_144,
                       help="modelled entity size in bytes (default 256 KiB)")
    serve.add_argument("--admin-port", type=int, default=9900,
                       help="admin endpoint (/metrics, /healthz, /traces) "
                            "port (default 9900; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=1,
                       help="serve worker processes sharing the ports via "
                            "SO_REUSEPORT (default 1 = single loop; the "
                            "admin plane then merges worker metrics)")
    serve.add_argument("--resolver-port", type=int, default=0,
                       help="UDP port for the public-resolver front when a "
                            "public population is enabled (default 0 = "
                            "ephemeral; fleets always pick ephemeral)")
    _add_resolver_args(serve)

    loadgen = commands.add_parser(
        "loadgen", help="drive the load generator against a running serve pair"
    )
    loadgen.add_argument("--dns", required=True, metavar="HOST:PORT",
                         help="DNS endpoint of a running `repro serve`")
    loadgen.add_argument("--http", required=True, metavar="HOST:PORT",
                         help="HTTP endpoint of a running `repro serve`")
    loadgen.add_argument("--requests", type=int, default=1000)
    loadgen.add_argument("--concurrency", type=int, default=32)
    loadgen.add_argument("--arrival", choices=("flash-crowd", "uniform"),
                         default=None,
                         help="open-loop arrival process driven by the "
                              "workload model (default: closed loop)")
    loadgen.add_argument("--duration", type=float, default=None,
                         help="seconds the arrival schedule spans "
                              "(open-loop only; default 10)")
    loadgen.add_argument("--processes", type=int, default=1,
                         help="generator processes to fan the load across "
                              "(default 1 = in-process)")
    loadgen.add_argument("--trace-sample", type=float, default=1.0,
                         metavar="RATE",
                         help="fraction of requests to trace end-to-end "
                              "(deterministic per trace id; default 1.0)")
    loadgen.add_argument("--trace-out", metavar="PATH", default=None,
                         help="write the client-side span trace here (JSONL)")
    loadgen.add_argument("--resolver", metavar="HOST:PORT", default=None,
                         help="public-resolver front endpoint of a running "
                              "`repro serve` with a public population")
    loadgen.add_argument("--public-resolver-share", type=float, default=0.0,
                         metavar="FRACTION",
                         help="fraction of clients resolving through "
                              "--resolver instead of directly (default 0.0)")

    selftest_cmd = commands.add_parser(
        "selftest", help="boot a loopback cluster, drive it, verify health"
    )
    selftest_cmd.add_argument("--requests", type=int, default=5000,
                              help="closed-loop requests to drive (default 5000)")
    selftest_cmd.add_argument("--concurrency", type=int, default=64,
                              help="concurrent workers (default 64)")
    selftest_cmd.add_argument("--qps-floor", type=float, default=1000.0,
                              help="required sustained DNS qps (default 1000)")
    selftest_cmd.add_argument("--trace-sample", type=float, default=1.0,
                              metavar="RATE",
                              help="fraction of requests to trace end-to-end "
                                   "(deterministic per trace id; default 1.0)")
    selftest_cmd.add_argument("--trace-out", metavar="PATH", default=None,
                              help="write the full causal-chain trace here "
                                   "(JSONL; enables tracing)")
    selftest_cmd.add_argument("--workers", type=int, default=1,
                              help="serve worker processes (default 1 = the "
                                   "classic single-loop selftest; >= 2 runs "
                                   "the scaled fleet selftest)")
    selftest_cmd.add_argument("--processes", type=int, default=None,
                              help="loadgen processes for the fleet selftest "
                                   "(default: max(2, workers))")
    selftest_cmd.add_argument("--arrival", choices=("flash-crowd", "uniform"),
                              default=None,
                              help="drive the fleet open-loop with this "
                                   "arrival process instead of closed-loop")
    selftest_cmd.add_argument("--duration", type=float, default=None,
                              help="seconds the open-loop schedule spans")
    _add_resolver_args(selftest_cmd)

    chaos = commands.add_parser(
        "chaos", help="run the fault-injection drill against live + engine"
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="seed for probabilistic fault decisions (default 7)")
    chaos.add_argument("--concurrency", type=int, default=16,
                       help="concurrent load workers (default 16)")
    chaos.add_argument("--error-budget", type=float, default=0.02,
                       help="max tolerated client error rate (default 0.02)")
    chaos.add_argument("--fault", action="append", default=None, metavar="SPEC",
                       help="fault window as kind@target:start-end[:severity], "
                            "e.g. cdn-blackout@Limelight:3-9 (repeatable; "
                            "default: the standard drill)")
    chaos.add_argument("--skip-simulation", action="store_true",
                       help="run only the live phase")
    chaos.add_argument("--steering", choices=("dns", "anycast", "hybrid"),
                       default="dns",
                       help="steering mode under test; 'anycast' adds the "
                            "route-flap drill (catchment shift, zero DNS "
                            "re-steers)")
    chaos.add_argument("--workers", type=int, default=1,
                       help="worker processes for the simulation phase "
                            "(default 1 = serial)")
    chaos.add_argument("--serve-workers", type=int, default=1,
                       help="serve worker processes for the live phase "
                            "(default 1 = single loop; >= 2 runs the drill "
                            "against a reuseport fleet mid-flash-crowd)")
    _add_flight_args(chaos)

    top = commands.add_parser(
        "top", help="live panel polled off a running cluster's admin endpoint"
    )
    top.add_argument("--endpoint", default="127.0.0.1:9900", metavar="HOST:PORT",
                     help="admin endpoint of a running `repro serve` "
                          "(default 127.0.0.1:9900)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls (default 2)")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N panels (default 0 = until Ctrl-C)")

    profile = commands.add_parser(
        "profile", help="run the engine under the phase profiler"
    )
    profile.add_argument("--start", default="9-18", metavar="M-D",
                         help="start date in 2017 (default 9-18)")
    profile.add_argument("--end", default="9-19", metavar="M-D",
                         help="end date in 2017 (default 9-19)")
    profile.add_argument("--step", type=float, default=1800.0,
                         help="engine step in seconds (default 1800)")
    profile.add_argument("--probes", type=int, default=24,
                         help="global probe count (default 24)")
    profile.add_argument("--isp-probes", type=int, default=12,
                         help="ISP probe count (default 12)")
    profile.add_argument("--workers", type=int, default=4,
                         help="worker processes to profile (default 4)")
    _add_flight_args(profile)

    catchments = commands.add_parser(
        "catchments",
        help="run a window under anycast steering and print the catchment map",
    )
    catchments.add_argument("--start", default="9-18", metavar="M-D",
                            help="start date in 2017 (default 9-18)")
    catchments.add_argument("--end", default="9-20", metavar="M-D",
                            help="end date in 2017 (default 9-20)")
    catchments.add_argument("--step", type=float, default=1800.0,
                            help="engine step in seconds (default 1800)")
    catchments.add_argument("--probes", type=int, default=60,
                            help="global probe count (default 60)")
    catchments.add_argument("--isp-probes", type=int, default=30,
                            help="ISP probe count (default 30)")
    catchments.add_argument("--workers", type=int, default=1,
                            help="worker processes for the sharded engine "
                                 "(default 1 = serial)")
    catchments.add_argument("--steering", choices=("anycast", "hybrid"),
                            default="anycast",
                            help="steering mode to replay (default anycast)")
    catchments.add_argument("--fault", action="append", default=None,
                            metavar="SPEC",
                            help="route flap as kind@site:start-end[:severity],"
                                 " e.g. route-withdraw@defra-1:3600-7200 "
                                 "(repeatable; seconds relative to --start)")
    catchments.add_argument("--json", action="store_true",
                            help="print the catchment analysis as JSON")

    resolvers = commands.add_parser(
        "resolvers",
        help="run a window with a public-resolver population and print "
             "the mapping-accuracy analysis",
    )
    resolvers.add_argument("--start", default="9-18", metavar="M-D",
                           help="start date in 2017 (default 9-18)")
    resolvers.add_argument("--end", default="9-20", metavar="M-D",
                           help="end date in 2017 (default 9-20)")
    resolvers.add_argument("--step", type=float, default=1800.0,
                           help="engine step in seconds (default 1800)")
    resolvers.add_argument("--probes", type=int, default=60,
                           help="global probe count (default 60)")
    resolvers.add_argument("--isp-probes", type=int, default=30,
                           help="ISP probe count (default 30)")
    resolvers.add_argument("--workers", type=int, default=1,
                           help="worker processes for the sharded engine "
                                "(default 1 = serial)")
    _add_resolver_args(resolvers, default_population="mixed")
    resolvers.add_argument("--json", action="store_true",
                           help="print the mapping-accuracy analysis as JSON")
    return parser


def _add_steering_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--steering", choices=("dns", "anycast", "hybrid"),
                     default="dns",
                     help="client steering mode: dns (the 15 s selection "
                          "CNAME), anycast (BGP catchments bypass DNS), or "
                          "hybrid (only the DNS share is broker-steerable)")
    sub.add_argument("--hybrid-dns-share", type=float, default=0.5,
                     metavar="FRACTION",
                     help="DNS-steered demand share under hybrid "
                          "(default 0.5)")


def _add_resolver_args(
    sub: argparse.ArgumentParser, *, default_population: str = "isp"
) -> None:
    sub.add_argument("--resolver-population",
                     choices=("isp", "public", "mixed"),
                     default=default_population,
                     help="who resolves for the probes: isp (per-client "
                          "resolvers), public (every probe behind a shared "
                          "POP cache), or mixed (--public-resolver-share "
                          f"of them; default {default_population})")
    sub.add_argument("--public-resolver-share", type=float, default=0.5,
                     metavar="FRACTION",
                     help="probe fraction behind public resolvers under "
                          "mixed (default 0.5)")
    sub.add_argument("--public-resolver-ecs", choices=("on", "off"),
                     default="on",
                     help="whether the POPs announce EDNS Client Subnet "
                          "upstream (default on)")
    sub.add_argument("--public-resolver-scope", type=int, default=24,
                     metavar="BITS",
                     help="ECS scope the POPs announce (default 24)")
    sub.add_argument("--public-resolver-cache-capacity", type=int,
                     default=4096, metavar="N",
                     help="live entries per shared POP cache (default 4096)")


def _resolver_config_kwargs(args: argparse.Namespace) -> dict:
    """ScenarioConfig keywords for the resolver-population flags."""
    return {
        "resolver_population": args.resolver_population,
        "public_resolver_share": args.public_resolver_share,
        "public_resolver_ecs": args.public_resolver_ecs == "on",
        "public_resolver_scope": args.public_resolver_scope,
        "public_resolver_cache_capacity": args.public_resolver_cache_capacity,
    }


def _parse_date(text: str) -> float:
    month, _, day = text.partition("-")
    try:
        return TIMELINE.at(int(month), int(day))
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"bad date {text!r}; expected M-D, e.g. 9-19") from exc


def _add_store_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--store-budget-mb", type=float, default=None,
                     metavar="MB",
                     help="in-memory budget per measurement store; sealed "
                          "columnar segments spill to disk beyond it "
                          "(default: unlimited, never spill)")
    sub.add_argument("--store-spill-dir", metavar="DIR", default=None,
                     help="directory for spilled segments (default: a "
                          "temporary directory, removed on exit)")


def _store_config_kwargs(args: argparse.Namespace) -> dict:
    """ScenarioConfig keywords for the measurement-store flags."""
    kwargs: dict = {}
    if args.store_budget_mb is not None:
        if args.store_budget_mb < 0:
            raise SystemExit("--store-budget-mb must be >= 0")
        kwargs["store_memory_budget_bytes"] = int(
            args.store_budget_mb * 1024 * 1024
        )
    if args.store_spill_dir is not None:
        kwargs["store_spill_dir"] = args.store_spill_dir
    return kwargs


def _store_stats_line(scenario) -> str:
    """One line of spill accounting for the campaign stores."""
    parts = []
    for store in (
        scenario.global_campaign.store,
        scenario.isp_campaign.store,
        scenario.traceroute_campaign.store,
    ):
        parts.append(
            f"{store.name}: {store.segment_count} segments "
            f"({store.spilled_segment_count} spilled, "
            f"{store.resident_bytes / 1024:.0f} KiB resident)"
        )
    return "store segments: " + "; ".join(parts)


def _add_checkpoint_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                     help="write an atomic RCKPT snapshot every N completed "
                          "ticks (default 0 = never); SIGTERM then drains "
                          "gracefully and writes a final checkpoint")
    sub.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                     help="directory for ckpt-*.rckpt files (required with "
                          "--checkpoint-every; `repro resume` defaults to "
                          "the --from directory)")


def _checkpoint_kwargs(args: argparse.Namespace) -> dict:
    """engine.run keywords for the checkpoint flags."""
    every = getattr(args, "checkpoint_every", 0)
    if every and not getattr(args, "checkpoint_dir", None):
        raise SystemExit("--checkpoint-every needs --checkpoint-dir")
    if not every:
        return {}
    return {
        "checkpoint_every": every,
        "checkpoint_dir": args.checkpoint_dir,
    }


def _add_flight_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--flight-dir", metavar="DIR", default=None,
                     help="arm the flight recorder: dump the span ring "
                          "buffer here when a chaos drill fails or shards "
                          "diverge")


def _flight_scope(args: argparse.Namespace):
    """The flight-recorder context for a command (no-op when unarmed)."""
    flight_dir = getattr(args, "flight_dir", None)
    if flight_dir is None:
        return nullcontext()
    return use_flight_recorder(FlightRecorder(flight_dir))


def _add_telemetry_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write Prometheus-style metrics here after the run")
    sub.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write the JSONL event trace here after the run")
    sub.add_argument("--verbose", action="store_true",
                     help="per-step progress lines plus a metrics summary")


def _telemetry(args: argparse.Namespace):
    """Registry/tracer handles for a command, per its flags.

    Any telemetry flag switches the real implementations in; otherwise
    the null handles keep the hot paths on their no-op singletons.
    """
    wanted = args.verbose or args.metrics_out or args.trace_out
    # Fail on an unwritable output path now, not after the whole run.
    for path in (args.metrics_out, args.trace_out):
        if path:
            try:
                with open(path, "w", encoding="utf-8"):
                    pass
            except OSError as exc:
                raise SystemExit(f"cannot write {path}: {exc}") from exc
    registry = MetricsRegistry() if wanted else NULL_REGISTRY
    tracer = EventTracer() if wanted else NULL_TRACER
    return registry, tracer


def _write_telemetry(args, registry, tracer) -> None:
    if args.metrics_out:
        write_metrics(registry, args.metrics_out)
        print(f"metrics written to {args.metrics_out} ({len(registry)} families)")
    if args.trace_out:
        write_trace(tracer, args.trace_out)
        print(f"trace written to {args.trace_out} ({len(tracer)} records)")
    if args.verbose and registry.enabled:
        print()
        print(summary_table(registry))


def _step_line(report) -> str:
    day = TIMELINE.date_label(report.now)
    seconds = int(report.now % 86400.0)
    clock = f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}"
    split = ", ".join(
        f"{op}={gbps:.0f}G" for op, gbps in sorted(report.operator_gbps.items())
    )
    return (f"  {day} {clock}  EU "
            f"{report.demand_gbps[MappingRegion.EU]:7.0f} Gbps  [{split}]  "
            f"meas={report.measurements} flows={report.flows}")


def _parse_fault_schedule(args: argparse.Namespace, start: float):
    """The --fault specs as a FaultSchedule anchored at ``start``.

    Spec times are written relative to the window start (easier to type
    than absolute timeline seconds), so shift them onto the timeline.
    """
    if not getattr(args, "fault", None):
        return None
    from .faults import FaultSchedule

    try:
        return FaultSchedule.parse(args.fault).shifted(start)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_simulate(args: argparse.Namespace) -> int:
    start = _parse_date(args.start)
    end = _parse_date(args.end)
    registry, tracer = _telemetry(args)
    with use_registry(registry), use_tracer(tracer), _flight_scope(args):
        scenario = Sep2017Scenario(
            ScenarioConfig(
                global_probe_count=args.probes,
                isp_probe_count=args.isp_probes,
                steering=args.steering,
                hybrid_dns_share=args.hybrid_dns_share,
                **_resolver_config_kwargs(args),
                **_store_config_kwargs(args),
            ),
            faults=_parse_fault_schedule(args, start),
        )
        engine = SimulationEngine(scenario, step_seconds=args.step)

        day_cursor = [None]

        def progress(report):
            day = TIMELINE.date_label(report.now)
            if day != day_cursor[0]:
                day_cursor[0] = day
                split = ", ".join(
                    f"{op}={gbps:.0f}G"
                    for op, gbps in sorted(report.operator_gbps.items())
                )
                print(f"{day}: EU demand "
                      f"{report.demand_gbps[MappingRegion.EU]:.0f} Gbps ({split})")
            if args.verbose:
                print(_step_line(report))

        steps = engine.run(start, end, progress=progress, workers=args.workers,
                           **_checkpoint_kwargs(args))
        if engine.run_stats["drained"]:
            print("SIGTERM: drained gracefully "
                  f"({engine.run_stats['checkpoints_written']} checkpoints "
                  "written; `repro resume` continues the run)")
    print(f"\n{steps} steps; "
          f"{scenario.global_campaign.store.dns_count} global + "
          f"{scenario.isp_campaign.store.dns_count} ISP DNS measurements; "
          f"{len(scenario.netflow.records)} flow records")
    if scenario.anycast is not None:
        from .anycast import CatchmentAnalysis

        analysis = CatchmentAnalysis.from_plane(scenario.anycast)
        print(f"anycast ({args.steering} steering): "
              f"{analysis.sites_live} sites live, "
              f"{analysis.map_changes} catchment-map changes, "
              f"{analysis.shifted_gbps_total:.0f} Gbps shifted, "
              f"mapping distance {analysis.mapping_distance_km:.0f} km "
              f"(+{analysis.mapping_distance_delta_km:.0f} vs nearest-site)")
    if scenario.resolver_plane is not None:
        from .analysis import ResolverAccuracy

        accuracy = ResolverAccuracy.from_scenario(scenario)
        print(f"resolvers ({args.resolver_population} population): "
              f"{accuracy.public_probes} public / {accuracy.isp_probes} ISP "
              f"probes, {accuracy.pops_live} POPs live, "
              f"shared-cache hit ratio {accuracy.public_hit_ratio:.1%} "
              f"(dilution {accuracy.cache_hit_dilution:+.1%} vs ISP), "
              f"mis-mapping {accuracy.public_mismap_delta_km:+.0f} km "
              f"vs nearest edge")
    if args.store_budget_mb is not None or args.store_spill_dir is not None:
        print(_store_stats_line(scenario))
    _write_telemetry(args, registry, tracer)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    registry, tracer = _telemetry(args)
    with use_registry(registry), use_tracer(tracer), _flight_scope(args):
        scenario = Sep2017Scenario(
            ScenarioConfig(
                global_probe_count=args.probes,
                isp_probe_count=args.isp_probes,
                steering=args.steering,
                hybrid_dns_share=args.hybrid_dns_share,
                **_resolver_config_kwargs(args),
                **_store_config_kwargs(args),
            )
        )
        engine = SimulationEngine(scenario, step_seconds=args.step)
        engine.run(
            TIMELINE.at(9, 15), TIMELINE.at(9, 23),
            progress=(lambda r: print(_step_line(r))) if args.verbose else None,
            workers=args.workers,
            **_checkpoint_kwargs(args),
        )
    print(generate_report(scenario))
    if args.store_budget_mb is not None or args.store_spill_dir is not None:
        print()
        print(_store_stats_line(scenario))
    _write_telemetry(args, registry, tracer)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    import os

    from .simulation.checkpoint import CheckpointError, load_checkpoint

    try:
        checkpoint = load_checkpoint(args.from_path)
    except CheckpointError as exc:
        raise SystemExit(str(exc)) from exc
    end = _parse_date(args.end) if args.end else None
    checkpoint_kwargs: dict = {}
    if args.checkpoint_every:
        # Resuming from a directory keeps checkpointing into it unless
        # told otherwise.
        directory = args.checkpoint_dir
        if directory is None and os.path.isdir(args.from_path):
            directory = args.from_path
        if directory is None:
            raise SystemExit("--checkpoint-every needs --checkpoint-dir")
        checkpoint_kwargs = {
            "checkpoint_every": args.checkpoint_every,
            "checkpoint_dir": directory,
        }
    registry, tracer = _telemetry(args)
    with use_registry(registry), use_tracer(tracer), _flight_scope(args):
        engine = checkpoint.spec.build()
        scenario = engine.scenario

        def progress(report):
            if args.verbose:
                print(_step_line(report))

        try:
            steps = engine.run(
                end=end,
                progress=progress,
                workers=args.workers,
                resume_from=checkpoint,
                **checkpoint_kwargs,
            )
        except CheckpointError as exc:
            raise SystemExit(str(exc)) from exc
    print(f"resumed from step {checkpoint.steps} "
          f"(t={TIMELINE.date_label(checkpoint.next_tick)}): "
          f"{steps} further steps; "
          f"{scenario.global_campaign.store.dns_count} global + "
          f"{scenario.isp_campaign.store.dns_count} ISP DNS measurements; "
          f"{len(scenario.netflow.records)} flow records")
    if engine.run_stats["drained"]:
        print("SIGTERM: drained gracefully "
              f"({engine.run_stats['checkpoints_written']} checkpoints "
              "written; `repro resume` continues the run)")
    _write_telemetry(args, registry, tracer)
    return 0


def _cmd_catchments(args: argparse.Namespace) -> int:
    import json

    from .anycast import CatchmentAnalysis

    start = _parse_date(args.start)
    end = _parse_date(args.end)
    scenario = Sep2017Scenario(
        ScenarioConfig(
            global_probe_count=args.probes,
            isp_probe_count=args.isp_probes,
            steering=args.steering,
        ),
        faults=_parse_fault_schedule(args, start),
    )
    engine = SimulationEngine(scenario, step_seconds=args.step)
    engine.run(start, end, workers=args.workers)
    plane = scenario.anycast
    assert plane is not None  # steering is never "dns" here
    final_map = plane.catchment_map(end)
    analysis = CatchmentAnalysis.from_plane(plane)
    if args.json:
        print(json.dumps(
            {
                "steering": args.steering,
                "catchments": analysis.to_json_dict(),
                "final_map": final_map.to_json_dict(),
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(f"catchment map at {TIMELINE.date_label(end)} "
          f"({args.steering} steering, {len(plane.groups)} client groups, "
          f"{len(plane.sites)} sites, signature {final_map.signature[:16]}):")
    for site_id, share in final_map.share_by_site().items():
        site = plane.site_by_id[site_id]
        bar = "#" * max(1, round(share * 40))
        print(f"  {site_id:<12} {share * 100:5.1f}%  "
              f"({site.region.value}) {bar}")
    print()
    print(f"ticks observed        {analysis.ticks}")
    print(f"sites live            {analysis.sites_live} / {len(plane.sites)}")
    print(f"catchment-map changes {analysis.map_changes}")
    print(f"affinity-break rate   {analysis.affinity_break_rate:.4f} "
          f"(group-moves per group per tick)")
    print(f"shifted traffic       {analysis.shifted_gbps_total:.1f} Gbps")
    print(f"mapping distance      {analysis.mapping_distance_km:.0f} km mean "
          f"(nearest-site ideal {analysis.nearest_distance_km:.0f} km, "
          f"anycast cost +{analysis.mapping_distance_delta_km:.0f} km)")
    return 0


def _cmd_resolvers(args: argparse.Namespace) -> int:
    import json

    from .analysis import ResolverAccuracy

    if args.resolver_population == "isp":
        raise SystemExit(
            "`repro resolvers` needs a public-resolver population; "
            "pass --resolver-population public or mixed"
        )
    start = _parse_date(args.start)
    end = _parse_date(args.end)
    scenario = Sep2017Scenario(
        ScenarioConfig(
            global_probe_count=args.probes,
            isp_probe_count=args.isp_probes,
            **_resolver_config_kwargs(args),
        )
    )
    engine = SimulationEngine(scenario, step_seconds=args.step)
    engine.run(start, end, workers=args.workers)
    accuracy = ResolverAccuracy.from_scenario(scenario)
    if args.json:
        print(json.dumps(accuracy.to_json_dict(), indent=2, sort_keys=True))
        return 0
    print(accuracy.render())
    return 0


def _cmd_survey(_args: argparse.Namespace) -> int:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    estate = scenario.estate
    vantage_points = (
        (Continent.EUROPE, "de", (50.11, 8.68)),
        (Continent.NORTH_AMERICA, "us", (40.71, -74.0)),
        (Continent.ASIA, "jp", (35.67, 139.65)),
        (Continent.ASIA, "in", (19.07, 72.87)),
        (Continent.SOUTH_AMERICA, "br", (-23.55, -46.63)),
    )
    resolutions = []
    for load in (0.0, 1e6):
        for region in MappingRegion:
            estate.controller.observe_demand(region, load)
        for index in range(20):
            for continent, country, coords in vantage_points:
                context = QueryContext(
                    client=IPv4Address.parse(f"198.51.{index}.1"),
                    coordinates=Coordinates(*coords),
                    continent=continent,
                    country=country,
                    now=0.0,
                )
                resolutions.append(
                    estate.resolver(cache=False).resolve(
                        estate.names.entry_point, context
                    )
                )
    for region in MappingRegion:
        estate.controller.observe_demand(region, 0.0)
    print(MappingGraph.from_resolutions(resolutions).render())
    print()
    # Delegation attribution, dig-+trace style.
    tree = DelegationTree(estate.servers)
    for name in (
        estate.names.entry_point,
        estate.names.akadns_entry,
        estate.names.selection,
        estate.names.limelight_us_eu,
    ):
        print(tree.trace(name).render())
        print()
    print(discover_sites(estate.apple.reverse_dns_table()).render())
    print()
    site = estate.apple.sites[0]
    samples = []
    for vip in site.vip_addresses[:2]:
        for index in range(10):
            request = HttpRequest(
                "GET", "appldnld.apple.com", f"/survey/file{index}.ipsw",
                headers=Headers({"X-Client": f"198.51.99.{index}"}),
            )
            samples.append((vip, estate.apple.serve(vip, request, 1000).response))
    print(infer_hierarchy(samples).render())
    return 0


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad endpoint {text!r}; expected HOST:PORT")
    return host, int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers > 1:
        return _cmd_serve_fleet(args)
    # A standing server always carries live instruments — that is what
    # the admin endpoint (and `repro top`) reads.  Installed ambiently
    # so the estate's construction-time cache counters land in the same
    # registry the admin plane exposes.
    registry = MetricsRegistry()
    tracer = EventTracer()

    async def _run() -> None:
        cluster = ServeCluster(
            config=ClusterConfig(
                object_size=args.object_size,
                **_resolver_config_kwargs(args),
            ),
            metrics=registry,
            tracer=tracer,
        )
        await cluster.start(
            host=args.host, dns_port=args.dns_port, http_port=args.http_port,
            resolver_port=args.resolver_port, admin_port=args.admin_port,
        )
        dns_host, dns_port = cluster.dns.endpoint
        http_host, http_port = cluster.http.endpoint
        admin_host, admin_port = cluster.admin.endpoint
        print(f"dns   {dns_host}:{dns_port}  (udp + tcp fallback)")
        print(f"http  {http_host}:{http_port}")
        if cluster.resolver_front is not None:
            res_host, res_port = cluster.resolver_front.endpoint
            print(f"rslv  {res_host}:{res_port}  "
                  f"(public-resolver front, {args.resolver_population} "
                  f"population)")
        print(f"admin {admin_host}:{admin_port}  (/metrics /healthz /traces)")
        print("serving the Figure 2 estate; Ctrl-C to stop")
        try:
            await asyncio.Event().wait()
        finally:
            await cluster.stop()

    try:
        with use_registry(registry), use_tracer(tracer):
            asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """`repro serve --workers N`: a reuseport fleet + merged admin plane."""
    from .serve import AdminServer, FleetConfig, ServeFleet

    fleet = ServeFleet(FleetConfig(
        workers=args.workers,
        cluster=ClusterConfig(
            object_size=args.object_size,
            **_resolver_config_kwargs(args),
        ),
    ))
    fleet.start(
        host=args.host, dns_port=args.dns_port, http_port=args.http_port
    )

    async def _run() -> None:
        # One admin plane in the parent; every scrape merges the latest
        # registry snapshot from each worker.
        admin = AdminServer(
            registry=MetricsRegistry(),
            registry_provider=fleet.admin_registry_provider(),
        )
        await admin.start(host=args.host, port=args.admin_port)
        dns_host, dns_port = fleet.dns_endpoint
        http_host, http_port = fleet.http_endpoint
        admin_host, admin_port = admin.endpoint
        print(f"dns   {dns_host}:{dns_port}  (udp + tcp fallback, "
              f"{args.workers} reuseport workers)")
        print(f"http  {http_host}:{http_port}")
        if fleet.resolver_endpoint is not None:
            res_host, res_port = fleet.resolver_endpoint
            print(f"rslv  {res_host}:{res_port}  "
                  f"(public-resolver front, shared across workers)")
        print(f"admin {admin_host}:{admin_port}  (/metrics merges all workers)")
        print("serving the Figure 2 estate; Ctrl-C to stop")
        try:
            await asyncio.Event().wait()
        finally:
            await admin.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        fleet.stop()
    return 0


def _trace_stats_line(tracer) -> Optional[str]:
    """Span accounting for the run report; None for the null tracer."""
    if not isinstance(tracer, EventTracer):
        return None
    stats = tracer.stats()
    return (
        f"tracing: {stats['emitted']} spans emitted, "
        f"{stats['sampled_out']} sampled out, {stats['dropped']} dropped"
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    arrival = None
    if args.arrival is not None:
        from .workload.arrival import ArrivalSchedule

        arrival = ArrivalSchedule.named(
            args.arrival, args.requests, args.duration or 10.0
        )
    elif args.duration is not None:
        raise SystemExit("--duration requires --arrival")
    if args.public_resolver_share > 0.0 and args.resolver is None:
        raise SystemExit("--public-resolver-share requires --resolver")
    resolver_endpoint = (
        _parse_endpoint(args.resolver) if args.resolver is not None else None
    )
    config = LoadConfig(
        requests=args.requests,
        concurrency=args.concurrency,
        trace_sample=args.trace_sample,
        arrival=arrival,
        public_resolver_share=(
            args.public_resolver_share if resolver_endpoint is not None
            else 0.0
        ),
    )
    if args.processes > 1:
        if args.trace_out:
            raise SystemExit(
                "--trace-out needs the in-process generator (--processes 1)"
            )
        from .serve import run_loadgen_fleet

        report = run_loadgen_fleet(
            _parse_endpoint(args.dns), _parse_endpoint(args.http),
            config, args.processes,
            resolver_endpoint=resolver_endpoint,
        )
        print(report.render())
        return 0 if report.healthy() else 1
    # A live tracer whenever spans are wanted on disk or sampling is in
    # play (sampled-out counts are part of the report either way).
    traced = bool(args.trace_out) or args.trace_sample < 1.0
    tracer = EventTracer() if traced else NULL_TRACER
    generator = LoadGenerator(
        dns_endpoint=_parse_endpoint(args.dns),
        http_endpoint=_parse_endpoint(args.http),
        directory=ClientDirectory.from_adoption(),
        config=config,
        tracer=tracer,
        resolver_endpoint=resolver_endpoint,
    )
    report = asyncio.run(generator.run())
    print(report.render())
    stats_line = _trace_stats_line(tracer)
    if stats_line:
        print(stats_line)
    if args.trace_out:
        write_trace(tracer, args.trace_out)
        print(f"trace written to {args.trace_out} ({len(tracer)} records)")
    return 0 if report.healthy() else 1


def _cmd_selftest(args: argparse.Namespace) -> int:
    cluster_config = ClusterConfig(**_resolver_config_kwargs(args))
    if args.workers > 1:
        from .serve import fleet_selftest, render_fleet_selftest

        result = fleet_selftest(
            workers=args.workers,
            requests=args.requests,
            concurrency=args.concurrency,
            processes=args.processes,
            arrival=args.arrival,
            duration=args.duration,
            cluster_config=cluster_config,
        )
        print(render_fleet_selftest(result, qps_floor=args.qps_floor))
        return 0 if result.passed(qps_floor=args.qps_floor) else 1
    traced = bool(args.trace_out) or args.trace_sample < 1.0
    tracer = EventTracer() if traced else NULL_TRACER
    report, registry = selftest(
        requests=args.requests,
        concurrency=args.concurrency,
        cluster_config=cluster_config,
        tracer=tracer,
        trace_sample=args.trace_sample,
    )
    print(render_selftest(report, registry, qps_floor=args.qps_floor))
    stats_line = _trace_stats_line(tracer)
    if stats_line:
        print(stats_line)
    if args.trace_out:
        write_trace(tracer, args.trace_out)
        print(f"trace written to {args.trace_out} ({len(tracer)} records)")
    checks = selftest_checks(report, registry, qps_floor=args.qps_floor)
    return 0 if all(passed for _, passed in checks) else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily: repro.faults.chaos pulls in the serving layer.
    from .faults import FaultSchedule
    from .faults.chaos import ChaosConfig, run_chaos

    schedule = None
    if args.fault:
        try:
            schedule = FaultSchedule.parse(args.fault)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    config = ChaosConfig(
        seed=args.seed,
        schedule=schedule,
        concurrency=args.concurrency,
        error_budget=args.error_budget,
        run_simulation=not args.skip_simulation,
        workers=args.workers,
        steering=args.steering,
        serve_workers=args.serve_workers,
    )
    with _flight_scope(args):
        report, _registry, _tracer = run_chaos(config)
    print(report.render())
    return 0 if report.passed() else 1


# ----------------------------------------------------------------------
# top: the live dashboard
# ----------------------------------------------------------------------


def _sample_sum(families, name: str, want=None) -> float:
    """Sum a counter family's samples, optionally filtering on labels."""
    family = families.get(name)
    if family is None:
        return 0.0
    total = 0.0
    for (sample_name, labelitems), value in family.samples.items():
        if sample_name != name:
            continue
        labels = dict(labelitems)
        if want is not None and not want(labels):
            continue
        total += value
    return total


def _panel_percentiles(families, name: str) -> Optional[dict]:
    family = families.get(name)
    if family is None:
        return None
    try:
        child = parsed_histogram(family)
    except ValueError:
        return None
    return {k: v * 1000.0 for k, v in child.percentile_summary().items()}


def render_top_panel(
    families: dict, previous: Optional[dict], elapsed: float
) -> str:
    """One `repro top` frame from (current, previous) /metrics scrapes.

    Rates (qps / rps) need two scrapes; on the first frame they render
    as ``-``.  Ratios and percentiles come from the cumulative state.
    """
    dns_now = _sample_sum(families, "serve_dns_queries_total")
    http_now = _sample_sum(families, "serve_http_requests_total")
    if previous is not None and elapsed > 0:
        dns_prev = _sample_sum(previous, "serve_dns_queries_total")
        http_prev = _sample_sum(previous, "serve_http_requests_total")
        qps = f"{max(0.0, dns_now - dns_prev) / elapsed:8.1f}"
        rps = f"{max(0.0, http_now - http_prev) / elapsed:8.1f}"
    else:
        qps = rps = f"{'-':>8}"
    hits = _sample_sum(
        families, "cache_requests_total", lambda l: "hit" in l.values()
    )
    lookups = _sample_sum(families, "cache_requests_total")
    hit_line = f"{hits / lookups:6.1%}" if lookups else "     -"
    errors = _sample_sum(
        families,
        "serve_http_requests_total",
        lambda l: l.get("status", "").startswith(("4", "5")),
    )
    error_line = f"{errors / http_now:6.1%}" if http_now else "     -"
    lines = [
        f"dns {qps} qps    http {rps} rps    "
        f"cache hit {hit_line}    errors {error_line}",
    ]
    for label, name in (
        ("dns handle ms ", "serve_dns_handle_seconds"),
        ("http handle ms", "serve_http_handle_seconds"),
    ):
        panel = _panel_percentiles(families, name)
        if panel is None:
            lines.append(f"{label}  (no samples yet)")
        else:
            lines.append(
                f"{label}  p50 {panel['p50']:7.3f}  p95 {panel['p95']:7.3f}  "
                f"p99 {panel['p99']:7.3f}  p999 {panel['p999']:7.3f}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    host, port = _parse_endpoint(args.endpoint)
    url = f"http://{host}:{port}/metrics"
    previous: Optional[dict] = None
    last_ts: Optional[float] = None
    iteration = 0
    try:
        while args.iterations <= 0 or iteration < args.iterations:
            if iteration:
                time.sleep(args.interval)
            try:
                with urllib.request.urlopen(url, timeout=10.0) as response:
                    text = response.read().decode("utf-8")
            except OSError as exc:
                raise SystemExit(f"cannot scrape {url}: {exc}") from exc
            families = parse_exposition(text)
            now = time.monotonic()
            elapsed = (now - last_ts) if last_ts is not None else 0.0
            print(f"-- {args.endpoint}  frame {iteration + 1} --")
            print(render_top_panel(families, previous, elapsed))
            previous, last_ts = families, now
            iteration += 1
    except KeyboardInterrupt:
        pass
    return 0


# ----------------------------------------------------------------------
# profile: per-worker per-phase engine timings
# ----------------------------------------------------------------------


def render_profile(registry) -> str:
    """The `engine_phase_seconds` family as a per-worker breakdown."""
    family = registry.get("engine_phase_seconds")
    if family is None:
        return "(no phase timings recorded)"
    rows = []
    worker_totals: dict[str, float] = {}
    for (phase, worker), child in family.children():
        rows.append((worker, phase, child))
        worker_totals[worker] = worker_totals.get(worker, 0.0) + child.sum
    if not rows:
        return "(no phase timings recorded)"
    lines = [
        f"{'worker':<8} {'phase':<12} {'ticks':>7} {'total s':>9} "
        f"{'mean ms':>9} {'p95 ms':>9} {'share':>7}",
    ]
    lines.append("-" * len(lines[0]))
    for worker, phase, child in sorted(rows, key=lambda r: (r[0], r[1])):
        total = worker_totals[worker]
        share = child.sum / total if total > 0 else 0.0
        mean_ms = (child.sum / child.count * 1000.0) if child.count else 0.0
        lines.append(
            f"{worker:<8} {phase:<12} {child.count:>7} {child.sum:>9.3f} "
            f"{mean_ms:>9.3f} {child.quantile(0.95) * 1000.0:>9.3f} "
            f"{share:>7.1%}"
        )
    lines.append("")
    for worker in sorted(worker_totals):
        lines.append(f"{worker}: {worker_totals[worker]:.3f} s total phase time")
    return "\n".join(lines)


def _cmd_profile(args: argparse.Namespace) -> int:
    start = _parse_date(args.start)
    end = _parse_date(args.end)
    registry = MetricsRegistry()
    with use_registry(registry), _flight_scope(args):
        scenario = Sep2017Scenario(
            ScenarioConfig(
                global_probe_count=args.probes,
                isp_probe_count=args.isp_probes,
            )
        )
        engine = SimulationEngine(scenario, step_seconds=args.step)
        steps = engine.run(start, end, workers=args.workers)
    print(f"{steps} steps over workers={args.workers}")
    print()
    print(render_profile(registry))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "run": _cmd_simulate,
        "report": _cmd_report,
        "resume": _cmd_resume,
        "survey": _cmd_survey,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "selftest": _cmd_selftest,
        "chaos": _cmd_chaos,
        "top": _cmd_top,
        "profile": _cmd_profile,
        "catchments": _cmd_catchments,
        "resolvers": _cmd_resolvers,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
