"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the common workflows:

* ``simulate`` — run the Sep-2017 scenario over a date window and print
  per-step aggregates (demand, offload split, measurements, flows);
* ``report`` — run the event window and emit the full reproduction
  report (Figures 2-8 in one document);
* ``survey`` — the paper's generic CDN-survey methodology: mapping
  graph, site discovery and header inference, no time simulation;
* ``serve`` — boot the live DNS + HTTP serving layer on loopback and
  keep it up for external clients (``dig``, ``curl``, the loadgen);
* ``loadgen`` — drive the closed-loop load generator against an
  already-running serve endpoint pair;
* ``selftest`` — boot a cluster, drive a full load run through it and
  verify throughput, latency and cache health in one shot;
* ``chaos`` — the fault-injection drill: scheduled outages against the
  live cluster plus an engine-time blackout, gated on error rate,
  re-steer time and recovery.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from .analysis import MappingGraph, discover_sites, infer_hierarchy
from .analysis.report import generate_report
from .dns.query import QueryContext
from .dns.trace import DelegationTree
from .http.messages import Headers, HttpRequest
from .net.geo import Continent, Coordinates, MappingRegion
from .net.ipv4 import IPv4Address
from .obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    EventTracer,
    MetricsRegistry,
    summary_table,
    use_registry,
    use_tracer,
    write_metrics,
    write_trace,
)
from .serve import (
    ClientDirectory,
    ClusterConfig,
    LoadConfig,
    LoadGenerator,
    ServeCluster,
    render_selftest,
    selftest,
    selftest_checks,
)
from .simulation import ScenarioConfig, Sep2017Scenario, SimulationEngine
from .workload import TIMELINE

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dissecting Apple's Meta-CDN during "
                    "an iOS Update' (IMC 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", aliases=["run"],
        help="run the Sep-2017 scenario over a date window",
    )
    simulate.add_argument("--start", default="9-17", metavar="M-D",
                          help="start date in 2017 (default 9-17)")
    simulate.add_argument("--end", default="9-21", metavar="M-D",
                          help="end date in 2017 (default 9-21)")
    simulate.add_argument("--step", type=float, default=1800.0,
                          help="engine step in seconds (default 1800)")
    simulate.add_argument("--probes", type=int, default=60,
                          help="global probe count (default 60)")
    simulate.add_argument("--isp-probes", type=int, default=30,
                          help="ISP probe count (default 30)")
    simulate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the sharded engine "
                               "(default 1 = serial)")
    _add_store_args(simulate)
    _add_telemetry_args(simulate)

    report = commands.add_parser(
        "report", help="run the event window and print the full report"
    )
    report.add_argument("--probes", type=int, default=80)
    report.add_argument("--isp-probes", type=int, default=40)
    report.add_argument("--step", type=float, default=1800.0)
    report.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sharded engine "
                             "(default 1 = serial)")
    _add_store_args(report)
    _add_telemetry_args(report)

    commands.add_parser(
        "survey", help="survey the mapping chain, sites and headers"
    )

    serve = commands.add_parser(
        "serve", help="boot the live DNS + HTTP serving layer and keep it up"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind both servers on (default loopback)")
    serve.add_argument("--dns-port", type=int, default=5333,
                       help="DNS port, UDP and TCP (default 5333; 0 = ephemeral)")
    serve.add_argument("--http-port", type=int, default=8080,
                       help="HTTP edge port (default 8080; 0 = ephemeral)")
    serve.add_argument("--object-size", type=int, default=262_144,
                       help="modelled entity size in bytes (default 256 KiB)")

    loadgen = commands.add_parser(
        "loadgen", help="drive the load generator against a running serve pair"
    )
    loadgen.add_argument("--dns", required=True, metavar="HOST:PORT",
                         help="DNS endpoint of a running `repro serve`")
    loadgen.add_argument("--http", required=True, metavar="HOST:PORT",
                         help="HTTP endpoint of a running `repro serve`")
    loadgen.add_argument("--requests", type=int, default=1000)
    loadgen.add_argument("--concurrency", type=int, default=32)

    selftest_cmd = commands.add_parser(
        "selftest", help="boot a loopback cluster, drive it, verify health"
    )
    selftest_cmd.add_argument("--requests", type=int, default=5000,
                              help="closed-loop requests to drive (default 5000)")
    selftest_cmd.add_argument("--concurrency", type=int, default=64,
                              help="concurrent workers (default 64)")
    selftest_cmd.add_argument("--qps-floor", type=float, default=1000.0,
                              help="required sustained DNS qps (default 1000)")

    chaos = commands.add_parser(
        "chaos", help="run the fault-injection drill against live + engine"
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="seed for probabilistic fault decisions (default 7)")
    chaos.add_argument("--concurrency", type=int, default=16,
                       help="concurrent load workers (default 16)")
    chaos.add_argument("--error-budget", type=float, default=0.02,
                       help="max tolerated client error rate (default 0.02)")
    chaos.add_argument("--fault", action="append", default=None, metavar="SPEC",
                       help="fault window as kind@target:start-end[:severity], "
                            "e.g. cdn-blackout@Limelight:3-9 (repeatable; "
                            "default: the standard drill)")
    chaos.add_argument("--skip-simulation", action="store_true",
                       help="run only the live phase")
    chaos.add_argument("--workers", type=int, default=1,
                       help="worker processes for the simulation phase "
                            "(default 1 = serial)")
    return parser


def _parse_date(text: str) -> float:
    month, _, day = text.partition("-")
    try:
        return TIMELINE.at(int(month), int(day))
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"bad date {text!r}; expected M-D, e.g. 9-19") from exc


def _add_store_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--store-budget-mb", type=float, default=None,
                     metavar="MB",
                     help="in-memory budget per measurement store; sealed "
                          "columnar segments spill to disk beyond it "
                          "(default: unlimited, never spill)")
    sub.add_argument("--store-spill-dir", metavar="DIR", default=None,
                     help="directory for spilled segments (default: a "
                          "temporary directory, removed on exit)")


def _store_config_kwargs(args: argparse.Namespace) -> dict:
    """ScenarioConfig keywords for the measurement-store flags."""
    kwargs: dict = {}
    if args.store_budget_mb is not None:
        if args.store_budget_mb < 0:
            raise SystemExit("--store-budget-mb must be >= 0")
        kwargs["store_memory_budget_bytes"] = int(
            args.store_budget_mb * 1024 * 1024
        )
    if args.store_spill_dir is not None:
        kwargs["store_spill_dir"] = args.store_spill_dir
    return kwargs


def _store_stats_line(scenario) -> str:
    """One line of spill accounting for the campaign stores."""
    parts = []
    for store in (
        scenario.global_campaign.store,
        scenario.isp_campaign.store,
        scenario.traceroute_campaign.store,
    ):
        parts.append(
            f"{store.name}: {store.segment_count} segments "
            f"({store.spilled_segment_count} spilled, "
            f"{store.resident_bytes / 1024:.0f} KiB resident)"
        )
    return "store segments: " + "; ".join(parts)


def _add_telemetry_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write Prometheus-style metrics here after the run")
    sub.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write the JSONL event trace here after the run")
    sub.add_argument("--verbose", action="store_true",
                     help="per-step progress lines plus a metrics summary")


def _telemetry(args: argparse.Namespace):
    """Registry/tracer handles for a command, per its flags.

    Any telemetry flag switches the real implementations in; otherwise
    the null handles keep the hot paths on their no-op singletons.
    """
    wanted = args.verbose or args.metrics_out or args.trace_out
    # Fail on an unwritable output path now, not after the whole run.
    for path in (args.metrics_out, args.trace_out):
        if path:
            try:
                with open(path, "w", encoding="utf-8"):
                    pass
            except OSError as exc:
                raise SystemExit(f"cannot write {path}: {exc}") from exc
    registry = MetricsRegistry() if wanted else NULL_REGISTRY
    tracer = EventTracer() if wanted else NULL_TRACER
    return registry, tracer


def _write_telemetry(args, registry, tracer) -> None:
    if args.metrics_out:
        write_metrics(registry, args.metrics_out)
        print(f"metrics written to {args.metrics_out} ({len(registry)} families)")
    if args.trace_out:
        write_trace(tracer, args.trace_out)
        print(f"trace written to {args.trace_out} ({len(tracer)} records)")
    if args.verbose and registry.enabled:
        print()
        print(summary_table(registry))


def _step_line(report) -> str:
    day = TIMELINE.date_label(report.now)
    seconds = int(report.now % 86400.0)
    clock = f"{seconds // 3600:02d}:{seconds % 3600 // 60:02d}"
    split = ", ".join(
        f"{op}={gbps:.0f}G" for op, gbps in sorted(report.operator_gbps.items())
    )
    return (f"  {day} {clock}  EU "
            f"{report.demand_gbps[MappingRegion.EU]:7.0f} Gbps  [{split}]  "
            f"meas={report.measurements} flows={report.flows}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    start = _parse_date(args.start)
    end = _parse_date(args.end)
    registry, tracer = _telemetry(args)
    with use_registry(registry), use_tracer(tracer):
        scenario = Sep2017Scenario(
            ScenarioConfig(
                global_probe_count=args.probes,
                isp_probe_count=args.isp_probes,
                **_store_config_kwargs(args),
            )
        )
        engine = SimulationEngine(scenario, step_seconds=args.step)

        day_cursor = [None]

        def progress(report):
            day = TIMELINE.date_label(report.now)
            if day != day_cursor[0]:
                day_cursor[0] = day
                split = ", ".join(
                    f"{op}={gbps:.0f}G"
                    for op, gbps in sorted(report.operator_gbps.items())
                )
                print(f"{day}: EU demand "
                      f"{report.demand_gbps[MappingRegion.EU]:.0f} Gbps ({split})")
            if args.verbose:
                print(_step_line(report))

        steps = engine.run(start, end, progress=progress, workers=args.workers)
    print(f"\n{steps} steps; "
          f"{scenario.global_campaign.store.dns_count} global + "
          f"{scenario.isp_campaign.store.dns_count} ISP DNS measurements; "
          f"{len(scenario.netflow.records)} flow records")
    if args.store_budget_mb is not None or args.store_spill_dir is not None:
        print(_store_stats_line(scenario))
    _write_telemetry(args, registry, tracer)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    registry, tracer = _telemetry(args)
    with use_registry(registry), use_tracer(tracer):
        scenario = Sep2017Scenario(
            ScenarioConfig(
                global_probe_count=args.probes,
                isp_probe_count=args.isp_probes,
                **_store_config_kwargs(args),
            )
        )
        engine = SimulationEngine(scenario, step_seconds=args.step)
        engine.run(
            TIMELINE.at(9, 15), TIMELINE.at(9, 23),
            progress=(lambda r: print(_step_line(r))) if args.verbose else None,
            workers=args.workers,
        )
    print(generate_report(scenario))
    if args.store_budget_mb is not None or args.store_spill_dir is not None:
        print()
        print(_store_stats_line(scenario))
    _write_telemetry(args, registry, tracer)
    return 0


def _cmd_survey(_args: argparse.Namespace) -> int:
    scenario = Sep2017Scenario(
        ScenarioConfig(global_probe_count=1, isp_probe_count=1)
    )
    estate = scenario.estate
    vantage_points = (
        (Continent.EUROPE, "de", (50.11, 8.68)),
        (Continent.NORTH_AMERICA, "us", (40.71, -74.0)),
        (Continent.ASIA, "jp", (35.67, 139.65)),
        (Continent.ASIA, "in", (19.07, 72.87)),
        (Continent.SOUTH_AMERICA, "br", (-23.55, -46.63)),
    )
    resolutions = []
    for load in (0.0, 1e6):
        for region in MappingRegion:
            estate.controller.observe_demand(region, load)
        for index in range(20):
            for continent, country, coords in vantage_points:
                context = QueryContext(
                    client=IPv4Address.parse(f"198.51.{index}.1"),
                    coordinates=Coordinates(*coords),
                    continent=continent,
                    country=country,
                    now=0.0,
                )
                resolutions.append(
                    estate.resolver(cache=False).resolve(
                        estate.names.entry_point, context
                    )
                )
    for region in MappingRegion:
        estate.controller.observe_demand(region, 0.0)
    print(MappingGraph.from_resolutions(resolutions).render())
    print()
    # Delegation attribution, dig-+trace style.
    tree = DelegationTree(estate.servers)
    for name in (
        estate.names.entry_point,
        estate.names.akadns_entry,
        estate.names.selection,
        estate.names.limelight_us_eu,
    ):
        print(tree.trace(name).render())
        print()
    print(discover_sites(estate.apple.reverse_dns_table()).render())
    print()
    site = estate.apple.sites[0]
    samples = []
    for vip in site.vip_addresses[:2]:
        for index in range(10):
            request = HttpRequest(
                "GET", "appldnld.apple.com", f"/survey/file{index}.ipsw",
                headers=Headers({"X-Client": f"198.51.99.{index}"}),
            )
            samples.append((vip, estate.apple.serve(vip, request, 1000).response))
    print(infer_hierarchy(samples).render())
    return 0


def _parse_endpoint(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad endpoint {text!r}; expected HOST:PORT")
    return host, int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    async def _run() -> None:
        cluster = ServeCluster(
            config=ClusterConfig(object_size=args.object_size)
        )
        await cluster.start(
            host=args.host, dns_port=args.dns_port, http_port=args.http_port
        )
        dns_host, dns_port = cluster.dns.endpoint
        http_host, http_port = cluster.http.endpoint
        print(f"dns   {dns_host}:{dns_port}  (udp + tcp fallback)")
        print(f"http  {http_host}:{http_port}")
        print("serving the Figure 2 estate; Ctrl-C to stop")
        try:
            await asyncio.Event().wait()
        finally:
            await cluster.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    generator = LoadGenerator(
        dns_endpoint=_parse_endpoint(args.dns),
        http_endpoint=_parse_endpoint(args.http),
        directory=ClientDirectory.from_adoption(),
        config=LoadConfig(requests=args.requests, concurrency=args.concurrency),
    )
    report = asyncio.run(generator.run())
    print(report.render())
    return 0 if report.healthy() else 1


def _cmd_selftest(args: argparse.Namespace) -> int:
    report, registry = selftest(
        requests=args.requests, concurrency=args.concurrency
    )
    print(render_selftest(report, registry, qps_floor=args.qps_floor))
    checks = selftest_checks(report, registry, qps_floor=args.qps_floor)
    return 0 if all(passed for _, passed in checks) else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily: repro.faults.chaos pulls in the serving layer.
    from .faults import FaultSchedule
    from .faults.chaos import ChaosConfig, run_chaos

    schedule = None
    if args.fault:
        try:
            schedule = FaultSchedule.parse(args.fault)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    config = ChaosConfig(
        seed=args.seed,
        schedule=schedule,
        concurrency=args.concurrency,
        error_budget=args.error_budget,
        run_simulation=not args.skip_simulation,
        workers=args.workers,
    )
    report, _registry, _tracer = run_chaos(config)
    print(report.render())
    return 0 if report.passed() else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "run": _cmd_simulate,
        "report": _cmd_report,
        "survey": _cmd_survey,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "selftest": _cmd_selftest,
        "chaos": _cmd_chaos,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
