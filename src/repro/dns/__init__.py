"""DNS substrate: records, zones, answer policies, recursive resolution.

This subpackage models everything the paper's DNS measurements touch:
CNAME chains with per-hop TTLs, operator-attributed authoritative
servers, and the location/time/policy-dependent answers that implement
the Meta-CDN's request mapping.
"""

from .policies import (
    AnswerPolicy,
    CnamePolicy,
    CountrySplitPolicy,
    GslbAddressPolicy,
    RegionSplitPolicy,
    RoundRobinAddressPolicy,
    StaticPolicy,
    WeightSchedule,
    WeightedCnamePolicy,
    stable_fraction,
)
from .query import DnsResponse, Question, QueryContext, RCode
from .records import (
    ARecord,
    CnameRecord,
    PtrRecord,
    NameError_,
    RecordType,
    ResourceRecord,
    is_subdomain,
    normalize_name,
)
from .reverse import (
    address_from_reverse_name,
    build_ptr_zone,
    reverse_name,
    scan_ptr_records,
)
from .wire import (
    ClientSubnet,
    WireError,
    WireMessage,
    answer_wire,
    decode_message,
    decode_name,
    encode_message,
    encode_name,
)
from .resolver import (
    RecursiveResolver,
    Resolution,
    ResolutionError,
    ResolutionStep,
    ResolverCacheStats,
)
from .trace import DelegationTrace, DelegationTree, ReferralStep, dig_trace
from .zone import AuthoritativeServer, Zone

__all__ = [
    "RecordType",
    "ResourceRecord",
    "ARecord",
    "CnameRecord",
    "PtrRecord",
    "reverse_name",
    "address_from_reverse_name",
    "build_ptr_zone",
    "scan_ptr_records",
    "WireMessage",
    "WireError",
    "ClientSubnet",
    "encode_message",
    "decode_message",
    "encode_name",
    "decode_name",
    "answer_wire",
    "normalize_name",
    "is_subdomain",
    "NameError_",
    "Question",
    "QueryContext",
    "DnsResponse",
    "RCode",
    "AnswerPolicy",
    "StaticPolicy",
    "CnamePolicy",
    "CountrySplitPolicy",
    "RegionSplitPolicy",
    "WeightSchedule",
    "WeightedCnamePolicy",
    "GslbAddressPolicy",
    "RoundRobinAddressPolicy",
    "stable_fraction",
    "Zone",
    "AuthoritativeServer",
    "RecursiveResolver",
    "Resolution",
    "ResolutionStep",
    "ResolutionError",
    "ResolverCacheStats",
    "DelegationTree",
    "DelegationTrace",
    "ReferralStep",
    "dig_trace",
]
