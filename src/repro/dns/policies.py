"""Policy-driven authoritative answers.

Each decision point in the Figure 2 mapping chain is a DNS name whose
answer depends on the querying client, the current time, or operator
configuration:

* step 1: country split (India / China vs. the world) — Akamai akadns;
* step 2: Meta-CDN service — Apple selects its own CDN or hands over to
  the third-party selection, with a 15 s TTL for quick reroutes;
* step 3: per-region third-party CDN selection — Akamai akadns with
  operator-controlled distribution shares;
* step 4: Apple's own GSLB returning cache-server A records.

Policies are deterministic: selection hashes the client address and a
time bucket, so repeated runs and parallel analyses agree while the
population-level distribution still follows the configured weights.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Protocol, Sequence

from ..net.ipv4 import IPv4Address
from .query import QueryContext
from .records import ARecord, CnameRecord, ResourceRecord, normalize_name

__all__ = [
    "AnswerPolicy",
    "StaticPolicy",
    "CnamePolicy",
    "CountrySplitPolicy",
    "RegionSplitPolicy",
    "WeightSchedule",
    "WeightedCnamePolicy",
    "GslbAddressPolicy",
    "RoundRobinAddressPolicy",
    "stable_fraction",
]


class AnswerPolicy(Protocol):
    """Produces the answer records for one owner name."""

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        """Records answering a query for ``name`` from ``context``."""
        ...  # pragma: no cover - protocol


def stable_fraction(*parts: object) -> float:
    """A deterministic pseudo-uniform fraction in ``[0, 1)`` of the inputs.

    Used wherever a policy needs an unbiased but reproducible choice
    (weighted CDN selection, server rotation).  BLAKE2b keeps the value
    stable across processes, unlike Python's salted ``hash``.
    """
    digest = hashlib.blake2b(
        "|".join(str(part) for part in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


@dataclass(frozen=True)
class StaticPolicy:
    """Always answer with the same fixed records."""

    records: tuple[ResourceRecord, ...]

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        return self.records


@dataclass(frozen=True)
class CnamePolicy:
    """Unconditional CNAME redirect (e.g. the 21600 s entry-point hop)."""

    target: str
    ttl: int

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        return (CnameRecord(name, self.target, self.ttl),)


@dataclass(frozen=True)
class CountrySplitPolicy:
    """Step 1: route selected countries to dedicated targets.

    ``overrides`` maps ISO country codes to CNAME targets (the paper
    observed ``{china|india}-lb.itunes-apple.com.akadns.net``); everyone
    else goes to ``default``.
    """

    default: str
    overrides: Mapping[str, str]
    ttl: int

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        target = self.overrides.get(context.country, self.default)
        return (CnameRecord(name, target, self.ttl),)


@dataclass(frozen=True)
class RegionSplitPolicy:
    """Route by mapping region (us/eu/apac) to region-specific targets."""

    targets: Mapping[str, str]  # region value -> CNAME target
    ttl: int

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        region = context.region.value
        if region not in self.targets:
            raise KeyError(f"no target configured for region {region!r}")
        return (CnameRecord(name, self.targets[region], self.ttl),)


class WeightSchedule:
    """Time-varying CNAME target weights.

    The Meta-CDN operator changes distribution shares over time — most
    visibly six hours into the iOS 11 rollout, when Akamai's
    ``a1015.gi3.akamai.net`` entered the EU chain.  A schedule is a
    sorted sequence of ``(effective_from, {target: weight})`` steps; the
    weights in force at time ``t`` come from the last step at or before
    ``t``.
    """

    def __init__(self, steps: Iterable[tuple[float, Mapping[str, float]]]) -> None:
        ordered = sorted(steps, key=lambda step: step[0])
        if not ordered:
            raise ValueError("empty weight schedule")
        self._steps: list[tuple[float, dict[str, float]]] = []
        for effective_from, weights in ordered:
            cleaned = {
                normalize_name(target): float(weight)
                for target, weight in weights.items()
                if weight > 0.0
            }
            if not cleaned:
                raise ValueError(f"no positive weights at t={effective_from}")
            self._steps.append((float(effective_from), cleaned))

    @classmethod
    def constant(cls, weights: Mapping[str, float]) -> "WeightSchedule":
        """A schedule with a single, always-active step."""
        return cls([(float("-inf"), weights)])

    def weights_at(self, now: float) -> dict[str, float]:
        """The weight map in force at time ``now``."""
        active = self._steps[0][1]
        for effective_from, weights in self._steps:
            if effective_from <= now:
                active = weights
            else:
                break
        return active

    def targets_at(self, now: float) -> tuple[str, ...]:
        """The targets with positive weight at ``now``, sorted."""
        return tuple(sorted(self.weights_at(now)))

    def change_times(self) -> tuple[float, ...]:
        """The times at which the schedule switches steps."""
        return tuple(step[0] for step in self._steps)


@dataclass(frozen=True)
class WeightedCnamePolicy:
    """Steps 2 and 3: weighted choice among CNAME targets.

    The choice is sticky per ``(client, TTL bucket)``: a client keeps its
    CDN for one TTL interval, then may be remapped — exactly the quick
    reroute behaviour the 15 s TTL exists to enable.
    """

    schedule: WeightSchedule
    ttl: int
    salt: str = ""

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        target = self.select(name, context)
        return (CnameRecord(name, target, self.ttl),)

    def select(self, name: str, context: QueryContext) -> str:
        """The CNAME target chosen for this client at this time."""
        weights = self.schedule.weights_at(context.now)
        bucket = int(context.now // self.ttl) if self.ttl > 0 else 0
        fraction = stable_fraction(name, context.client, bucket, self.salt)
        total = sum(weights.values())
        threshold = fraction * total
        cumulative = 0.0
        ordered = sorted(weights.items())
        for target, weight in ordered:
            cumulative += weight
            if threshold < cumulative:
                return target
        return ordered[-1][0]


@dataclass(frozen=True)
class GslbAddressPolicy:
    """Step 4: a global server load balancer answering with A records.

    ``pool`` maps a query context to the candidate server addresses
    (the CDN deployment supplies nearest-site, load-aware pools);
    ``answer_count`` addresses are drawn with client/time-stable
    rotation so the whole pool is exposed across clients — this is what
    makes the unique-IP counts of Figures 4 and 5 grow when a CDN
    activates more servers.
    """

    pool: Callable[[QueryContext], Sequence[IPv4Address]]
    ttl: int
    answer_count: int = 4
    salt: str = ""

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        candidates = list(self.pool(context))
        if not candidates:
            return ()
        bucket = int(context.now // self.ttl) if self.ttl > 0 else 0
        offset = int(
            stable_fraction(name, context.client, bucket, self.salt) * len(candidates)
        )
        count = min(self.answer_count, len(candidates))
        chosen = [candidates[(offset + index) % len(candidates)] for index in range(count)]
        return tuple(ARecord(name, address, self.ttl) for address in chosen)


@dataclass(frozen=True)
class RoundRobinAddressPolicy:
    """A records rotated purely by time bucket (client-independent)."""

    addresses: tuple[IPv4Address, ...]
    ttl: int
    answer_count: int = 4

    def answer(self, name: str, context: QueryContext) -> tuple[ResourceRecord, ...]:
        if not self.addresses:
            return ()
        bucket = int(context.now // self.ttl) if self.ttl > 0 else 0
        count = min(self.answer_count, len(self.addresses))
        offset = bucket % len(self.addresses)
        chosen = [
            self.addresses[(offset + index) % len(self.addresses)]
            for index in range(count)
        ]
        return tuple(ARecord(name, address, self.ttl) for address in chosen)
