"""DNS query context and responses.

Authoritative answers in the Apple Meta-CDN depend on *who* asks and
*when* (location-based dynamic DNS resolution, Section 3.2), so every
query carries a :class:`QueryContext` describing the resolving client.
Real CDNs see the recursive resolver's address (or EDNS Client Subnet);
the reproduction passes the client's own attributes, which is equivalent
for RIPE Atlas probes since they resolve locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..net.geo import Continent, Coordinates, MappingRegion
from ..net.ipv4 import IPv4Address
from .records import RecordType, ResourceRecord, normalize_name

__all__ = ["QueryContext", "RCode", "Question", "DnsResponse"]


@dataclass(frozen=True)
class QueryContext:
    """Everything a policy-driven authoritative server may consider.

    ``now`` is simulation time in seconds since the scenario epoch.
    ``country`` is ISO 3166-1 alpha-2, lowercase (step 1 of the mapping
    chain splits out ``in`` and ``cn``).
    """

    client: IPv4Address
    coordinates: Coordinates
    continent: Continent
    country: str
    now: float = 0.0

    @property
    def region(self) -> MappingRegion:
        """The Apple mapping region (us/eu/apac) for this client."""
        return MappingRegion.for_continent(self.continent)


class RCode(Enum):
    """DNS response codes the reproduction distinguishes."""

    NOERROR = 0
    NXDOMAIN = 3
    SERVFAIL = 2
    REFUSED = 5


@dataclass(frozen=True)
class Question:
    """A query for one name and record type."""

    name: str
    rtype: RecordType = RecordType.A

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))

    def __str__(self) -> str:
        return f"{self.name} {self.rtype}"


@dataclass(frozen=True)
class DnsResponse:
    """An authoritative (or resolved) answer.

    ``answers`` preserves order: for a resolved query the CNAME chain
    comes first, final A records last — mirroring a real DNS answer
    section, which is what the RIPE Atlas probes recorded.
    """

    question: Question
    rcode: RCode = RCode.NOERROR
    answers: tuple[ResourceRecord, ...] = field(default_factory=tuple)
    authoritative: bool = True

    @property
    def cname_chain(self) -> tuple[ResourceRecord, ...]:
        """The CNAME records, in redirect order."""
        return tuple(
            record for record in self.answers if record.rtype is RecordType.CNAME
        )

    @property
    def addresses(self) -> tuple[IPv4Address, ...]:
        """The A record addresses in the answer."""
        return tuple(
            record.address for record in self.answers if record.rtype is RecordType.A
        )

    @property
    def final_name(self) -> str:
        """The last name in the chain (the one the A records belong to)."""
        name = self.question.name
        for record in self.answers:
            if record.rtype is RecordType.CNAME and record.name == name:
                name = record.target
        return name

    def is_empty(self) -> bool:
        """True when the response carries no records."""
        return not self.answers
