"""DNS names, record types and resource records.

The Apple Meta-CDN's request mapping is implemented entirely in DNS
(Section 3.2): a chain of CNAME redirects with carefully chosen TTLs ends
in A records for cache servers.  The reproduction models exactly the
record types that chain uses: A, CNAME, NS and SOA.

Names are represented as normalised lowercase strings without a trailing
dot (``"appldnld.apple.com"``).  :func:`normalize_name` is the single
place that normalisation happens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Union

from ..net.ipv4 import IPv4Address

__all__ = [
    "RecordType",
    "ResourceRecord",
    "ARecord",
    "CnameRecord",
    "normalize_name",
    "is_subdomain",
    "NameError_",
]

_LABEL = re.compile(r"^[a-z0-9_]([a-z0-9_-]{0,61}[a-z0-9_])?$")


class NameError_(ValueError):
    """Raised for malformed DNS names (trailing underscore avoids the builtin)."""


@lru_cache(maxsize=16384)
def normalize_name(name: str) -> str:
    """Lowercase ``name`` and strip any trailing dot; validate labels.

    The same few dozen chain names are normalised millions of times per
    simulation run (every record construction and zone lookup funnels
    through here), so results are memoised; the function is pure and
    validation errors are never cached.

    >>> normalize_name("AppLDNLD.Apple.COM.")
    'appldnld.apple.com'
    """
    cleaned = name.strip().lower().rstrip(".")
    if not cleaned:
        raise NameError_("empty DNS name")
    if len(cleaned) > 253:
        raise NameError_(f"name too long: {cleaned[:40]}...")
    for label in cleaned.split("."):
        if not _LABEL.match(label):
            raise NameError_(f"bad label {label!r} in {cleaned!r}")
    return cleaned


def is_subdomain(name: str, zone: str) -> bool:
    """Whether ``name`` equals or falls under ``zone`` (both normalised)."""
    return name == zone or name.endswith("." + zone)


class RecordType(str, Enum):
    """The record types the reproduction uses.

    PTR exists for the reverse-DNS enumeration of Section 3.3 (the
    authors walked ``17.0.0.0/8`` PTR records to recover server names).
    """

    A = "A"
    AAAA = "AAAA"  # queried but never answered: the Meta-CDN is IPv4-only
    CNAME = "CNAME"
    NS = "NS"
    SOA = "SOA"
    PTR = "PTR"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record.

    ``data`` is an :class:`IPv4Address` for A records and a normalised
    name string for CNAME/NS records.  ``ttl`` is in seconds; the paper
    highlights the 15 s TTL on the Meta-CDN selection CNAME as the knob
    enabling quick reroutes.
    """

    name: str
    rtype: RecordType
    ttl: int
    data: Union[IPv4Address, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize_name(self.name))
        if self.ttl < 0:
            raise ValueError(f"negative TTL: {self.ttl}")
        if self.rtype is RecordType.A:
            if not isinstance(self.data, IPv4Address):
                raise TypeError("A record data must be an IPv4Address")
        elif self.rtype in (RecordType.CNAME, RecordType.NS, RecordType.PTR):
            if not isinstance(self.data, str):
                raise TypeError(f"{self.rtype} record data must be a name")
            object.__setattr__(self, "data", normalize_name(self.data))

    @property
    def target(self) -> str:
        """The CNAME/NS target name (raises for A records)."""
        if not isinstance(self.data, str):
            raise TypeError(f"{self.rtype} record has no target name")
        return self.data

    @property
    def address(self) -> IPv4Address:
        """The A record address (raises for name-valued records)."""
        if not isinstance(self.data, IPv4Address):
            raise TypeError(f"{self.rtype} record has no address")
        return self.data

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} IN {self.rtype} {self.data}"


def ARecord(name: str, address: IPv4Address, ttl: int) -> ResourceRecord:
    """Convenience constructor for an A record."""
    return ResourceRecord(name=name, rtype=RecordType.A, ttl=ttl, data=address)


def CnameRecord(name: str, target: str, ttl: int) -> ResourceRecord:
    """Convenience constructor for a CNAME record."""
    return ResourceRecord(name=name, rtype=RecordType.CNAME, ttl=ttl, data=target)


def PtrRecord(name: str, target: str, ttl: int) -> ResourceRecord:
    """Convenience constructor for a PTR record."""
    return ResourceRecord(name=name, rtype=RecordType.PTR, ttl=ttl, data=target)
