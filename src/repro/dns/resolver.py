"""Recursive resolution: CNAME chasing across operators, with a TTL cache.

RIPE Atlas probes performed full recursive resolutions of
``appldnld.apple.com`` every five minutes; each resolution walks the
whole Figure 2 chain.  :class:`RecursiveResolver` reproduces that walk:

* it finds the authoritative server for each name in the chain,
* follows CNAME redirects until A records (or an error) appear,
* records the full chain in a :class:`Resolution`, and
* honours TTLs through an optional cache, so a 15 s selection CNAME is
  re-evaluated quickly while the 21600 s entry hop is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..obs import get_registry
from .query import DnsResponse, Question, QueryContext, RCode
from .records import RecordType, ResourceRecord, normalize_name
from .zone import AuthoritativeServer, Zone

__all__ = [
    "RecursiveResolver",
    "Resolution",
    "ResolutionStep",
    "ResolutionError",
    "ResolverCacheStats",
    "ServerMap",
    "resolve_bulk",
]

_MAX_CHAIN = 16  # generous; the Apple chain is 5 hops at its longest


class ResolutionError(RuntimeError):
    """Raised when a resolution cannot complete (loop, missing server)."""


@dataclass(frozen=True)
class ResolutionStep:
    """One hop of the chain: which operator answered what for which name."""

    name: str
    operator: str
    records: tuple[ResourceRecord, ...]
    from_cache: bool = False


@dataclass(frozen=True)
class Resolution:
    """A completed recursive resolution.

    ``steps`` covers the whole chase in order; ``addresses`` are the
    final A records.  ``rcode`` is NOERROR unless the chain dead-ended.
    """

    question: Question
    steps: tuple[ResolutionStep, ...]
    rcode: RCode = RCode.NOERROR

    @property
    def addresses(self) -> tuple[IPv4Address, ...]:
        """The resolved cache-server addresses."""
        found: list[IPv4Address] = []
        for step in self.steps:
            for record in step.records:
                if record.rtype is RecordType.A:
                    found.append(record.address)
        return tuple(found)

    @property
    def cname_chain(self) -> tuple[ResourceRecord, ...]:
        """Every CNAME record followed, in order."""
        chain: list[ResourceRecord] = []
        for step in self.steps:
            for record in step.records:
                if record.rtype is RecordType.CNAME:
                    chain.append(record)
        return tuple(chain)

    @property
    def chain_names(self) -> tuple[str, ...]:
        """All names visited, starting with the question name."""
        names = [self.question.name]
        for record in self.cname_chain:
            names.append(record.target)
        return tuple(names)

    @property
    def final_name(self) -> str:
        """The terminal name of the chain."""
        return self.chain_names[-1]

    def succeeded(self) -> bool:
        """True when the resolution produced at least one address."""
        return self.rcode is RCode.NOERROR and bool(self.addresses)

    def to_answer(self) -> DnsResponse:
        """Flatten into a single answer-section-style response."""
        records: list[ResourceRecord] = []
        for step in self.steps:
            records.extend(step.records)
        return DnsResponse(
            question=self.question,
            rcode=self.rcode,
            answers=tuple(records),
            authoritative=False,
        )


@dataclass
class _CacheEntry:
    records: tuple[ResourceRecord, ...]
    operator: str
    expires_at: float


@dataclass(frozen=True)
class ResolverCacheStats:
    """A snapshot of one resolver's TTL-cache behaviour.

    ``evictions`` counts entries dropped because their TTL had expired
    when they were next consulted (explicit :meth:`RecursiveResolver.flush`
    calls are not evictions); ``size`` is the current entry count.
    """

    hits: int
    misses: int
    evictions: int
    size: int

    @property
    def requests(self) -> int:
        """Total cache consultations."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over consultations; 0.0 before any."""
        return self.hits / self.requests if self.requests else 0.0


class RecursiveResolver:
    """Chases CNAME chains across a registry of authoritative servers.

    ``servers`` is the universe of operators' DNS services; for each
    name the most specific authoritative zone wins (so Akamai's
    ``akadns.net`` answers ``appldnld.apple.com.akadns.net`` even though
    Apple answers ``appldnld.apple.com``).

    The cache is per-resolver: RIPE Atlas probes each run their own
    local resolver, so each probe owns a resolver instance.  Pass
    ``cache=False`` for the always-fresh behaviour used by one-shot
    measurements.

    ``cache_scope`` turns the cache *shared-safe*: a per-client resolver
    keys entries by qname alone (the degenerate key — answers computed
    for its one client are trivially valid for it), but a cache shared
    across clients must partition answers by the geography the answer
    was computed for, or one client's steering answer leaks to clients
    elsewhere.  With ``cache_scope=s`` entries are keyed by ``(qname,
    client-prefix/s)`` — the announced ECS scope of a public resolver —
    so two clients only share an entry when they share the scope-``s``
    prefix.  ``cache_scope=0`` models an ECS-off shared cache: one
    worldwide partition per name.  ``cache_capacity`` bounds the number
    of *live* entries; overflow evicts the entry closest to expiry
    (deterministic tie-break on the key).
    """

    def __init__(
        self,
        servers: Iterable[AuthoritativeServer],
        cache: bool = True,
        wire_mode: bool = False,
        metrics=None,
        cache_scope: Optional[int] = None,
        cache_capacity: Optional[int] = None,
    ) -> None:
        if cache_scope is not None and not 0 <= cache_scope <= 32:
            raise ValueError("cache_scope must be within [0, 32]")
        if cache_capacity is not None and cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        self._servers = list(servers)
        self._cache_enabled = cache
        self._cache_scope = cache_scope
        self._cache_capacity = cache_capacity
        # Keys are the bare qname for per-client resolvers (degenerate
        # key, byte-identical to the historical behaviour) or
        # ``(qname, scope-truncated client network)`` for shared caches.
        self._cache: dict = {}
        # The latest query time seen; lazy expiry means entries whose
        # TTL has passed linger until next touch, so size accounting
        # filters against this horizon instead of trusting len().
        self._horizon = float("-inf")
        # wire_mode exchanges RFC 1035 bytes with every server (encode
        # the query, decode the answer) instead of passing objects —
        # byte-level fidelity at a small cost; resolutions are
        # guaranteed identical either way.
        self._wire_mode = wire_mode
        self._next_message_id = 1
        # Plain counters back cache_stats() unconditionally; the
        # registry instruments are no-ops under the null registry.
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_queries = registry.counter(
            "dns_queries_total",
            "Authoritative DNS queries issued, by answering operator",
            ("operator",),
        )
        self._m_answers = registry.counter(
            "dns_answer_records_total",
            "Answer records received, by answering operator",
            ("operator",),
        )
        self._m_cache_hits = registry.counter(
            "dns_cache_hits_total", "Resolver TTL-cache hits"
        )
        self._m_cache_misses = registry.counter(
            "dns_cache_misses_total", "Resolver TTL-cache misses"
        )
        self._m_cache_evictions = registry.counter(
            "dns_cache_evictions_total",
            "Resolver TTL-cache entries dropped on expiry",
        )
        self._m_resolutions = registry.counter(
            "dns_resolutions_total", "Completed recursive resolutions"
        )
        self._m_chain_length = registry.histogram(
            "dns_cname_chain_length",
            "Hops walked per recursive resolution",
            buckets=(1, 2, 3, 4, 5, 6, 8, 12, 16),
        )

    def add_server(self, server: AuthoritativeServer) -> None:
        """Register an additional authoritative server."""
        self._servers.append(server)

    @property
    def servers(self) -> tuple[AuthoritativeServer, ...]:
        """The authoritative server universe this resolver consults."""
        return tuple(self._servers)

    def server_for(self, name: str) -> Optional[AuthoritativeServer]:
        """The authoritative server for ``name`` (most specific zone)."""
        best: Optional[AuthoritativeServer] = None
        best_depth = -1
        for server in self._servers:
            zone = server.zone_for(name)
            if zone is not None:
                depth = zone.origin.count(".") + 1
                if depth > best_depth:
                    best = server
                    best_depth = depth
        return best

    def resolve(self, name: str, context: QueryContext) -> Resolution:
        """Fully resolve ``name`` for the client in ``context``.

        Follows CNAMEs until A records appear; raises
        :class:`ResolutionError` on a redirect loop or when no server is
        authoritative for a name in the chain.
        """
        question = Question(normalize_name(name))
        steps: list[ResolutionStep] = []
        current = question.name
        seen = {current}

        for _ in range(_MAX_CHAIN):
            step = self._query_one(current, context)
            steps.append(step)
            a_records = [r for r in step.records if r.rtype is RecordType.A]
            cnames = [r for r in step.records if r.rtype is RecordType.CNAME]
            if a_records:
                self._m_resolutions.inc()
                self._m_chain_length.observe(len(steps))
                return Resolution(question=question, steps=tuple(steps))
            if not cnames:
                # Dead end: NODATA / NXDOMAIN at this link of the chain.
                self._m_resolutions.inc()
                self._m_chain_length.observe(len(steps))
                return Resolution(
                    question=question, steps=tuple(steps), rcode=RCode.NXDOMAIN
                )
            current = cnames[0].target
            if current in seen:
                raise ResolutionError(f"CNAME loop at {current!r}")
            seen.add(current)
        raise ResolutionError(f"chain longer than {_MAX_CHAIN} for {question.name!r}")

    def cache_key(self, name: str, context: QueryContext):
        """The cache key for ``name`` asked from ``context``.

        Per-client resolvers use the bare qname; shared caches append
        the client's scope-truncated network so answers computed for
        one geography are never served to another (the partition a real
        ECS-aware public resolver keeps per announced scope).
        """
        if self._cache_scope is None:
            return name
        return (
            name,
            IPv4Prefix.containing(context.client, self._cache_scope).network,
        )

    def _query_one(
        self,
        name: str,
        context: QueryContext,
        locate: Optional[Callable[[str], "tuple[Optional[AuthoritativeServer], Optional[Zone]]"]] = None,
    ) -> ResolutionStep:
        if self._cache_enabled:
            if context.now > self._horizon:
                self._horizon = context.now
            key = self.cache_key(name, context)
            entry = self._cache.get(key)
            if entry is not None:
                if entry.expires_at > context.now:
                    self._hits += 1
                    self._m_cache_hits.inc()
                    return ResolutionStep(
                        name=name,
                        operator=entry.operator,
                        records=entry.records,
                        from_cache=True,
                    )
                # TTL expired: drop the stale entry and fall through.
                del self._cache[key]
                self._evictions += 1
                self._m_cache_evictions.inc()
            self._misses += 1
            self._m_cache_misses.inc()
        # ``locate`` lets the bulk path share one (server, zone) lookup
        # across many clients; it must agree with ``server_for``, which
        # holds whenever the clients share one server universe.
        zone: Optional[Zone] = None
        if locate is not None:
            server, zone = locate(name)
        else:
            server = self.server_for(name)
        if server is None:
            raise ResolutionError(f"no authoritative server for {name!r}")
        if self._wire_mode:
            response = self._query_wire(server, name, context)
        elif zone is not None:
            response = server.query_in_zone(zone, Question(name), context)
        else:
            response = server.query(Question(name), context)
        if response.rcode is RCode.REFUSED:
            raise ResolutionError(
                f"{server.operator} refused {name!r} despite zone match"
            )
        records = response.answers
        self._m_queries.labels(server.operator).inc()
        if records:
            self._m_answers.labels(server.operator).inc(len(records))
        if self._cache_enabled and records:
            ttl = min(record.ttl for record in records)
            self._cache[self.cache_key(name, context)] = _CacheEntry(
                records=records,
                operator=server.operator,
                expires_at=context.now + ttl,
            )
            if (
                self._cache_capacity is not None
                and len(self._cache) > self._cache_capacity
            ):
                self._enforce_capacity(context.now)
        return ResolutionStep(name=name, operator=server.operator, records=records)

    def _enforce_capacity(self, now: float) -> None:
        """Shrink to capacity: expired entries first, then soonest-to-expire.

        Both passes count as evictions — capacity pressure is the other
        way a shared cache loses entries, and the POP-cache metrics
        must see it.  The overflow victim is the live entry closest to
        expiry, tie-broken on the key repr, so eviction order is
        deterministic across runs and worker counts.
        """
        self.sweep(now)
        while len(self._cache) > self._cache_capacity:
            victim = min(
                self._cache.items(), key=lambda kv: (kv[1].expires_at, repr(kv[0]))
            )[0]
            del self._cache[victim]
            self._evictions += 1
            self._m_cache_evictions.inc()

    def _query_wire(
        self, server: AuthoritativeServer, name: str, context: QueryContext
    ) -> DnsResponse:
        """One hop over the byte-level interface (RFC 1035 + ECS)."""
        from ..net.ipv4 import IPv4Prefix
        from .wire import ClientSubnet, WireMessage, answer_wire, encode_message

        message_id = self._next_message_id
        self._next_message_id = (self._next_message_id + 1) & 0xFFFF or 1
        payload = encode_message(
            WireMessage(
                message_id=message_id,
                questions=[Question(name)],
                client_subnet=ClientSubnet(
                    IPv4Prefix.containing(context.client, 24)
                ),
            )
        )
        from .wire import decode_message

        decoded = decode_message(answer_wire(server, payload, context))
        if decoded.message_id != message_id:
            raise ResolutionError(f"mismatched DNS message id for {name!r}")
        return DnsResponse(
            question=Question(name),
            rcode=decoded.rcode,
            answers=tuple(decoded.answers),
            authoritative=decoded.authoritative,
        )

    def flush(self) -> None:
        """Drop all cached entries (not counted as evictions)."""
        self._cache.clear()

    def sweep(self, now: Optional[float] = None) -> int:
        """Drop every entry expired at ``now`` (default: latest seen).

        Lazy expiry only removes an entry when its key is touched
        again, which a shared cache's long tail of one-off partitions
        may never be; the sweep makes capacity and eviction accounting
        truthful.  Swept entries count as evictions (their TTL passed),
        unlike :meth:`flush`.  Returns the number removed.
        """
        horizon = self._horizon if now is None else now
        expired = [
            key for key, entry in self._cache.items()
            if entry.expires_at <= horizon
        ]
        for key in expired:
            del self._cache[key]
        if expired:
            self._evictions += len(expired)
            self._m_cache_evictions.inc(len(expired))
        return len(expired)

    @property
    def cache_size(self) -> int:
        """Number of *live* cached entries.

        Entries whose TTL has passed the latest query time are excluded
        even before lazy expiry removes them, so a shared cache's size
        reflects what could still be served, not dict occupancy.
        """
        return sum(
            1 for entry in self._cache.values()
            if entry.expires_at > self._horizon
        )

    def cache_stats(self) -> ResolverCacheStats:
        """Hit/miss/eviction counters plus the current live size."""
        return ResolverCacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=self.cache_size,
        )


class ServerMap:
    """A shared name -> (server, zone) index over one server universe.

    ``server_for`` linearly scans servers and zones on every hop of
    every client's chase; during a campaign tick hundreds of probes
    walk the same handful of chain names, so the scan result is pure
    duplication.  A :class:`ServerMap` memoises the most-specific match
    once per distinct name, to be shared by every client that consults
    the same server universe (which campaign probe sets do by
    construction).

    The selection rule replicates :meth:`RecursiveResolver.server_for`
    exactly: first server (in registration order) whose deepest
    covering zone strictly beats the best seen so far.
    """

    def __init__(self, servers: Iterable[AuthoritativeServer]) -> None:
        self._servers = list(servers)
        self._memo: dict[str, tuple[Optional[AuthoritativeServer], Optional[Zone]]] = {}

    def locate(self, name: str) -> tuple[Optional[AuthoritativeServer], Optional[Zone]]:
        """The authoritative (server, zone) for ``name`` (memoised)."""
        hit = self._memo.get(name)
        if hit is not None:
            return hit
        best: Optional[AuthoritativeServer] = None
        best_zone: Optional[Zone] = None
        best_depth = -1
        for server in self._servers:
            zone = server.zone_for(name)
            if zone is not None:
                depth = zone.origin.count(".") + 1
                if depth > best_depth:
                    best = server
                    best_zone = zone
                    best_depth = depth
        located = (best, best_zone)
        self._memo[name] = located
        return located


@dataclass
class _BulkChase:
    """One client's in-flight state during a bulk resolution."""

    index: int
    resolver: RecursiveResolver
    context: QueryContext
    current: str
    steps: List[ResolutionStep] = field(default_factory=list)
    seen: set = field(default_factory=set)


def resolve_bulk(
    clients: Sequence[Tuple[RecursiveResolver, QueryContext]],
    name: str,
    server_map: Optional[ServerMap] = None,
) -> List[Union[Resolution, ResolutionError]]:
    """Resolve ``name`` for many clients in one level-synchronous sweep.

    This is the vectorised form of calling ``resolver.resolve(name,
    context)`` once per client: all chases advance one CNAME hop per
    round, so the authoritative (server, zone) for each distinct chain
    name is located once per round via ``server_map`` instead of once
    per client.  Per-client semantics — TTL caches, metrics, rcodes,
    loop detection, chain-length limits — are exactly those of
    :meth:`RecursiveResolver.resolve`; the resolutions returned are
    value-identical to the serial ones.

    Failures that :meth:`RecursiveResolver.resolve` would raise are
    returned in-place as :class:`ResolutionError` instances so one bad
    vantage cannot abort a whole campaign tick (callers translate them
    into SERVFAIL measurements, as the per-probe path does).

    All clients must share one server universe when ``server_map`` is
    given; campaigns satisfy this by building every probe resolver from
    the same estate server list.
    """
    qname = normalize_name(name)
    question = Question(qname)
    outcomes: List[Union[Resolution, ResolutionError]] = [None] * len(clients)  # type: ignore[list-item]
    active: List[_BulkChase] = []
    for index, (resolver, context) in enumerate(clients):
        chase = _BulkChase(index, resolver, context, qname)
        chase.seen.add(qname)
        active.append(chase)

    locate = server_map.locate if server_map is not None else None
    for _ in range(_MAX_CHAIN):
        if not active:
            break
        still_active: List[_BulkChase] = []
        for chase in active:
            resolver = chase.resolver
            try:
                step = resolver._query_one(chase.current, chase.context, locate)
            except ResolutionError as exc:
                outcomes[chase.index] = exc
                continue
            chase.steps.append(step)
            a_records = [r for r in step.records if r.rtype is RecordType.A]
            cnames = [r for r in step.records if r.rtype is RecordType.CNAME]
            if a_records:
                resolver._m_resolutions.inc()
                resolver._m_chain_length.observe(len(chase.steps))
                outcomes[chase.index] = Resolution(
                    question=question, steps=tuple(chase.steps)
                )
                continue
            if not cnames:
                resolver._m_resolutions.inc()
                resolver._m_chain_length.observe(len(chase.steps))
                outcomes[chase.index] = Resolution(
                    question=question,
                    steps=tuple(chase.steps),
                    rcode=RCode.NXDOMAIN,
                )
                continue
            chase.current = cnames[0].target
            if chase.current in chase.seen:
                outcomes[chase.index] = ResolutionError(
                    f"CNAME loop at {chase.current!r}"
                )
                continue
            chase.seen.add(chase.current)
            still_active.append(chase)
        active = still_active
    for chase in active:
        outcomes[chase.index] = ResolutionError(
            f"chain longer than {_MAX_CHAIN} for {qname!r}"
        )
    return outcomes
