"""Reverse DNS: ``in-addr.arpa`` names and PTR zones.

Section 3.3's methodology starts from reverse DNS: scanning Apple's
``17.0.0.0/8`` and resolving PTR records yields the
``usnyc3-vip-bx-008.aaplimg.com`` names that the Table 1 grammar then
decodes.  This module provides the ``in-addr.arpa`` naming, a builder
that turns an address→hostname table into an authoritative PTR zone,
and a scanner that enumerates a prefix through actual DNS queries —
so the discovery pipeline can run end to end over the DNS substrate
instead of reading the table directly.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..net.ipv4 import IPv4Address, IPv4Prefix
from .policies import StaticPolicy
from .query import Question, QueryContext, RCode
from .records import PtrRecord, RecordType
from .zone import AuthoritativeServer, Zone

__all__ = [
    "reverse_name",
    "address_from_reverse_name",
    "build_ptr_zone",
    "scan_ptr_records",
]

_ARPA_SUFFIX = "in-addr.arpa"


def reverse_name(address: IPv4Address) -> str:
    """The PTR owner name for ``address``.

    >>> from repro.net.ipv4 import IPv4Address
    >>> reverse_name(IPv4Address.parse("17.253.0.8"))
    '8.0.253.17.in-addr.arpa'
    """
    octets = address.octets
    return f"{octets[3]}.{octets[2]}.{octets[1]}.{octets[0]}.{_ARPA_SUFFIX}"


def address_from_reverse_name(name: str) -> IPv4Address:
    """Invert :func:`reverse_name`; raises ``ValueError`` otherwise."""
    cleaned = name.strip().lower().rstrip(".")
    if not cleaned.endswith("." + _ARPA_SUFFIX):
        raise ValueError(f"not an in-addr.arpa name: {name!r}")
    labels = cleaned[: -len(_ARPA_SUFFIX) - 1].split(".")
    if len(labels) != 4:
        raise ValueError(f"expected four octet labels: {name!r}")
    try:
        octets = [int(label) for label in reversed(labels)]
    except ValueError as exc:
        raise ValueError(f"non-numeric octet in {name!r}") from exc
    return IPv4Address.parse(".".join(str(octet) for octet in octets))


def build_ptr_zone(
    ptr_table: Mapping[IPv4Address, str],
    operator: str = "Apple",
    ttl: int = 86400,
) -> AuthoritativeServer:
    """An authoritative server answering PTR queries from a table.

    The zone origin is ``in-addr.arpa`` (one server for the whole
    table regardless of which prefixes it spans), with one static PTR
    record per address.
    """
    zone = Zone(_ARPA_SUFFIX)
    for address, hostname in ptr_table.items():
        owner = reverse_name(address)
        zone.bind(owner, StaticPolicy((PtrRecord(owner, hostname, ttl),)))
    return AuthoritativeServer(operator, [zone])


def scan_ptr_records(
    server: AuthoritativeServer,
    prefix: IPv4Prefix,
    context: QueryContext,
    addresses: Optional[Iterable[IPv4Address]] = None,
) -> dict[IPv4Address, str]:
    """Enumerate PTR records over ``prefix`` via real DNS queries.

    ``addresses`` restricts the sweep (a full /8 is 16.7 M queries —
    the paper scanned it over time; callers usually sweep the /16
    delivery range).  Returns only the addresses that resolved.
    """
    found: dict[IPv4Address, str] = {}
    candidates = addresses if addresses is not None else prefix.addresses()
    for address in candidates:
        if not prefix.contains(address):
            continue
        response = server.query(
            Question(reverse_name(address), RecordType.PTR), context
        )
        if response.rcode is not RCode.NOERROR:
            continue
        for record in response.answers:
            if record.rtype is RecordType.PTR:
                found[address] = record.target
                break
    return found
