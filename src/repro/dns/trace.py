"""``dig +trace``-style delegation walks over the estate.

The recursive resolver answers *what* a name resolves to; operators
dissecting a mapping chain also ask *who is authoritative at each
level* — the root delegates ``net`` , ``net`` delegates ``akadns.net``
to Akamai, and so on.  :class:`DelegationTree` derives that hierarchy
from the zones the estate's servers host, and :func:`dig_trace` renders
the walk for one name, referral by referral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .query import QueryContext
from .records import normalize_name
from .zone import AuthoritativeServer

__all__ = ["ReferralStep", "DelegationTrace", "DelegationTree", "dig_trace"]


@dataclass(frozen=True)
class ReferralStep:
    """One level of the walk: who is asked, and what they hand back."""

    level: str  # ".", "com", "apple.com", ...
    operator: str  # who runs this level ("IANA root", "net registry", ...)
    referral_to: Optional[str]  # next zone, None when authoritative


@dataclass(frozen=True)
class DelegationTrace:
    """A completed walk for one name."""

    name: str
    steps: tuple
    final_operator: Optional[str]

    @property
    def depth(self) -> int:
        """Number of levels walked, root included."""
        return len(self.steps)

    def render(self) -> str:
        """dig-+trace-flavoured text."""
        lines = [f"; delegation trace for {self.name}"]
        for step in self.steps:
            if step.referral_to is not None:
                lines.append(
                    f";; {step.level:<24} ({step.operator}) "
                    f"-> delegates {step.referral_to}"
                )
            else:
                lines.append(
                    f";; {step.level:<24} ({step.operator}) -> AUTHORITATIVE"
                )
        return "\n".join(lines)


class DelegationTree:
    """The zone hierarchy implied by a set of authoritative servers.

    TLD registries and the root are not modelled operators in the
    estate, so the tree labels them generically ("IANA root",
    "<tld> registry"); every hosted zone carries its real operator.
    """

    def __init__(self, servers: Iterable[AuthoritativeServer]) -> None:
        self._zone_operator: dict[str, str] = {}
        for server in servers:
            for origin in self._origins_of(server):
                self._zone_operator[origin] = server.operator

    @staticmethod
    def _origins_of(server: AuthoritativeServer) -> list[str]:
        origins = []
        probe_names = getattr(server, "_zones", [])
        for zone in probe_names:
            origins.append(zone.origin)
        return origins

    @property
    def zones(self) -> tuple[str, ...]:
        """Every hosted zone origin, sorted."""
        return tuple(sorted(self._zone_operator))

    def operator_of_zone(self, origin: str) -> Optional[str]:
        """Who hosts ``origin``, if anyone."""
        return self._zone_operator.get(normalize_name(origin))

    def hosted_zone_for(self, name: str) -> Optional[str]:
        """The most specific hosted zone covering ``name``."""
        cleaned = normalize_name(name)
        labels = cleaned.split(".")
        for start in range(len(labels)):
            candidate = ".".join(labels[start:])
            if candidate in self._zone_operator:
                return candidate
        return None

    def trace(self, name: str) -> DelegationTrace:
        """Walk the delegation chain for ``name``."""
        cleaned = normalize_name(name)
        labels = cleaned.split(".")
        hosted = self.hosted_zone_for(cleaned)
        steps: list[ReferralStep] = []
        tld = labels[-1]
        steps.append(ReferralStep(".", "IANA root", referral_to=tld))
        if hosted is None:
            steps.append(
                ReferralStep(tld, f"{tld} registry", referral_to=None)
            )
            return DelegationTrace(cleaned, tuple(steps), final_operator=None)
        # Registry levels between the TLD and the hosted zone.
        hosted_labels = hosted.split(".")
        for depth in range(1, len(hosted_labels)):
            level = ".".join(hosted_labels[-depth:])
            steps.append(
                ReferralStep(
                    level,
                    f"{level} registry" if depth == 1 else f"{level} operator",
                    referral_to=".".join(hosted_labels[-(depth + 1):]),
                )
            )
        steps.append(
            ReferralStep(
                hosted, self._zone_operator[hosted], referral_to=None
            )
        )
        return DelegationTrace(
            cleaned, tuple(steps), final_operator=self._zone_operator[hosted]
        )


def dig_trace(
    servers: Iterable[AuthoritativeServer],
    name: str,
    context: Optional[QueryContext] = None,
) -> DelegationTrace:
    """One-shot trace over an estate's servers."""
    return DelegationTree(servers).trace(name)
