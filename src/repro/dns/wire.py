"""DNS wire format: RFC 1035 message encoding and decoding.

The rest of the DNS substrate works on structured objects; this module
provides the byte-level representation — headers, the question section,
resource records with name compression, and the EDNS0 OPT pseudo-record
with the Client-Subnet option (RFC 7871) that real CDN mapping chains
use to learn where the client sits.

Supported RR types are exactly the reproduction's: A, NS, CNAME, SOA,
PTR (plus OPT).  Encoding applies name compression (pointers to earlier
occurrences); decoding follows pointers with loop protection.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..obs.trace_context import TRACE_OPTION_CODE, TraceContext
from .query import Question, RCode
from .records import NameError_, RecordType, ResourceRecord, normalize_name

__all__ = [
    "WireError",
    "WireType",
    "ClientSubnet",
    "WireMessage",
    "encode_message",
    "decode_message",
    "encode_name",
    "decode_name",
]

_MAX_MESSAGE = 65535
_MAX_NAME_OCTETS = 255  # RFC 1035 §3.1: total encoded name length
_MAX_POINTER_JUMPS = 32  # far above any legal message's compression depth
_POINTER_MASK = 0xC0
_CLASS_IN = 1
_OPT_TYPE = 41
_ECS_OPTION_CODE = 8
_ECS_FAMILY_IPV4 = 1
_DEFAULT_UDP_PAYLOAD = 4096


class WireError(ValueError):
    """Raised for malformed wire data."""


class WireType(IntEnum):
    """RR type codes for the supported record types."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12

    @classmethod
    def from_record_type(cls, rtype: RecordType) -> "WireType":
        return cls[rtype.value]

    def to_record_type(self) -> RecordType:
        return RecordType[self.name]


@dataclass(frozen=True)
class ClientSubnet:
    """An EDNS Client Subnet option (RFC 7871, IPv4 family)."""

    prefix: IPv4Prefix
    scope_length: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.scope_length <= 32:
            raise WireError(f"bad ECS scope: {self.scope_length}")

    def encode(self) -> bytes:
        """The option payload (family, lengths, truncated address)."""
        address_bytes = bytes(self.prefix.network.octets)
        used = (self.prefix.length + 7) // 8
        payload = struct.pack(
            "!HBB", _ECS_FAMILY_IPV4, self.prefix.length, self.scope_length
        ) + address_bytes[:used]
        return struct.pack("!HH", _ECS_OPTION_CODE, len(payload)) + payload

    @classmethod
    def decode(cls, payload: bytes) -> "ClientSubnet":
        """Parse one ECS option payload (without the option header)."""
        if len(payload) < 4:
            raise WireError("ECS option too short")
        family, source_length, scope_length = struct.unpack("!HBB", payload[:4])
        if family != _ECS_FAMILY_IPV4:
            raise WireError(f"unsupported ECS family {family}")
        used = (source_length + 7) // 8
        address_bytes = payload[4:4 + used] + b"\x00" * (4 - used)
        if len(payload) < 4 + used:
            raise WireError("ECS address truncated")
        value = int.from_bytes(address_bytes[:4], "big")
        prefix = IPv4Prefix.containing(IPv4Address(value), source_length)
        return cls(prefix=prefix, scope_length=scope_length)


@dataclass
class WireMessage:
    """A decoded (or to-be-encoded) DNS message."""

    message_id: int = 0
    is_response: bool = False
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    rcode: RCode = RCode.NOERROR
    questions: list = field(default_factory=list)  # list[Question]
    answers: list = field(default_factory=list)  # list[ResourceRecord]
    client_subnet: Optional[ClientSubnet] = None
    # The EDNS0 advertised UDP payload size (the OPT record's CLASS
    # field); None when the message carries no OPT record.  A server
    # uses it to decide when a UDP response must be truncated.
    udp_payload_size: Optional[int] = None
    # Observability trace context, carried as an EDNS0 option in the
    # local-use code range alongside ECS.  Malformed trace options are
    # dropped on decode rather than failing the message: tracing must
    # never break name resolution.
    trace_context: Optional[TraceContext] = None

    def __post_init__(self) -> None:
        if not 0 <= self.message_id <= 0xFFFF:
            raise WireError(f"bad message id: {self.message_id}")


# ----------------------------------------------------------------------
# names
# ----------------------------------------------------------------------

def encode_name(name: str, compression: Optional[dict] = None,
                offset: int = 0) -> bytes:
    """Encode ``name`` with optional compression.

    ``compression`` maps already-emitted suffixes to their offsets;
    ``offset`` is where this name will start in the message.
    """
    labels = normalize_name(name).split(".")
    out = bytearray()
    for index in range(len(labels)):
        suffix = ".".join(labels[index:])
        if compression is not None and suffix in compression:
            pointer = compression[suffix]
            out += struct.pack("!H", 0xC000 | pointer)
            return bytes(out)
        if compression is not None and offset + len(out) < 0x3FFF:
            compression[suffix] = offset + len(out)
        label = labels[index].encode("ascii")
        if len(label) > 63:
            raise WireError(f"label too long: {labels[index]!r}")
        out.append(len(label))
        out += label
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset).

    Hardened against adversarial bytes: every compression pointer must
    land strictly before the previous jump target (a legal encoder only
    ever points at earlier suffixes, and the rule makes pointer loops
    impossible on the first revisit instead of after a long chase),
    jumps are bounded, and the accumulated name may not exceed the RFC
    1035 limit of 255 octets.  Any violation raises :class:`WireError`;
    malformed input can never hang the decoder.
    """
    labels: list[str] = []
    name_octets = 1  # the terminating zero label
    jumps = 0
    cursor = offset
    lowest_target = offset  # each jump must land strictly before this
    end: Optional[int] = None
    while True:
        if cursor >= len(data):
            raise WireError("name runs past end of message")
        length = data[cursor]
        if length & _POINTER_MASK == _POINTER_MASK:
            if cursor + 1 >= len(data):
                raise WireError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[cursor + 1]
            if end is None:
                end = cursor + 2
            jumps += 1
            if jumps > _MAX_POINTER_JUMPS:
                raise WireError("too many compression pointer jumps")
            if pointer >= lowest_target:
                raise WireError(
                    f"compression pointer at {cursor} does not move "
                    f"backwards (target {pointer})"
                )
            lowest_target = pointer
            cursor = pointer
            continue
        if length & _POINTER_MASK:
            raise WireError(f"reserved label type {length:#x}")
        cursor += 1
        if length == 0:
            break
        if cursor + length > len(data):
            raise WireError("label runs past end of message")
        name_octets += 1 + length
        if name_octets > _MAX_NAME_OCTETS:
            raise WireError("name exceeds 255 octets")
        try:
            labels.append(data[cursor:cursor + length].decode("ascii"))
        except UnicodeDecodeError as exc:
            raise WireError("non-ASCII bytes in label") from exc
        cursor += length
    if end is None:
        end = cursor
    if not labels:
        raise WireError("empty (root) name not used in this substrate")
    return ".".join(labels).lower(), end


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------

def _encode_rdata(record: ResourceRecord, compression: dict, offset: int) -> bytes:
    if record.rtype is RecordType.A:
        return bytes(record.address.octets)
    if record.rtype in (RecordType.CNAME, RecordType.NS, RecordType.PTR):
        # Compression inside RDATA is legal for these well-known types.
        return encode_name(record.target, compression, offset)
    if record.rtype is RecordType.SOA:
        raise WireError("SOA encoding is not needed by the reproduction")
    raise WireError(f"cannot encode {record.rtype}")


def _encode_record(record: ResourceRecord, compression: dict, offset: int) -> bytes:
    out = bytearray(encode_name(record.name, compression, offset))
    wire_type = WireType.from_record_type(record.rtype)
    out += struct.pack("!HHI", wire_type, _CLASS_IN, record.ttl)
    rdata_offset = offset + len(out) + 2  # after the RDLENGTH field
    rdata = _encode_rdata(record, compression, rdata_offset)
    out += struct.pack("!H", len(rdata))
    out += rdata
    return bytes(out)


def _decode_record(
    data: bytes, offset: int
) -> tuple[Optional[ResourceRecord], int, Optional[tuple[int, bytes]]]:
    """Returns (record or None-for-OPT, next offset, (OPT class, rdata))."""
    name, cursor = _decode_owner(data, offset)
    if cursor + 10 > len(data):
        raise WireError("truncated record header")
    type_code, class_code, ttl = struct.unpack("!HHI", data[cursor:cursor + 8])
    (rdlength,) = struct.unpack("!H", data[cursor + 8:cursor + 10])
    cursor += 10
    if cursor + rdlength > len(data):
        raise WireError("RDATA runs past end of message")
    rdata = data[cursor:cursor + rdlength]
    next_offset = cursor + rdlength
    if type_code == _OPT_TYPE:
        # For OPT the CLASS field carries the advertised UDP size.
        return None, next_offset, (class_code, rdata)
    try:
        wire_type = WireType(type_code)
    except ValueError as exc:
        raise WireError(f"unsupported RR type {type_code}") from exc
    rtype = wire_type.to_record_type()
    if rtype is RecordType.A:
        if rdlength != 4:
            raise WireError("A RDATA must be 4 bytes")
        record_data: object = IPv4Address(int.from_bytes(rdata, "big"))
    elif rtype in (RecordType.CNAME, RecordType.NS, RecordType.PTR):
        record_data, _ = decode_name(data, cursor)
    else:
        raise WireError(f"cannot decode {rtype}")
    try:
        record = ResourceRecord(name=name, rtype=rtype, ttl=ttl, data=record_data)
    except NameError_ as exc:
        # Label syntax is validated by the record model; on the decode
        # path a violation is malformed wire input, not a caller bug.
        raise WireError(f"invalid name in record: {exc}") from exc
    return record, next_offset, None


def _decode_owner(data: bytes, offset: int) -> tuple[str, int]:
    # OPT records use the root owner name; handle the lone zero byte.
    if offset < len(data) and data[offset] == 0:
        return "", offset + 1
    return decode_name(data, offset)


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------

def encode_message(message: WireMessage) -> bytes:
    """Serialise a message, compressing names throughout."""
    flags = 0
    if message.is_response:
        flags |= 0x8000
    if message.authoritative:
        flags |= 0x0400
    if message.truncated:
        flags |= 0x0200
    if message.recursion_desired:
        flags |= 0x0100
    if message.recursion_available:
        flags |= 0x0080
    flags |= message.rcode.value & 0x000F

    emit_opt = (
        message.client_subnet is not None
        or message.udp_payload_size is not None
        or message.trace_context is not None
    )
    additional_count = 1 if emit_opt else 0
    out = bytearray(
        struct.pack(
            "!HHHHHH",
            message.message_id,
            flags,
            len(message.questions),
            len(message.answers),
            0,
            additional_count,
        )
    )
    compression: dict[str, int] = {}
    for question in message.questions:
        out += encode_name(question.name, compression, len(out))
        out += struct.pack(
            "!HH", WireType.from_record_type(question.rtype), _CLASS_IN
        )
    for record in message.answers:
        out += _encode_record(record, compression, len(out))
    if emit_opt:
        # OPT pseudo-record: root name, type 41, class = UDP size.
        options = bytearray()
        if message.client_subnet is not None:
            options += message.client_subnet.encode()
        if message.trace_context is not None:
            payload = message.trace_context.encode_option()
            options += struct.pack("!HH", TRACE_OPTION_CODE, len(payload))
            options += payload
        payload_size = message.udp_payload_size or _DEFAULT_UDP_PAYLOAD
        out += b"\x00"
        out += struct.pack("!HHIH", _OPT_TYPE, payload_size, 0, len(options))
        out += options
    if len(out) > _MAX_MESSAGE:
        raise WireError("message exceeds 64 KiB")
    return bytes(out)


def decode_message(data: bytes) -> WireMessage:
    """Parse a wire message back into structured form."""
    if len(data) < 12:
        raise WireError("message shorter than the 12-byte header")
    message_id, flags, qdcount, ancount, nscount, arcount = struct.unpack(
        "!HHHHHH", data[:12]
    )
    try:
        rcode = RCode(flags & 0x000F)
    except ValueError as exc:
        raise WireError(f"unsupported RCODE {flags & 0xF}") from exc
    message = WireMessage(
        message_id=message_id,
        is_response=bool(flags & 0x8000),
        authoritative=bool(flags & 0x0400),
        truncated=bool(flags & 0x0200),
        recursion_desired=bool(flags & 0x0100),
        recursion_available=bool(flags & 0x0080),
        rcode=rcode,
    )
    cursor = 12
    for _ in range(qdcount):
        name, cursor = decode_name(data, cursor)
        if cursor + 4 > len(data):
            raise WireError("truncated question")
        (type_code, class_code) = struct.unpack("!HH", data[cursor:cursor + 4])
        cursor += 4
        if class_code != _CLASS_IN:
            raise WireError(f"unsupported class {class_code}")
        try:
            rtype = WireType(type_code).to_record_type()
        except ValueError as exc:
            raise WireError(f"unsupported question type {type_code}") from exc
        try:
            message.questions.append(Question(name, rtype))
        except NameError_ as exc:
            raise WireError(f"invalid name in question: {exc}") from exc
    for section_count in (ancount, nscount + arcount):
        for _ in range(section_count):
            record, cursor, opt = _decode_record(data, cursor)
            if record is not None:
                message.answers.append(record)
            elif opt is not None:
                payload_size, opt_rdata = opt
                message.udp_payload_size = payload_size
                if opt_rdata:
                    ecs, trace = _decode_options(opt_rdata)
                    message.client_subnet = ecs
                    message.trace_context = trace
    return message


def _decode_options(
    opt_rdata: bytes,
) -> tuple[Optional[ClientSubnet], Optional[TraceContext]]:
    """Walk the OPT RDATA's option list; unknown codes are skipped.

    ECS keeps its strict semantics (a malformed ECS raises, since the
    answer depends on it); the trace option degrades to ``None`` on any
    malformation, including truncation by the ``length`` field running
    past the RDATA.
    """
    ecs: Optional[ClientSubnet] = None
    trace: Optional[TraceContext] = None
    cursor = 0
    while cursor + 4 <= len(opt_rdata):
        code, length = struct.unpack("!HH", opt_rdata[cursor:cursor + 4])
        payload = opt_rdata[cursor + 4:cursor + 4 + length]
        if code == _ECS_OPTION_CODE:
            ecs = ClientSubnet.decode(payload)
        elif code == TRACE_OPTION_CODE and len(payload) == length:
            trace = TraceContext.decode_option(payload)
        cursor += 4 + length
    return ecs, trace


def answer_wire(server, payload: bytes, context, ecs_scope=None) -> bytes:
    """Serve one wire-format query against an authoritative server.

    Decodes ``payload``, answers the first question with ``server``
    (a :class:`~repro.dns.zone.AuthoritativeServer`) for the client in
    ``context``, and encodes the response — the byte-level face of the
    authoritative substrate.  An ECS option in the query is echoed back
    with ``ecs_scope`` as its scope — the granularity the answer
    actually depended on.  ``None`` keeps the legacy full-source-scope
    echo for callers whose ``context`` really is per-client; callers
    that derived the context from a coarser geography lookup must pass
    that lookup's granularity, or downstream shared caches partition
    answers more finely than they were computed (RFC 7871 §7.3.1).
    """
    query = decode_message(payload)
    if not query.questions:
        raise WireError("query carries no question")
    question = query.questions[0]
    response = server.query(question, context)
    ecs = None
    if query.client_subnet is not None:
        scope = (
            query.client_subnet.prefix.length if ecs_scope is None else ecs_scope
        )
        ecs = ClientSubnet(
            prefix=query.client_subnet.prefix,
            scope_length=scope,
        )
    return encode_message(
        WireMessage(
            message_id=query.message_id,
            is_response=True,
            authoritative=response.authoritative,
            recursion_desired=query.recursion_desired,
            rcode=response.rcode,
            questions=[question],
            answers=list(response.answers),
            client_subnet=ecs,
            trace_context=query.trace_context,
        )
    )
