"""Zones and authoritative name servers.

The mapping chain of Figure 2 crosses several operators' DNS estates:
Apple's ``apple.com`` and ``applimg.com``, Akamai's ``akadns.net``,
``akamai.net`` and ``edgesuite.net``, and Limelight's ``llnwi.net``.
Each operator runs an :class:`AuthoritativeServer` hosting one or more
:class:`Zone` objects; a zone binds owner names to answer policies.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .policies import AnswerPolicy
from .query import DnsResponse, Question, QueryContext, RCode
from .records import RecordType, is_subdomain, normalize_name

__all__ = ["Zone", "AuthoritativeServer"]


class Zone:
    """One DNS zone: an origin plus policy-driven owner names.

    >>> zone = Zone("apple.com")
    >>> zone.origin
    'apple.com'
    """

    def __init__(self, origin: str) -> None:
        self.origin = normalize_name(origin)
        self._policies: dict[str, AnswerPolicy] = {}

    def bind(self, name: str, policy: AnswerPolicy) -> None:
        """Attach ``policy`` as the answer source for ``name``.

        ``name`` must be inside the zone.  Re-binding replaces the old
        policy, which is how scenario code models operator
        reconfiguration mid-measurement.
        """
        owner = normalize_name(name)
        if not is_subdomain(owner, self.origin):
            raise ValueError(f"{owner!r} is outside zone {self.origin!r}")
        self._policies[owner] = policy

    def policy_for(self, name: str) -> Optional[AnswerPolicy]:
        """The policy bound to ``name``, or ``None``."""
        return self._policies.get(normalize_name(name))

    def covers(self, name: str) -> bool:
        """Whether ``name`` belongs to this zone."""
        return is_subdomain(normalize_name(name), self.origin)

    def names(self) -> Iterator[str]:
        """All bound owner names."""
        return iter(self._policies)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and normalize_name(name) in self._policies

    def __len__(self) -> int:
        return len(self._policies)


class AuthoritativeServer:
    """An operator's authoritative DNS service over a set of zones.

    ``operator`` is a display label ("Apple", "Akamai", ...) used by the
    analysis layer when attributing decision points in the reconstructed
    mapping graph (two of the three selection steps are run by Akamai,
    one by Apple — a headline takeaway of Section 3.2).
    """

    def __init__(self, operator: str, zones: Optional[list[Zone]] = None) -> None:
        self.operator = operator
        self._zones: list[Zone] = []
        for zone in zones or []:
            self.add_zone(zone)

    def add_zone(self, zone: Zone) -> Zone:
        """Serve ``zone`` from this server; returns the zone."""
        self._zones.append(zone)
        # Longest origin first so the most specific zone wins.
        self._zones.sort(key=lambda z: z.origin.count("."), reverse=True)
        return zone

    @property
    def zones(self) -> tuple[Zone, ...]:
        """Every hosted zone, most specific first."""
        return tuple(self._zones)

    def zone_for(self, name: str) -> Optional[Zone]:
        """The most specific zone covering ``name``, if any."""
        for zone in self._zones:
            if zone.covers(name):
                return zone
        return None

    def is_authoritative_for(self, name: str) -> bool:
        """Whether any hosted zone covers ``name``."""
        return self.zone_for(name) is not None

    def query(self, question: Question, context: QueryContext) -> DnsResponse:
        """Answer ``question`` authoritatively.

        Returns REFUSED for names outside all zones, NXDOMAIN for
        covered-but-unbound names.  A bound name answered by a policy
        yields NOERROR even if the policy currently returns no records
        (an empty, NODATA-style answer).
        """
        return self.query_in_zone(self.zone_for(question.name), question, context)

    def query_in_zone(
        self, zone: Optional[Zone], question: Question, context: QueryContext
    ) -> DnsResponse:
        """Answer ``question`` from an already-located ``zone``.

        The bulk resolution path locates the (server, zone) pair once
        per distinct name and tick instead of once per client; passing
        the zone here skips the per-query linear scan while producing
        the byte-identical answer :meth:`query` would.  ``zone=None``
        means no hosted zone covers the name (REFUSED, as in
        :meth:`query`).
        """
        if zone is None:
            return DnsResponse(question=question, rcode=RCode.REFUSED)
        policy = zone.policy_for(question.name)
        if policy is None:
            return DnsResponse(question=question, rcode=RCode.NXDOMAIN)
        records = policy.answer(question.name, context)
        if question.rtype is not RecordType.A:
            records = tuple(
                record for record in records if record.rtype is question.rtype
            )
        return DnsResponse(question=question, answers=tuple(records))

    def __str__(self) -> str:
        origins = ", ".join(zone.origin for zone in self._zones)
        return f"AuthoritativeServer({self.operator}: {origins})"
