"""Fault injection and health-checked failover for the Meta-CDN.

The paper's ISP-side findings (overflow, re-steering within the 15 s
selection TTL) are all about what happens when delivery *degrades*;
this package supplies the degradation.  :mod:`repro.faults.schedule`
holds the pure-data fault plan, :mod:`repro.faults.injector` turns it
into seeded deterministic per-event decisions, and
:mod:`repro.faults.health` runs the health-check + failover loop that
re-steers the ``appldnld.g.applimg.com`` selection step around failed
member CDNs.  :mod:`repro.faults.chaos` (imported lazily by the CLI —
it pulls in the serving layer) boots a live cluster under a schedule
and gates on error rate, re-steer time and recovery.

Everything is opt-in: a component without an injector installed runs
byte-for-byte the healthy-path code.
"""

from .health import (
    DEFAULT_MEMBERS,
    CdnHealthMonitor,
    FailoverConfig,
    FailoverLoop,
    HealthFilteredSchedule,
    MemberState,
    SelectionHealth,
)
from .injector import FaultInjector
from .schedule import FaultKind, FaultSchedule, FaultWindow

__all__ = [
    "FaultKind",
    "FaultWindow",
    "FaultSchedule",
    "FaultInjector",
    "MemberState",
    "CdnHealthMonitor",
    "SelectionHealth",
    "HealthFilteredSchedule",
    "FailoverConfig",
    "FailoverLoop",
    "DEFAULT_MEMBERS",
]
