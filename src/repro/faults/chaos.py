"""The chaos drill: scheduled faults against the live cluster + engine.

``repro chaos`` runs two phases and gates on what the paper's
mechanisms promise under failure:

1. **Live phase** — boot a loopback :class:`~repro.serve.cluster.ServeCluster`
   with a fault schedule (by default: a fifth of Apple's vips dark from
   t=1 s, a total Limelight blackout from t=3 s, both clearing at
   t=9 s) and a fast health-check loop.  Closed-loop load runs
   throughout; a watcher resolves the Figure 2 chain for clients known
   to map to Limelight and times how quickly the 15 s selection step
   re-steers them away.  Recovery time comes from the tracer's
   ``cdn_recovered`` event.
2. **Simulation phase** — replay the same failure shape in engine time
   (a Limelight blackout one hour after the iOS 11 release) and check
   the ISP classifier sees the consequence: the EU split drops
   Limelight to zero, the spill lands on Akamai, and non-zero overflow
   bytes are attributed to the failed-over CDN.

Both phases are deterministic under a fixed seed: every probabilistic
fault decision and every jittered backoff resolves through the same
BLAKE2b ``stable_fraction`` hash.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from ..obs import (
    EventTracer,
    MetricsRegistry,
    get_flight_recorder,
    use_registry,
    use_tracer,
)
from ..workload.timeline import TIMELINE
from .health import FailoverConfig
from .schedule import FaultKind, FaultSchedule, FaultWindow

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "default_chaos_schedule",
    "anycast_drill_schedule",
    "run_chaos",
    "chaos_selftest",
]


def default_chaos_schedule() -> FaultSchedule:
    """The standard drill: partial Apple vip outage + Limelight blackout.

    Times are seconds since cluster start.  Everything clears by t=9 so
    the recovery half of the health loop is exercised inside the run.
    """
    return FaultSchedule(
        [
            FaultWindow(1.0, 9.0, "Apple", FaultKind.VIP_OUTAGE, severity=0.2),
            FaultWindow(3.0, 9.0, "Limelight", FaultKind.CDN_BLACKOUT),
        ]
    )


def anycast_drill_schedule(site_id: Optional[str] = None) -> FaultSchedule:
    """The route-flap drill: withdraw the busiest catchment mid-run.

    Routing-plane only — no DNS or cache fault — so the acceptance
    question is inverted from the blackout drill: traffic must *move*
    (catchments shift to the next-best site) while the health monitor
    sees *nothing* (zero unhealthy events, zero re-steers).
    """
    if site_id is None:
        from ..serve.clients import ClientDirectory
        from ..serve.cluster import ClusterConfig, build_serve_estate
        from ..serve.steering import build_serve_plane

        plane = build_serve_plane(
            build_serve_estate(ClusterConfig(servers_per_metro=2)),
            ClientDirectory.from_adoption(),
        )
        shares = plane.catchment_map(0.0).share_by_site()
        site_id = max(shares, key=lambda site: shares[site])
    return FaultSchedule(
        [FaultWindow(1.0, 5.0, site_id, FaultKind.ROUTE_WITHDRAW)]
    )


@dataclass
class ChaosConfig:
    """Knobs for one chaos drill."""

    seed: int = 7
    schedule: Optional[FaultSchedule] = None  # None = default_chaos_schedule()
    batch_requests: int = 150
    concurrency: int = 16
    error_budget: float = 0.02        # acceptance: client error rate below this
    resteer_budget: float = 15.0      # one selection-step TTL
    recovery_margin: float = 5.0      # run past the last window this long
    watch_candidates: int = 64        # clients scanned for Limelight mapping
    watch_clients: int = 8            # of those, how many the watcher tracks
    watch_interval: float = 0.3
    probe_interval: float = 0.25      # live health-probe cadence
    probe_cooldown: float = 0.5       # unhealthy re-probe cadence
    run_simulation: bool = True
    servers_per_metro: int = 4
    workers: int = 1                  # worker processes for the simulation phase
    steering: str = "dns"             # dns | anycast | hybrid
    # Live phase scale: 1 = the classic single-loop cluster; >= 2 boots
    # a multi-process ServeFleet and drives it with an open-loop
    # flash-crowd arrival while the faults bite.
    serve_workers: int = 1
    loadgen_processes: int = 2        # generator processes for the fleet phase

    def __post_init__(self) -> None:
        if self.steering not in ("dns", "anycast", "hybrid"):
            raise ValueError(
                f"unknown steering mode {self.steering!r} "
                "(valid: dns, anycast, hybrid)"
            )
        if self.batch_requests <= 0 or self.concurrency <= 0:
            raise ValueError("batch_requests and concurrency must be positive")
        if not 0.0 < self.error_budget < 1.0:
            raise ValueError("error_budget must be a fraction in (0, 1)")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.serve_workers < 1 or self.loadgen_processes < 1:
            raise ValueError("serve_workers and loadgen_processes must be >= 1")


@dataclass(frozen=True)
class ChaosReport:
    """What the drill measured, live and simulated."""

    schedule: str
    # live phase
    requests: int
    ok: int
    errors: int
    error_rate: float
    retries: int
    reresolutions: int
    hedged: int
    resteer_seconds: Optional[float]
    recovery_seconds: Optional[float]
    unhealthy_events: int
    watched_clients: int
    # simulation phase (None when skipped)
    sim_limelight_pre_gbps: Optional[float] = None
    sim_limelight_blackout_gbps: Optional[float] = None
    sim_limelight_after_gbps: Optional[float] = None
    sim_overflow_akamai_bytes: Optional[int] = None
    # anycast steering (populated when steering != "dns")
    steering: str = "dns"
    anycast_routed: int = 0
    catchment_shift: tuple = ()
    sim_flap_site: Optional[str] = None
    sim_map_changes: Optional[int] = None
    sim_shifted_gbps: Optional[float] = None
    # worker-crash drill (populated for worker-kill/worker-stall schedules)
    sim_worker_restarts: Optional[int] = None
    sim_worker_identical: Optional[bool] = None
    sim_worker_divergence: Optional[str] = None
    # multi-process live phase (serve_workers >= 2)
    serve_workers: int = 1
    shed: int = 0
    checks: tuple = field(default_factory=tuple)

    def passed(self) -> bool:
        """True when every acceptance check held."""
        return all(ok for _label, ok in self.checks)

    def render(self) -> str:
        """A terminal-friendly verdict block."""
        lines = [
            "chaos drill",
            "-----------",
            "schedule:",
        ]
        lines += [f"  {line}" for line in self.schedule.splitlines()]
        # The worker-crash drill has no live phase; skip the empty block.
        if self.requests or self.sim_worker_restarts is None:
            lines += [
                "",
                f"live requests   {self.requests}  (ok {self.ok}, errors {self.errors}, "
                f"rate {self.error_rate:.2%})",
            ]
            if self.serve_workers > 1:
                lines.append(
                    f"serve fleet     {self.serve_workers} workers, "
                    f"open-loop flash crowd ({self.shed} arrivals shed)"
                )
            lines += [
                f"resilience      {self.retries} retries, "
                f"{self.reresolutions} TTL re-resolutions, {self.hedged} hedged lookups",
                f"failovers       {self.unhealthy_events} member(s) marked unhealthy",
            ]
            if self.resteer_seconds is not None:
                lines.append(
                    f"re-steer        {self.resteer_seconds:.2f} s after blackout "
                    f"({self.watched_clients} watched Limelight clients)"
                )
            else:
                lines.append("re-steer        not observed")
            if self.recovery_seconds is not None:
                lines.append(
                    f"recovery        healthy {self.recovery_seconds:.2f} s after the fault cleared"
                )
            else:
                lines.append("recovery        not observed")
        if self.steering != "dns":
            lines += [
                "",
                f"anycast ({self.steering} steering)",
                f"  catchment-routed     {self.anycast_routed} connections",
            ]
            if self.catchment_shift:
                lines.append(
                    f"  flap shifted         {len(self.catchment_shift)} "
                    f"client group(s): {', '.join(self.catchment_shift)}"
                )
        if self.sim_overflow_akamai_bytes is not None:
            lines += [
                "",
                "simulation (Limelight blackout, release+1h .. release+6h)",
                f"  EU Limelight split   pre {self.sim_limelight_pre_gbps:.0f} Gbps"
                f" -> blackout {self.sim_limelight_blackout_gbps:.0f} Gbps"
                f" -> after {self.sim_limelight_after_gbps:.0f} Gbps",
                f"  overflow to Akamai   {self.sim_overflow_akamai_bytes:,} bytes",
            ]
        if self.sim_flap_site is not None:
            lines += [
                "",
                "simulation (route flap, release+1h .. release+3h)",
                f"  withdrawn site       {self.sim_flap_site}",
                f"  catchment changes    {self.sim_map_changes}",
                f"  shifted traffic      {self.sim_shifted_gbps:.0f} Gbps",
            ]
        if self.sim_worker_restarts is not None:
            lines += [
                "",
                "simulation (worker-crash drill, sharded vs serial)",
                f"  worker restarts      {self.sim_worker_restarts}",
                f"  results identical    "
                f"{'yes' if self.sim_worker_identical else 'NO'}",
            ]
            if self.sim_worker_divergence:
                lines.append(
                    f"  divergence           {self.sim_worker_divergence}"
                )
        lines.append("")
        for label, ok in self.checks:
            lines.append(f"{'PASS' if ok else 'FAIL'}  {label}")
        lines.append("")
        lines.append("chaos " + ("PASSED" if self.passed() else "FAILED"))
        return "\n".join(lines)


# What the live half of the report shows when a drill has no live
# phase (the worker-crash drill runs entirely in engine time).
_NO_LIVE_PHASE: dict = {
    "requests": 0, "ok": 0, "errors": 0,
    "retries": 0, "reresolutions": 0, "hedged": 0,
    "watched": 0, "resteer": None, "recovery": None,
    "unhealthy": 0, "blackout": None,
    "anycast_routed": 0, "catchment_shift": (),
}


async def _watch_resteer(cluster, config: ChaosConfig, registry,
                         blackout: Optional[FaultWindow],
                         stop_at: float, rounds: list) -> int:
    """Resolve Limelight-mapped clients on a cadence; record sightings.

    Returns how many watched clients mapped to Limelight pre-fault.
    Each round appends ``(t, limelight_seen)`` to ``rounds``.
    """
    from ..serve.loadgen import AsyncDnsClient, DnsClientError

    dns = await AsyncDnsClient.open(
        *cluster.dns.endpoint, timeout=1.0, retries=1, metrics=registry
    )
    try:
        entry = "appldnld.apple.com"
        watched = []
        for index in range(config.watch_candidates):
            client = cluster.directory.sample(index)
            try:
                resolution = await dns.resolve(entry, client.address)
            except DnsClientError:
                continue
            if any("llnw" in name for name in resolution.chain_names):
                watched.append(client.address)
            if len(watched) >= config.watch_clients:
                break
        if not watched or blackout is None:
            return len(watched)
        clock = cluster._cluster_clock
        while clock() < stop_at:
            seen = False
            for address in watched:
                try:
                    resolution = await dns.resolve(entry, address)
                except DnsClientError:
                    continue
                if any("llnw" in name for name in resolution.chain_names):
                    seen = True
                    break
            rounds.append((clock(), seen))
            await asyncio.sleep(config.watch_interval)
        return len(watched)
    finally:
        dns.close()


def _resteer_from_rounds(rounds, blackout: Optional[FaultWindow]) -> Optional[float]:
    """Seconds from blackout start until the chain stopped answering
    Limelight (and stayed away until the fault cleared)."""
    if blackout is None:
        return None
    in_window = [(t, seen) for t, seen in rounds
                 if blackout.start <= t < blackout.end]
    steered_at: Optional[float] = None
    for t, seen in in_window:
        if seen:
            steered_at = None
        elif steered_at is None:
            steered_at = t
    if steered_at is None:
        return None
    return steered_at - blackout.start


async def _live_phase(config: ChaosConfig, schedule: FaultSchedule,
                      registry, tracer) -> dict:
    from ..serve.cluster import ClusterConfig, ServeCluster
    from ..serve.loadgen import LoadConfig

    blackouts = [w for w in schedule
                 if w.kind is FaultKind.CDN_BLACKOUT and w.target != "Apple"]
    blackout = blackouts[0] if blackouts else None
    failover = FailoverConfig(
        probe_interval=config.probe_interval,
        cooldown=config.probe_cooldown,
        fault_seed=config.seed,
    )
    cluster = ServeCluster(
        config=ClusterConfig(servers_per_metro=config.servers_per_metro),
        metrics=registry,
        tracer=tracer,
        faults=schedule,
        failover=failover,
        steering=config.steering,
    )
    end_at = schedule.end_time() + config.recovery_margin
    totals = {"requests": 0, "ok": 0, "errors": 0,
              "retries": 0, "reresolutions": 0, "hedged": 0}
    rounds: list = []
    async with cluster:
        watcher = asyncio.create_task(
            _watch_resteer(cluster, config, registry, blackout, end_at, rounds)
        )
        load_config = LoadConfig(
            requests=config.batch_requests,
            concurrency=config.concurrency,
            http_retries=2,
            dns_timeout=1.0,
        )
        clock = cluster._cluster_clock
        while clock() < end_at:
            report = await cluster.drive(load_config)
            totals["requests"] += report.requests
            totals["ok"] += report.ok
            totals["errors"] += report.errors
            totals["retries"] += report.retries
            totals["reresolutions"] += report.reresolutions
            totals["hedged"] += report.hedged
        watched = await watcher
    recovery: Optional[float] = None
    if blackout is not None:
        for record in tracer.find("cdn_recovered"):
            if record.fields.get("member") == blackout.target:
                recovery = max(0.0, record.ts - blackout.end)
                break
    # Anycast bookkeeping: how many connections the catchment router
    # placed, and which client groups a route flap moved.  The shift is
    # evaluated against the same schedule the live window ran.
    anycast_routed = 0
    catchment_shift: tuple[str, ...] = ()
    plane = getattr(cluster, "anycast", None)
    if plane is not None:
        family = registry.get("serve_anycast_routed_total")
        if family is not None:
            anycast_routed = int(
                sum(child.value for _labels, child in family.children())
            )
        flaps = [w for w in schedule if w.kind in
                 (FaultKind.ROUTE_WITHDRAW, FaultKind.ROUTE_PREPEND)]
        if flaps:
            window = flaps[0]
            before = plane.catchment_map(window.start - 1.0)
            during = plane.catchment_map((window.start + window.end) / 2.0)
            catchment_shift = before.diff(during)
    return {
        **totals,
        "watched": watched,
        "resteer": _resteer_from_rounds(rounds, blackout),
        "recovery": recovery,
        "unhealthy": len(tracer.find("cdn_unhealthy")),
        "blackout": blackout,
        "anycast_routed": anycast_routed,
        "catchment_shift": catchment_shift,
    }


async def _fleet_watch(dns_endpoint, directory, config: ChaosConfig,
                       registry, blackout: Optional[FaultWindow],
                       clock, stop_at: float, rounds: list) -> int:
    """The :func:`_watch_resteer` logic against a fleet's shared port.

    The fleet's tracer events live in its worker processes, so re-steer
    *and* recovery are judged from the wire alone: ``rounds`` records
    ``(t, limelight_seen)`` past the end of the fault window too, and
    the caller derives recovery from Limelight's reappearance.
    """
    from ..serve.loadgen import AsyncDnsClient, DnsClientError

    dns = await AsyncDnsClient.open(
        *dns_endpoint, timeout=1.0, retries=1, metrics=registry
    )
    try:
        entry = "appldnld.apple.com"
        watched = []
        for index in range(config.watch_candidates):
            client = directory.sample(index)
            try:
                resolution = await dns.resolve(entry, client.address)
            except DnsClientError:
                continue
            if any("llnw" in name for name in resolution.chain_names):
                watched.append(client.address)
            if len(watched) >= config.watch_clients:
                break
        if not watched or blackout is None:
            return len(watched)
        while clock() < stop_at:
            seen = False
            for address in watched:
                try:
                    resolution = await dns.resolve(entry, address)
                except DnsClientError:
                    continue
                if any("llnw" in name for name in resolution.chain_names):
                    seen = True
                    break
            rounds.append((clock(), seen))
            await asyncio.sleep(config.watch_interval)
        return len(watched)
    finally:
        dns.close()


def _recovery_from_rounds(rounds, blackout: Optional[FaultWindow]) -> Optional[float]:
    """Seconds from the fault clearing until Limelight answered again."""
    if blackout is None:
        return None
    for t, seen in rounds:
        if t >= blackout.end and seen:
            return t - blackout.end
    return None


def _fleet_live_phase(config: ChaosConfig, schedule: FaultSchedule,
                      registry) -> dict:
    """The live drill against a multi-process fleet, mid-flash-crowd.

    An open-loop flash-crowd arrival (sliced across generator
    processes) runs in a background thread for the whole schedule while
    the watcher resolves from the parent; worker metrics are absorbed
    into ``registry`` at the end so failover counts and per-status
    totals read exactly like the single-loop drill's.
    """
    import threading
    import time

    from ..serve.cluster import ClusterConfig
    from ..serve.fleet import FleetConfig, ServeFleet, run_loadgen_fleet
    from ..serve.loadgen import LoadConfig
    from ..workload.arrival import ArrivalSchedule

    blackouts = [w for w in schedule
                 if w.kind is FaultKind.CDN_BLACKOUT and w.target != "Apple"]
    blackout = blackouts[0] if blackouts else None
    failover = FailoverConfig(
        probe_interval=config.probe_interval,
        cooldown=config.probe_cooldown,
        fault_seed=config.seed,
    )
    cluster_config = ClusterConfig(servers_per_metro=config.servers_per_metro)
    fleet = ServeFleet(FleetConfig(
        workers=config.serve_workers,
        cluster=cluster_config,
        steering=config.steering,
        faults=schedule,
        failover=failover,
    ))
    end_at = schedule.end_time() + config.recovery_margin
    total = max(config.batch_requests, int(config.batch_requests * end_at / 2.0))
    arrival = ArrivalSchedule.flash_crowd(total, end_at)
    load_config = LoadConfig(
        requests=total,
        concurrency=config.concurrency,
        http_retries=2,
        dns_timeout=1.0,
        arrival=arrival,
    )
    fleet.start()
    t0 = time.monotonic()
    clock = lambda: time.monotonic() - t0  # noqa: E731 - run-relative seconds
    holder: dict = {}

    def _drive() -> None:
        try:
            holder["report"] = run_loadgen_fleet(
                fleet.dns_endpoint, fleet.http_endpoint, load_config,
                config.loadgen_processes, directory=fleet.spec.directory(),
            )
        except Exception as exc:  # surfaced as a failed drill, not a crash
            holder["error"] = exc

    rounds: list = []
    try:
        driver = threading.Thread(target=_drive, daemon=True)
        driver.start()
        watched = asyncio.run(_fleet_watch(
            fleet.dns_endpoint, fleet.spec.directory(), config, registry,
            blackout, clock, end_at, rounds,
        ))
        driver.join(timeout=max(60.0, end_at * 4))
    finally:
        fleet.stop()
    registry.absorb_snapshot(fleet.merged_registry().snapshot())
    if "error" in holder:
        raise holder["error"]
    report = holder.get("report")
    if report is None:
        raise RuntimeError("loadgen fleet did not finish within its deadline")
    unhealthy = 0
    failover_family = registry.get("cdn_failovers_total")
    if failover_family is not None:
        unhealthy = int(
            sum(child.value for _labels, child in failover_family.children())
        )
    anycast_routed = 0
    catchment_shift: tuple[str, ...] = ()
    if config.steering != "dns":
        family = registry.get("serve_anycast_routed_total")
        if family is not None:
            anycast_routed = int(
                sum(child.value for _labels, child in family.children())
            )
        from ..serve.steering import build_serve_plane
        from ..serve.cluster import build_serve_estate

        plane = build_serve_plane(
            build_serve_estate(cluster_config), fleet.spec.directory(),
            schedule=schedule,
        )
        flaps = [w for w in schedule if w.kind in
                 (FaultKind.ROUTE_WITHDRAW, FaultKind.ROUTE_PREPEND)]
        if flaps:
            window = flaps[0]
            before = plane.catchment_map(window.start - 1.0)
            during = plane.catchment_map((window.start + window.end) / 2.0)
            catchment_shift = before.diff(during)
    return {
        "requests": report.requests,
        "ok": report.ok,
        "errors": report.errors,
        "retries": report.retries,
        "reresolutions": report.reresolutions,
        "hedged": report.hedged,
        "watched": watched,
        "resteer": _resteer_from_rounds(rounds, blackout),
        "recovery": _recovery_from_rounds(rounds, blackout),
        "unhealthy": unhealthy,
        "blackout": blackout,
        "anycast_routed": anycast_routed,
        "catchment_shift": catchment_shift,
        "shed": report.shed,
    }


def _simulation_phase(config: ChaosConfig) -> dict:
    from ..isp.classify import TrafficClassifier
    from ..simulation.engine import SimulationEngine
    from ..simulation.scenario import ScenarioConfig, Sep2017Scenario

    release = TIMELINE.ios_11_0_release
    fault_start = release + 3600.0
    fault_end = release + 6 * 3600.0
    schedule = FaultSchedule(
        [FaultWindow(fault_start, fault_end, "Limelight", FaultKind.CDN_BLACKOUT)]
    )
    scenario_config = ScenarioConfig(
        global_probe_count=32,
        isp_probe_count=16,
        traceroute_probe_count=2,
        fault_probe_interval=60.0,
        fault_cooldown=300.0,
        fault_seed=config.seed,
    )
    scenario = Sep2017Scenario(scenario_config, faults=schedule)
    engine = SimulationEngine(scenario, step_seconds=1800.0)
    reports: list = []
    engine.run(
        release - 1800.0, release + 8 * 3600.0,
        progress=reports.append, workers=config.workers,
    )

    def limelight_peak(lo: float, hi: float) -> float:
        return max(
            (r.operator_gbps.get("Limelight", 0.0)
             for r in reports if lo <= r.now < hi),
            default=0.0,
        )

    classifier = TrafficClassifier(scenario.isp, scenario.rib, scenario.operator_of)
    in_window = [f for f in scenario.netflow.records
                 if fault_start <= f.timestamp < fault_end]
    overflow_akamai = sum(
        c.flow.bytes for c in classifier.overflow_traffic(in_window, "Akamai")
    )
    return {
        # the health loop needs k_failures probes to flip, so judge the
        # steady blackout state from one step past the fault start
        "limelight_pre": limelight_peak(release - 1800.0, fault_start),
        "limelight_blackout": limelight_peak(fault_start + 3600.0, fault_end),
        "limelight_after": limelight_peak(fault_end + 3600.0, release + 8 * 3600.0),
        "overflow_akamai": int(overflow_akamai),
    }


def _worker_crash_phase(config: ChaosConfig, schedule: FaultSchedule) -> dict:
    """Kill/hang live shard workers mid-run; the results must not care.

    The same scenario runs twice under the same schedule: once serial
    (worker fault kinds are never consulted outside worker processes,
    so this is the clean reference) and once sharded with the faults
    biting.  The supervisor must respawn every murdered worker and the
    sharded ``RunSummary`` must stay byte-identical — crash recovery
    with zero result divergence.  Window times on the CLI are *hours
    after run start* here (the other drills use seconds since cluster
    start; an engine run spans hours, not seconds).
    """
    import json

    from ..simulation.concurrency import ShardDivergenceError, run_sharded
    from ..simulation.engine import RunSummary, SimulationEngine
    from ..simulation.scenario import ScenarioConfig, Sep2017Scenario

    release = TIMELINE.ios_11_0_release
    sim_start = release - 1800.0
    sim_end = release + 4 * 3600.0
    mapped = FaultSchedule(
        [
            FaultWindow(
                sim_start + window.start * 3600.0,
                sim_start + window.end * 3600.0,
                window.target,
                window.kind,
                window.severity,
            )
            for window in schedule
        ]
    )
    scenario_config = ScenarioConfig(
        global_probe_count=32,
        isp_probe_count=16,
        traceroute_probe_count=2,
        fault_seed=config.seed,
    )

    def run_once(workers: int) -> tuple:
        scenario = Sep2017Scenario(scenario_config, faults=mapped)
        engine = SimulationEngine(scenario, step_seconds=1800.0)
        reports: list = []
        if workers == 1:
            engine.run(sim_start, sim_end, progress=reports.append)
        else:
            run_sharded(
                engine, sim_start, sim_end,
                progress=reports.append, workers=workers,
                chunk_ticks=4, heartbeat_timeout=2.0,
            )
        summary = json.dumps(
            RunSummary.from_run(scenario, reports).to_json_dict(),
            sort_keys=True,
        )
        return engine, summary

    _, reference = run_once(1)
    restarts = 0
    identical = False
    divergence: Optional[str] = None
    try:
        engine, sharded = run_once(max(2, config.workers))
        restarts = engine.run_stats["worker_restarts"]
        identical = sharded == reference
    except ShardDivergenceError as exc:
        divergence = str(exc)
    return {
        "worker_restarts": restarts,
        "identical": identical,
        "divergence": divergence,
    }


def _anycast_simulation_phase(config: ChaosConfig) -> dict:
    """Replay a mid-event route flap in engine time under anycast.

    The flap must shift catchments (affinity breaks, shifted traffic)
    while the DNS failover plane records nothing: route kinds never
    reach the health probes.
    """
    from ..anycast.analysis import CatchmentAnalysis
    from ..simulation.engine import SimulationEngine
    from ..simulation.scenario import ScenarioConfig, Sep2017Scenario

    release = TIMELINE.ios_11_0_release
    flap_start = release + 3600.0
    flap_end = release + 3 * 3600.0
    scenario_config = ScenarioConfig(
        global_probe_count=32,
        isp_probe_count=16,
        traceroute_probe_count=2,
        fault_seed=config.seed,
        steering=config.steering if config.steering != "dns" else "anycast",
    )
    # Find the busiest catchment first (pure function of the config),
    # then rebuild the world with that site's announcement withdrawn
    # mid-event.
    probe_plane = Sep2017Scenario(scenario_config).anycast
    shares = probe_plane.catchment_map(0.0).share_by_site()
    site_id = max(shares, key=lambda site: shares[site])
    schedule = FaultSchedule(
        [FaultWindow(flap_start, flap_end, site_id, FaultKind.ROUTE_WITHDRAW)]
    )
    scenario = Sep2017Scenario(scenario_config, faults=schedule)
    engine = SimulationEngine(scenario, step_seconds=1800.0)
    engine.run(
        release - 1800.0, release + 5 * 3600.0, workers=config.workers
    )
    analysis = CatchmentAnalysis.from_plane(scenario.anycast)
    unhealthy = 0
    monitor = scenario._health_monitor
    if monitor is not None:
        unhealthy = sum(
            1 for member in monitor.members
            if not monitor.is_healthy(member)
        )
    return {
        "flap_site": site_id,
        "map_changes": analysis.map_changes,
        "affinity_break_rate": analysis.affinity_break_rate,
        "shifted_gbps": analysis.shifted_gbps_total,
        "unhealthy_members": unhealthy,
    }


def run_chaos(
    config: Optional[ChaosConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[EventTracer] = None,
) -> tuple[ChaosReport, MetricsRegistry, EventTracer]:
    """Run the full drill; returns (report, registry, tracer)."""
    config = config if config is not None else ChaosConfig()
    if config.schedule is not None:
        schedule = config.schedule
    elif config.steering == "anycast":
        schedule = anycast_drill_schedule()
    else:
        schedule = default_chaos_schedule()
    if not len(schedule):
        raise ValueError("a chaos drill needs at least one fault window")
    registry = registry if registry is not None else MetricsRegistry()
    tracer = tracer if tracer is not None else EventTracer()
    route_only = all(
        w.kind in (FaultKind.ROUTE_WITHDRAW, FaultKind.ROUTE_PREPEND)
        for w in schedule
    )
    worker_drill = any(
        w.kind in (FaultKind.WORKER_KILL, FaultKind.WORKER_STALL)
        for w in schedule
    )
    with use_registry(registry), use_tracer(tracer):
        if worker_drill:
            # Worker faults hit shard processes, not the serving layer;
            # the whole drill is the sharded-vs-serial engine run.
            live = _NO_LIVE_PHASE
            sim = _worker_crash_phase(config, schedule)
        elif config.serve_workers > 1:
            live = _fleet_live_phase(config, schedule, registry)
            sim = None
            if config.run_simulation:
                if config.steering == "anycast":
                    sim = _anycast_simulation_phase(config)
                else:
                    sim = _simulation_phase(config)
        else:
            live = asyncio.run(_live_phase(config, schedule, registry, tracer))
            sim = None
            if config.run_simulation:
                if config.steering == "anycast":
                    sim = _anycast_simulation_phase(config)
                else:
                    sim = _simulation_phase(config)

    if worker_drill:
        error_rate = 0.0
        checks = [
            ("supervisor restarted the faulted worker at least once",
             sim["worker_restarts"] >= 1),
            ("sharded results byte-identical to the serial reference",
             sim["identical"]),
            ("no ShardDivergenceError escaped the supervisor",
             sim["divergence"] is None),
        ]
    else:
        error_rate = (
            live["errors"] / live["requests"] if live["requests"] else 1.0
        )
        blackout = live["blackout"]
        checks = [
            (f"client error rate below {config.error_budget:.0%}",
             error_rate < config.error_budget),
            ("load kept flowing throughout the schedule", live["requests"] > 0),
        ]
        if blackout is not None:
            checks += [
                (f"re-steered within one {config.resteer_budget:.0f} s TTL",
                 live["resteer"] is not None
                 and live["resteer"] <= config.resteer_budget),
                ("recovery to healthy reported after the fault cleared",
                 live["recovery"] is not None),
            ]
        if config.steering != "dns":
            checks.append(
                ("anycast: connections routed by catchment",
                 live["anycast_routed"] > 0)
            )
        if config.steering != "dns" and live["catchment_shift"]:
            checks.append(
                ("anycast: route flap shifted catchments",
                 len(live["catchment_shift"]) > 0)
            )
        if route_only:
            checks.append(
                ("anycast: flap invisible to health monitor (zero unhealthy "
                 "events, zero re-steers)",
                 live["unhealthy"] == 0 and live["resteer"] is None)
            )
        if sim is not None and config.steering == "anycast":
            checks += [
                ("simulation: mid-event flap shifted catchments and reverted",
                 sim["map_changes"] >= 2 and sim["affinity_break_rate"] > 0.0),
                ("simulation: shifted traffic volume is non-zero",
                 sim["shifted_gbps"] > 0.0),
                ("simulation: zero members unhealthy after the flap",
                 sim["unhealthy_members"] == 0),
            ]
        elif sim is not None:
            checks += [
                ("simulation: Limelight split dropped to zero during blackout",
                 sim["limelight_pre"] > 0.0 and sim["limelight_blackout"] == 0.0),
                ("simulation: Limelight split restored after recovery",
                 sim["limelight_after"] > 0.0),
                ("simulation: overflow bytes attributed to Akamai",
                 sim["overflow_akamai"] > 0),
            ]
    report = ChaosReport(
        schedule=schedule.describe(),
        requests=live["requests"],
        ok=live["ok"],
        errors=live["errors"],
        error_rate=error_rate,
        retries=live["retries"],
        reresolutions=live["reresolutions"],
        hedged=live["hedged"],
        resteer_seconds=live["resteer"],
        recovery_seconds=live["recovery"],
        unhealthy_events=live["unhealthy"],
        watched_clients=live["watched"],
        sim_limelight_pre_gbps=None if sim is None else sim.get("limelight_pre"),
        sim_limelight_blackout_gbps=(
            None if sim is None else sim.get("limelight_blackout")
        ),
        sim_limelight_after_gbps=(
            None if sim is None else sim.get("limelight_after")
        ),
        sim_overflow_akamai_bytes=(
            None if sim is None else sim.get("overflow_akamai")
        ),
        steering=config.steering,
        anycast_routed=live["anycast_routed"],
        catchment_shift=live["catchment_shift"],
        sim_flap_site=None if sim is None else sim.get("flap_site"),
        sim_map_changes=None if sim is None else sim.get("map_changes"),
        sim_shifted_gbps=None if sim is None else sim.get("shifted_gbps"),
        sim_worker_restarts=None if sim is None else sim.get("worker_restarts"),
        sim_worker_identical=None if sim is None else sim.get("identical"),
        sim_worker_divergence=None if sim is None else sim.get("divergence"),
        serve_workers=config.serve_workers,
        shed=live.get("shed", 0),
        checks=tuple(checks),
    )
    if not report.passed():
        recorder = get_flight_recorder()
        if recorder is not None:
            recorder.trip("chaos-failure", tracer)
    return report, registry, tracer


def chaos_selftest(
    config: Optional[ChaosConfig] = None,
) -> tuple[ChaosReport, MetricsRegistry, EventTracer]:
    """The short fixed-seed drill CI runs; alias of :func:`run_chaos`."""
    return run_chaos(config)
