"""Health-checked failover for the Meta-CDN selection step.

The paper's Figure 2 chain gives ``appldnld.g.applimg.com`` a 15 s TTL
precisely so Apple can re-steer clients quickly; this module supplies
the control loop that exercises it.  :class:`CdnHealthMonitor` probes
member CDNs on a fixed cadence, marks a member unhealthy after K
consecutive failures, and recovers it through half-open probing.
:class:`SelectionHealth` is the read-side view the DNS policies consult:
it removes unhealthy members from the step-3 weight schedules and bends
the step-2 Apple share to 1.0 (all traffic on Apple's GSLB) when no
third party is healthy, or to 0.0 when Apple's own CDN is the failed
member — producing exactly the overflow the ISP classifier measures.

With no monitor installed (the default everywhere) the estate behaves
bit-for-bit as before: every health hook is behind a ``None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Mapping, Optional

from ..dns.policies import WeightSchedule
from ..net.geo import MappingRegion
from ..obs import get_registry, get_tracer
from .injector import FaultInjector

__all__ = [
    "MemberState",
    "CdnHealthMonitor",
    "SelectionHealth",
    "HealthFilteredSchedule",
    "FailoverConfig",
    "FailoverLoop",
]

DEFAULT_MEMBERS = ("Apple", "Akamai", "Limelight")


class MemberState(Enum):
    """Health-state machine of one member CDN."""

    HEALTHY = "healthy"
    UNHEALTHY = "unhealthy"
    HALF_OPEN = "half-open"  # unhealthy, but trial probes are succeeding


class _Member:
    __slots__ = (
        "name", "healthy", "fail_streak", "ok_streak",
        "next_probe", "down_since", "probe_count",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.healthy = True
        self.fail_streak = 0
        self.ok_streak = 0
        self.next_probe: Optional[float] = None
        self.down_since = 0.0
        self.probe_count = 0


class CdnHealthMonitor:
    """Probes member CDNs and tracks their health state.

    ``k_failures`` consecutive probe failures flip a member to
    UNHEALTHY; while unhealthy, probing continues at ``cooldown``
    cadence, and ``recovery_probes`` consecutive successes (the
    half-open phase) flip it back.  :meth:`tick` replays every probe
    instant between the last tick and ``now``, so large simulation
    steps and fine wall-clock loops drive the same machine.
    """

    def __init__(
        self,
        members=DEFAULT_MEMBERS,
        k_failures: int = 3,
        recovery_probes: int = 2,
        probe_interval: float = 5.0,
        cooldown: float = 10.0,
        metrics=None,
        tracer=None,
    ) -> None:
        if k_failures <= 0 or recovery_probes <= 0:
            raise ValueError("k_failures and recovery_probes must be positive")
        if probe_interval <= 0 or cooldown <= 0:
            raise ValueError("probe_interval and cooldown must be positive")
        self.k_failures = k_failures
        self.recovery_probes = recovery_probes
        self.probe_interval = probe_interval
        self.cooldown = cooldown
        self._members = {name: _Member(name) for name in members}
        if not self._members:
            raise ValueError("a monitor needs at least one member")
        registry = metrics if metrics is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._m_probes = registry.counter(
            "cdn_health_probes_total",
            "Member-CDN health probes, by outcome",
            ("member", "outcome"),
        )
        self._m_healthy = registry.gauge(
            "cdn_member_healthy",
            "1 when the member CDN is in DNS rotation, 0 when failed over",
            ("member",),
        )
        self._m_failovers = registry.counter(
            "cdn_failovers_total",
            "Times a member CDN was marked unhealthy",
            ("member",),
        )
        for name in self._members:
            self._m_healthy.labels(name).set(1)

    @property
    def members(self) -> tuple[str, ...]:
        """Every monitored member CDN."""
        return tuple(self._members)

    def state(self, member: str) -> MemberState:
        """The member's current health state."""
        entry = self._members[member]
        if entry.healthy:
            return MemberState.HEALTHY
        if entry.ok_streak > 0:
            return MemberState.HALF_OPEN
        return MemberState.UNHEALTHY

    def is_healthy(self, member: str) -> bool:
        """Whether the member is in rotation (unknown members are)."""
        entry = self._members.get(member)
        return entry.healthy if entry is not None else True

    def unhealthy_members(self) -> tuple[str, ...]:
        """Members currently failed over, in name order."""
        return tuple(
            name for name, entry in sorted(self._members.items())
            if not entry.healthy
        )

    def record_probe(self, member: str, ok: bool, now: float) -> None:
        """Feed one probe outcome into the state machine."""
        entry = self._members[member]
        entry.probe_count += 1
        self._m_probes.labels(member, "ok" if ok else "fail").inc()
        if entry.healthy:
            if ok:
                entry.fail_streak = 0
                return
            entry.fail_streak += 1
            if entry.fail_streak >= self.k_failures:
                entry.healthy = False
                entry.ok_streak = 0
                entry.down_since = now
                self._m_healthy.labels(member).set(0)
                self._m_failovers.labels(member).inc()
                self._tracer.event(
                    "cdn_unhealthy", ts=now, member=member,
                    consecutive_failures=entry.fail_streak,
                )
            return
        # unhealthy: half-open recovery
        if not ok:
            if entry.ok_streak:
                self._tracer.event("cdn_probe_relapse", ts=now, member=member)
            entry.ok_streak = 0
            return
        entry.ok_streak += 1
        if entry.ok_streak == 1:
            self._tracer.event("cdn_half_open", ts=now, member=member)
        if entry.ok_streak >= self.recovery_probes:
            entry.healthy = True
            entry.fail_streak = 0
            entry.ok_streak = 0
            self._m_healthy.labels(member).set(1)
            self._tracer.event(
                "cdn_recovered", ts=now, member=member,
                downtime_seconds=round(now - entry.down_since, 6),
            )

    def tick(self, now: float, probe: Callable[[str, float], bool]) -> int:
        """Run every probe due up to ``now``; returns probes executed.

        ``probe(member, at)`` must report whether the member answered.
        Catch-up is bounded so a pathological gap cannot spin: at most
        1000 probe instants per member are replayed, after which the
        cursor jumps to ``now``.
        """
        executed = 0
        for name, entry in self._members.items():
            if entry.next_probe is None:
                entry.next_probe = now
            for _ in range(1000):
                if entry.next_probe > now:
                    break
                at = entry.next_probe
                self.record_probe(name, probe(name, at), at)
                interval = (
                    self.probe_interval if entry.healthy else self.cooldown
                )
                entry.next_probe = at + interval
                executed += 1
            else:
                entry.next_probe = now
        return executed


class HealthFilteredSchedule:
    """A :class:`WeightSchedule` view with unhealthy members removed.

    Bound in place of the raw step-3 schedules so the regional
    ``ios8-{region}-lb`` answers — and the engine's operator split,
    which reads the same object — re-steer the moment the monitor flips
    a member.  If filtering would empty a step entirely the nominal
    weights are answered instead (the selection step upstream already
    routes around a fully-dark third-party tier).
    """

    def __init__(self, base: WeightSchedule, health: "SelectionHealth") -> None:
        self._base = base
        self._health = health

    def weights_at(self, now: float) -> dict[str, float]:
        """The nominal weights minus unhealthy members' targets."""
        weights = self._base.weights_at(now)
        filtered = self._health.filter_weights(weights)
        return filtered if filtered else dict(weights)

    def targets_at(self, now: float) -> tuple[str, ...]:
        """The target names currently answerable."""
        return tuple(self.weights_at(now))

    def change_times(self) -> tuple[float, ...]:
        """The base schedule's step boundaries (health flips are live)."""
        return self._base.change_times()


class SelectionHealth:
    """The read-side health view the Figure 2 policies consult.

    ``member_of`` maps a handover/GSLB DNS name to the member CDN that
    serves it (``None`` for names that never fail over), keeping this
    module free of any dependency on the mapping estate.
    """

    def __init__(
        self,
        monitor: CdnHealthMonitor,
        member_of: Callable[[str], Optional[str]],
        apple_member: str = "Apple",
    ) -> None:
        self.monitor = monitor
        self._member_of = member_of
        self._apple = apple_member
        self._schedules: dict[MappingRegion, HealthFilteredSchedule] = {}

    def healthy(self, member: str) -> bool:
        """Whether ``member`` is currently in rotation."""
        return self.monitor.is_healthy(member)

    def apple_healthy(self) -> bool:
        """Whether Apple's own CDN is currently in rotation."""
        return self.monitor.is_healthy(self._apple)

    def filter_weights(self, weights: Mapping[str, float]) -> dict[str, float]:
        """``weights`` restricted to targets whose member is healthy."""
        return {
            name: weight
            for name, weight in weights.items()
            if self._target_healthy(name)
        }

    def _target_healthy(self, name: str) -> bool:
        member = self._member_of(name)
        return member is None or self.monitor.is_healthy(member)

    def wrap_schedule(
        self, region: MappingRegion, schedule: WeightSchedule
    ) -> HealthFilteredSchedule:
        """The health-filtered view of one region's step-3 schedule."""
        wrapped = HealthFilteredSchedule(schedule, self)
        self._schedules[region] = wrapped
        return wrapped

    def third_party_available(self, region: MappingRegion, now: float) -> bool:
        """Whether any healthy third party serves ``region`` right now."""
        wrapped = self._schedules.get(region)
        if wrapped is None:
            # No step-3 schedule registered: assume the tier is up.
            return True
        return bool(self.filter_weights(wrapped._base.weights_at(now)))

    def effective_share(
        self, share: float, region: MappingRegion, now: float
    ) -> float:
        """The step-2 Apple share after failover adjustments.

        Apple down → 0.0 (everything to the surviving third parties);
        third-party tier dark → 1.0 (everything to Apple's GSLB); both
        down → the nominal share (answers must still resolve; delivery
        degrades instead).
        """
        apple_ok = self.apple_healthy()
        third_ok = self.third_party_available(region, now)
        if not apple_ok and third_ok:
            return 0.0
        if apple_ok and not third_ok:
            return 1.0
        return share


@dataclass(frozen=True)
class FailoverConfig:
    """Knobs for the health-check + failover loop."""

    members: tuple[str, ...] = DEFAULT_MEMBERS
    k_failures: int = 3
    recovery_probes: int = 2
    probe_interval: float = 5.0
    cooldown: float = 10.0
    fault_seed: int = 0


class FailoverLoop:
    """Ties the injector's clock to the monitor's probe cadence.

    One :meth:`advance` call per engine step (simulation) or timer tick
    (serving layer) replays the due probes against the fault plane: a
    probe fails exactly when the injector says the member CDN is down
    at that instant.
    """

    def __init__(self, monitor: CdnHealthMonitor, injector: FaultInjector) -> None:
        self.monitor = monitor
        self.injector = injector

    def advance(self, now: float) -> int:
        """Drive probes up to ``now``; returns probes executed."""
        self.injector.set_time(now)
        self.injector.observe(now)
        return self.monitor.tick(now, self._probe)

    def _probe(self, member: str, at: float) -> bool:
        self.injector.set_time(at)
        probe_id = self.monitor._members[member].probe_count
        return not self.injector.cdn_down(member, key=("probe", probe_id))
