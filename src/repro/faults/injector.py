"""Deterministic fault decisions over a schedule.

:class:`FaultInjector` is the single point every instrumented layer
asks before doing work: the DNS server per datagram, the HTTP edge per
request, the vip per edge-bx pick, the health-check loop per probe.
Probabilistic severities are resolved with the same BLAKE2b
``stable_fraction`` hash the mapping policies use, keyed by the run
seed plus a caller-supplied decision key, so a fixed seed replays the
exact same fault pattern — no global random state anywhere.

Time comes either from a ``clock`` callable (the serving layer's
seconds-since-start clock) or from :meth:`set_time` (the simulation
engine stamps each step).  Components that hold an injector must treat
``None`` as "no fault plane": the hot paths stay zero-overhead when no
schedule is configured.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

from ..dns.policies import stable_fraction
from ..obs import NULL_TRACER, get_registry, get_tracer
from .schedule import FaultKind, FaultSchedule, FaultWindow

__all__ = ["FaultInjector"]


class FaultInjector:
    """Turns a :class:`FaultSchedule` into per-event fault decisions."""

    def __init__(
        self,
        schedule: FaultSchedule,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.schedule = schedule
        self.seed = seed
        self._clock = clock
        self._now = 0.0
        self._open: set[FaultWindow] = set()
        registry = metrics if metrics is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._m_injected = registry.counter(
            "faults_injected_total",
            "Fault decisions that actually injected a failure",
            ("kind",),
        )
        self._m_active = registry.gauge(
            "faults_active", "Fault windows currently open"
        )

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def now(self) -> float:
        """The injector's current time (clock or last ``set_time``)."""
        if self._clock is not None:
            return self._clock()
        return self._now

    def set_time(self, now: float) -> None:
        """Stamp the current simulation time (engine-driven mode)."""
        self._now = now

    @contextmanager
    def quiet(self):
        """Suppress trace events (not decisions) for the duration.

        Checkpoint resume replays the pre-checkpoint ticks through the
        live world; the fault *decisions* must repeat exactly, but the
        ``fault_opened``/``fault_closed`` events were already emitted by
        the original run and would duplicate in the trace.
        """
        saved = self._tracer
        self._tracer = NULL_TRACER
        try:
            yield self
        finally:
            self._tracer = saved

    def observe(self, now: Optional[float] = None) -> None:
        """Edge-detect window opens/closes; emits trace events.

        Called from the failover loop (serve) or once per engine step
        (simulation) so fault activations are visible in the trace even
        if no request ever hits them.
        """
        at = self.now() if now is None else now
        active = set(self.schedule.active(at))
        for window in sorted(active - self._open, key=lambda w: w.start):
            self._tracer.event(
                "fault_opened",
                ts=at,
                kind=window.kind.value,
                target=window.target,
                severity=window.severity,
                until=window.end,
            )
        for window in sorted(self._open - active, key=lambda w: w.start):
            self._tracer.event(
                "fault_closed",
                ts=at,
                kind=window.kind.value,
                target=window.target,
            )
        self._open = active
        self._m_active.set(len(active))

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def _decide(self, window: FaultWindow, *key) -> bool:
        """Whether this particular event falls inside the severity."""
        if window.severity >= 1.0:
            return True
        fraction = stable_fraction(
            "fault", self.seed, window.kind.value, window.target,
            str(window.start), *key,
        )
        return fraction < window.severity

    def _hit(self, kind: FaultKind) -> bool:
        self._m_injected.labels(kind.value).inc()
        return True

    def dns_fault(
        self, operator: Optional[str], key
    ) -> tuple[Optional[str], float, float]:
        """DNS-layer decision for one query to ``operator``'s DNS.

        Returns ``(action, delay_seconds, staleness_seconds)`` where
        action is ``"drop"``, ``"servfail"`` or ``None``.  Delay and
        staleness apply even when the query is answered.
        """
        now = self.now()
        action: Optional[str] = None
        window = self.schedule.find(FaultKind.DNS_DROP, now, operator)
        if window is not None and self._decide(window, key):
            self._hit(FaultKind.DNS_DROP)
            action = "drop"
        if action is None:
            window = self.schedule.find(FaultKind.DNS_SERVFAIL, now, operator)
            if window is not None and self._decide(window, key):
                self._hit(FaultKind.DNS_SERVFAIL)
                action = "servfail"
        delay = 0.0
        window = self.schedule.find(FaultKind.DNS_DELAY, now, operator)
        if window is not None:
            self._hit(FaultKind.DNS_DELAY)
            delay = window.severity
        staleness = 0.0
        window = self.schedule.find(FaultKind.DNS_STALE, now, operator)
        if window is not None:
            self._hit(FaultKind.DNS_STALE)
            staleness = window.severity
        return action, delay, staleness

    def vip_down(self, vip: str, operator: Optional[str] = None) -> bool:
        """Whether the vip at address ``vip`` is down right now.

        The decision is keyed by the vip itself, so an operator-wide
        window with severity 0.2 takes the *same* fifth of the fleet
        down for its whole duration — an outage, not request noise.
        """
        window = self.schedule.find(FaultKind.VIP_OUTAGE, self.now(), vip, operator)
        if window is None:
            return False
        if self._decide(window, "vip", vip):
            return self._hit(FaultKind.VIP_OUTAGE)
        return False

    def edge_crashed(self, hostname: str, operator: str = "Apple") -> bool:
        """Whether the edge-bx cache ``hostname`` is crashed right now."""
        window = self.schedule.find(
            FaultKind.EDGE_CRASH, self.now(), hostname, operator
        )
        if window is None:
            return False
        if self._decide(window, "edge", hostname):
            return self._hit(FaultKind.EDGE_CRASH)
        return False

    def http_delay(self, vip: str, operator: Optional[str] = None) -> float:
        """Added first-byte delay for one request (slow-start throttle)."""
        window = self.schedule.find(FaultKind.SLOW_START, self.now(), vip, operator)
        if window is None:
            return 0.0
        self._hit(FaultKind.SLOW_START)
        return window.severity

    def cdn_down(self, operator: Optional[str], key=None) -> bool:
        """Whether the member CDN ``operator`` fails this probe/request.

        A blackout always fails; a brownout fails the ``severity``
        fraction of events, keyed by ``key``.
        """
        now = self.now()
        if self.schedule.find(FaultKind.CDN_BLACKOUT, now, operator) is not None:
            return self._hit(FaultKind.CDN_BLACKOUT)
        window = self.schedule.find(FaultKind.CDN_BROWNOUT, now, operator)
        if window is not None and self._decide(window, key):
            return self._hit(FaultKind.CDN_BROWNOUT)
        return False

    def route_withdrawn(self, site_id: str) -> bool:
        """Whether the anycast site ``site_id`` has withdrawn its route.

        Routing-plane only: :meth:`cdn_down` never consults route
        kinds, so health probes keep passing while the catchment moves.
        """
        window = self.schedule.find(FaultKind.ROUTE_WITHDRAW, self.now(), site_id)
        if window is None:
            return False
        return self._hit(FaultKind.ROUTE_WITHDRAW)

    def route_prepend(self, site_id: str) -> int:
        """AS-path prepends the site currently adds (0 when unfaulted)."""
        window = self.schedule.find(FaultKind.ROUTE_PREPEND, self.now(), site_id)
        if window is None:
            return 0
        self._hit(FaultKind.ROUTE_PREPEND)
        return max(1, int(window.severity))
