"""Pure-data fault schedules: what breaks, when, and how badly.

A :class:`FaultSchedule` is a sorted set of :class:`FaultWindow` entries
keyed by time — simulation seconds when driving the in-memory engine,
wall-clock seconds since cluster start when driving the live serving
layer.  The schedule itself carries no randomness and no clock; the
:class:`~repro.faults.injector.FaultInjector` turns it into per-request
decisions deterministically.

Fault kinds and their ``severity`` semantics:

=====================  =================================================
kind                   severity
=====================  =================================================
``dns-drop``           probability a query to the target operator's DNS
                       is silently dropped
``dns-delay``          seconds added before the answer is sent
``dns-servfail``       probability a query is answered SERVFAIL
``dns-stale``          seconds of staleness: answers are computed as of
                       ``now - severity`` (a stuck zone snapshot)
``vip-outage``         fraction of matching vips that are hard-down for
                       the window (an exact-address target with the
                       default severity 1.0 is simply down)
``edge-crash``         fraction of matching edge-bx caches crashed; the
                       vip then serves through the edge-lx tier (§3.3)
``slow-start``         seconds of added first-byte delay per request
``cdn-blackout``       ignored — the member CDN is entirely down
``cdn-brownout``       probability any one probe/request to the member
                       CDN fails
``route-withdraw``     ignored — the target anycast site withdraws its
                       announcement of the shared VIP prefix; clients in
                       its catchment shift to the next-best site
``route-prepend``      number of AS-path prepends the target site adds
                       to its announcement (lengthens the path, shedding
                       most of its catchment without going dark)
``worker-kill``        number of times the targeted shard worker process
                       SIGKILLs itself mid-chunk (each respawned
                       incarnation dies again until the count is spent)
``worker-stall``       seconds the targeted shard worker hangs without
                       heartbeating, tripping the supervisor's timeout
=====================  =================================================

The route kinds target an anycast *site id* (e.g. ``"defra-1"``).  They
act purely on the routing plane: :class:`CdnHealthMonitor` probes never
consult them, so catchment shifts are invisible to DNS health failover.

The worker kinds target a shard worker id (``"w0"``, ``"w1"``, ... or
``"*"``) and act purely on the *process* plane: they are evaluated only
inside shard worker processes, never by the serial engine, so a run
with worker faults must still produce byte-identical results — the
supervisor's recovery is what the chaos drill asserts.

``target`` names what the window applies to: a CDN member / operator
(``"Apple"``, ``"Akamai"``, ``"Limelight"``, ``"Level3"``), a vip
address string, an edge-bx hostname, or ``"*"`` for everything the kind
can hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional, Sequence

__all__ = ["FaultKind", "FaultWindow", "FaultSchedule"]


class FaultKind(Enum):
    """Everything the injection plane knows how to break."""

    # DNS layer
    DNS_DROP = "dns-drop"
    DNS_DELAY = "dns-delay"
    DNS_SERVFAIL = "dns-servfail"
    DNS_STALE = "dns-stale"
    # cache servers
    VIP_OUTAGE = "vip-outage"
    EDGE_CRASH = "edge-crash"
    SLOW_START = "slow-start"
    # whole member CDNs
    CDN_BLACKOUT = "cdn-blackout"
    CDN_BROWNOUT = "cdn-brownout"
    # anycast routing plane (invisible to health probes)
    ROUTE_WITHDRAW = "route-withdraw"
    ROUTE_PREPEND = "route-prepend"
    # shard worker processes (invisible to world state)
    WORKER_KILL = "worker-kill"
    WORKER_STALL = "worker-stall"

    @classmethod
    def parse(cls, text: str) -> "FaultKind":
        """The kind named by ``text`` (the ``value`` spelling)."""
        for kind in cls:
            if kind.value == text:
                return kind
        valid = ", ".join(kind.value for kind in cls)
        raise ValueError(f"unknown fault kind {text!r} (valid: {valid})")


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: ``kind`` against ``target`` over [start, end)."""

    start: float
    end: float
    target: str
    kind: FaultKind
    severity: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            # A plain string kind would otherwise never match the
            # identity checks in FaultSchedule.find — coerce it.
            object.__setattr__(self, "kind", FaultKind.parse(self.kind))
        elif not isinstance(self.kind, FaultKind):
            valid = ", ".join(kind.value for kind in FaultKind)
            raise ValueError(
                f"unknown fault kind {self.kind!r} (valid: {valid})"
            )
        if self.end <= self.start:
            raise ValueError(
                f"a fault window must end after it starts "
                f"(got start={self.start:g}, end={self.end:g})"
            )
        if self.severity <= 0.0:
            raise ValueError("severity must be positive")
        if not self.target:
            raise ValueError("a fault window needs a target ('*' for all)")

    def active(self, now: float) -> bool:
        """Whether the window covers ``now`` (half-open interval)."""
        return self.start <= now < self.end

    def matches(self, *targets: Optional[str]) -> bool:
        """Whether the window applies to any of ``targets``."""
        return self.target == "*" or any(
            t is not None and t == self.target for t in targets
        )

    def shifted(self, offset: float) -> "FaultWindow":
        """The same fault, translated in time by ``offset`` seconds."""
        return FaultWindow(
            self.start + offset, self.end + offset,
            self.target, self.kind, self.severity,
        )

    def describe(self) -> str:
        """A one-line human rendering (CLI spec syntax)."""
        return (
            f"{self.kind.value}@{self.target}:"
            f"{self.start:g}-{self.end:g}:{self.severity:g}"
        )


class FaultSchedule:
    """An immutable, time-sorted collection of fault windows."""

    def __init__(self, windows: Iterable[FaultWindow] = ()) -> None:
        checked = []
        for window in windows:
            # Validate before sorting: the sort key dereferences
            # ``kind.value``, which would crash opaquely on a
            # duck-typed window that skipped FaultWindow validation.
            if not isinstance(window.kind, FaultKind):
                valid = ", ".join(kind.value for kind in FaultKind)
                raise ValueError(
                    f"unknown fault kind {window.kind!r} (valid: {valid})"
                )
            if window.end <= window.start:
                raise ValueError(
                    f"fault window {window.kind.value}@{window.target} must "
                    f"end after it starts (got start={window.start:g}, "
                    f"end={window.end:g})"
                )
            checked.append(window)
        self._windows = tuple(
            sorted(checked, key=lambda w: (w.start, w.end, w.kind.value, w.target))
        )

    @property
    def windows(self) -> tuple[FaultWindow, ...]:
        """Every scheduled window, in start order."""
        return self._windows

    def __len__(self) -> int:
        return len(self._windows)

    def __iter__(self):
        return iter(self._windows)

    def active(self, now: float) -> tuple[FaultWindow, ...]:
        """The windows covering ``now``."""
        return tuple(w for w in self._windows if w.active(now))

    def find(
        self, kind: FaultKind, now: float, *targets: Optional[str]
    ) -> Optional[FaultWindow]:
        """The worst active window of ``kind`` hitting any of ``targets``."""
        best: Optional[FaultWindow] = None
        for window in self._windows:
            if window.kind is not kind:
                continue
            if not window.active(now):
                continue
            if not window.matches(*targets):
                continue
            if best is None or window.severity > best.severity:
                best = window
        return best

    def end_time(self) -> float:
        """When the last scheduled fault clears (0.0 when empty)."""
        return max((w.end for w in self._windows), default=0.0)

    def shifted(self, offset: float) -> "FaultSchedule":
        """The whole schedule translated in time by ``offset`` seconds."""
        return FaultSchedule(w.shifted(offset) for w in self._windows)

    def describe(self) -> str:
        """One spec line per window."""
        return "\n".join(w.describe() for w in self._windows)

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "FaultSchedule":
        """Build a schedule from CLI specs.

        Each spec reads ``kind@target:start-end`` or
        ``kind@target:start-end:severity``, e.g.
        ``cdn-blackout@Limelight:3-9`` or
        ``dns-drop@Akamai:0-30:0.25``.
        """
        windows = []
        for spec in specs:
            head, _, rest = spec.partition("@")
            if not rest:
                raise ValueError(f"fault spec {spec!r} is missing '@target'")
            kind = FaultKind.parse(head.strip())
            target, _, timing = rest.partition(":")
            if not timing:
                raise ValueError(f"fault spec {spec!r} is missing ':start-end'")
            parts = timing.split(":")
            if len(parts) not in (1, 2):
                raise ValueError(f"fault spec {spec!r} has too many ':' fields")
            span = parts[0].split("-")
            if len(span) != 2:
                raise ValueError(f"fault spec {spec!r} needs 'start-end' seconds")
            severity = float(parts[1]) if len(parts) == 2 else 1.0
            windows.append(
                FaultWindow(
                    start=float(span[0]),
                    end=float(span[1]),
                    target=target.strip(),
                    kind=kind,
                    severity=severity,
                )
            )
        return cls(windows)
