"""HTTP substrate: messages plus the Via / X-Cache header conventions
that Section 3.3's edge-site structure inference relies on."""

from .headers import (
    TRAFFIC_SERVER_AGENT,
    CacheStatus,
    ViaEntry,
    parse_via,
    parse_x_cache,
    record_cache_hop,
)
from .messages import Headers, HttpRequest, HttpResponse

__all__ = [
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "CacheStatus",
    "ViaEntry",
    "parse_via",
    "parse_x_cache",
    "record_cache_hop",
    "TRAFFIC_SERVER_AGENT",
]
