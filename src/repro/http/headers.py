"""``Via`` and ``X-Cache`` header conventions.

The paper's Section 3.3 shows this header sample from an iOS image
download and derives the edge-site structure from it::

    X-Cache: miss, hit-fresh, Hit from cloudfront
    Via: 1.1 2db316290386960b489a2a16c0a63643.cloudfront.net (CloudFront),
     http/1.1 defra1-edge-lx-011.ts.apple.com (ApacheTrafficServer/7.0.0),
     http/1.1 defra1-edge-bx-033.ts.apple.com (ApacheTrafficServer/7.0.0)

Two orderings matter and are modelled exactly:

* ``Via`` collects entries on the *response path*: the origin-most hop
  appears first, the client-most cache last.
* ``X-Cache`` collects per-hop cache verdicts client-most first (each
  Apache Traffic Server prepends its own verdict to the upstream list).

The analysis layer re-derives the vip → edge-bx → edge-lx hierarchy by
parsing these headers, exactly as the authors did.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .messages import HttpResponse

__all__ = [
    "CacheStatus",
    "ViaEntry",
    "parse_via",
    "parse_x_cache",
    "record_cache_hop",
    "TRAFFIC_SERVER_AGENT",
]

TRAFFIC_SERVER_AGENT = "ApacheTrafficServer/7.0.0"

_VIA_ENTRY = re.compile(
    r"^\s*(?P<protocol>[A-Za-z0-9./]+)\s+(?P<host>[^\s(]+)(?:\s+\((?P<agent>[^)]*)\))?\s*$"
)


class CacheStatus(str, Enum):
    """Per-hop cache verdicts as they appear in ``X-Cache``."""

    MISS = "miss"
    HIT_FRESH = "hit-fresh"
    HIT_STALE = "hit-stale"
    HIT_FROM_CLOUDFRONT = "Hit from cloudfront"
    MISS_FROM_CLOUDFRONT = "Miss from cloudfront"

    @classmethod
    def parse(cls, text: str) -> "CacheStatus":
        """Parse one X-Cache token (case preserved for CloudFront forms)."""
        cleaned = text.strip()
        for status in cls:
            if status.value.lower() == cleaned.lower():
                return status
        raise ValueError(f"unknown X-Cache token: {text!r}")

    @property
    def is_hit(self) -> bool:
        """Whether this verdict served the object from cache."""
        return self in (
            CacheStatus.HIT_FRESH,
            CacheStatus.HIT_STALE,
            CacheStatus.HIT_FROM_CLOUDFRONT,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ViaEntry:
    """One proxy's entry in the ``Via`` header."""

    protocol: str  # e.g. "http/1.1" or "1.1"
    host: str  # e.g. "defra1-edge-bx-033.ts.apple.com"
    agent: Optional[str] = None  # e.g. "ApacheTrafficServer/7.0.0"

    def render(self) -> str:
        """The header token for this entry."""
        if self.agent is None:
            return f"{self.protocol} {self.host}"
        return f"{self.protocol} {self.host} ({self.agent})"

    @classmethod
    def parse(cls, token: str) -> "ViaEntry":
        """Parse a single comma-separated Via token."""
        match = _VIA_ENTRY.match(token)
        if match is None:
            raise ValueError(f"unparseable Via token: {token!r}")
        return cls(
            protocol=match.group("protocol"),
            host=match.group("host").lower(),
            agent=match.group("agent"),
        )

    def __str__(self) -> str:
        return self.render()


def parse_via(header: str) -> list[ViaEntry]:
    """Parse a full ``Via`` header into entries, origin-most first."""
    tokens = [token for token in header.split(",") if token.strip()]
    return [ViaEntry.parse(token) for token in tokens]


def parse_x_cache(header: str) -> list[CacheStatus]:
    """Parse a full ``X-Cache`` header, client-most verdict first."""
    tokens = [token for token in header.split(",") if token.strip()]
    return [CacheStatus.parse(token) for token in tokens]


def record_cache_hop(
    response: HttpResponse,
    host: str,
    status: CacheStatus,
    agent: str = TRAFFIC_SERVER_AGENT,
    protocol: str = "http/1.1",
) -> None:
    """Record one cache hop on ``response`` the way ATS does.

    Appends to ``Via`` (so origin-most stays first) and prepends to
    ``X-Cache`` (so the newest, client-most verdict leads).  Call this
    once per cache the response traverses, innermost first.
    """
    entry = ViaEntry(protocol=protocol, host=host, agent=agent)
    response.headers.add("Via", entry.render())

    existing = response.headers.get("X-Cache")
    if existing:
        response.headers.set("X-Cache", f"{status.value}, {existing}")
    else:
        response.headers.set("X-Cache", status.value)
