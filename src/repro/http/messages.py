"""Minimal HTTP request/response model.

Section 3.1 observes that iOS devices fetch the update manifest and the
update image over plain HTTP; Section 3.3 infers the internal structure
of Apple's edge sites from the ``Via`` and ``X-Cache`` headers on those
responses.  This module models just enough HTTP for both: messages with
case-insensitive headers and a body size (bodies are never materialised
— a 2-3 GB iOS image is represented by its byte count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

__all__ = ["Headers", "HttpRequest", "HttpResponse"]


class Headers:
    """A case-insensitive multi-header map preserving insertion order.

    Repeated fields (``Via`` accumulates one entry per proxy) are joined
    with ``", "`` on read, mirroring RFC 7230 list semantics.
    """

    def __init__(self, initial: Optional[Mapping[str, str]] = None) -> None:
        self._entries: list[tuple[str, str]] = []
        for name, value in (initial or {}).items():
            self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a field without replacing existing ones."""
        self._entries.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all fields called ``name`` with a single value."""
        lowered = name.lower()
        self._entries = [(n, v) for n, v in self._entries if n.lower() != lowered]
        self._entries.append((name, value))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The combined value of ``name`` (comma-joined), or ``default``."""
        lowered = name.lower()
        values = [value for field_name, value in self._entries if field_name.lower() == lowered]
        if not values:
            return default
        return ", ".join(values)

    def get_all(self, name: str) -> list[str]:
        """Every raw field value for ``name``, in insertion order."""
        lowered = name.lower()
        return [value for field_name, value in self._entries if field_name.lower() == lowered]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and any(
            field_name.lower() == name.lower() for field_name, _ in self._entries
        )

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def copy(self) -> "Headers":
        """A shallow copy preserving order and duplicates."""
        duplicate = Headers()
        duplicate._entries = list(self._entries)
        return duplicate


@dataclass
class HttpRequest:
    """An HTTP request for one resource."""

    method: str
    host: str
    path: str
    headers: Headers = field(default_factory=Headers)

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        self.host = self.host.lower()
        if not self.path.startswith("/"):
            raise ValueError(f"path must be absolute: {self.path!r}")

    @property
    def url(self) -> str:
        """The full URL (the update chain is plain http, Section 3.1)."""
        return f"http://{self.host}{self.path}"

    def __str__(self) -> str:
        return f"{self.method} {self.url}"


@dataclass
class HttpResponse:
    """An HTTP response; the body is represented only by its size."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body_size: int = 0

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise ValueError(f"implausible status code: {self.status}")
        if self.body_size < 0:
            raise ValueError(f"negative body size: {self.body_size}")

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    def __str__(self) -> str:
        return f"HTTP {self.status} ({self.body_size} bytes)"
