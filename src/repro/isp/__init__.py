"""The eyeball-ISP substrate: border topology, BGP view, Netflow
collection, SNMP counters, and the Section 5.1 offload/overflow
classification."""

from .bgp import BgpRib, BgpRoute
from .billing import BillImpact, PercentileBilling, bill_impact
from .classify import THIRD_PARTY_OPERATORS, ClassifiedFlow, TrafficClassifier
from .netflow import FlowRecord, NetflowCollector
from .snmp import SnmpCounters
from .topology import EyeballIsp, PeeringLink

__all__ = [
    "EyeballIsp",
    "PercentileBilling",
    "BillImpact",
    "bill_impact",
    "PeeringLink",
    "BgpRoute",
    "BgpRib",
    "FlowRecord",
    "NetflowCollector",
    "SnmpCounters",
    "ClassifiedFlow",
    "TrafficClassifier",
    "THIRD_PARTY_OPERATORS",
]
