"""The ISP's BGP view: best routes with origin AS and ingress links.

Section 5.2 reports ~60 million BGP routes across ~300 sessions; the
reproduction keeps the same *queryable facts* at laptop scale: for any
source address, the originating AS (the paper's *Source AS*) and the
set of peering links the prefix is reachable over (which fixes the
*handover AS*).  Routes are the post-selection best paths — decision
process details are irrelevant to the offload/overflow analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..net.asys import ASN
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..net.trie import PrefixTrie

__all__ = ["BgpRoute", "BgpRib"]


@dataclass(frozen=True)
class BgpRoute:
    """One installed best route.

    ``link_ids`` are the ingress links traffic from this prefix
    arrives over (multiple links to the same neighbour are balanced);
    the first AS in ``as_path`` is the handover AS, the last the
    origin (Source AS).
    """

    prefix: IPv4Prefix
    as_path: tuple[ASN, ...]
    link_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("empty AS path")
        if not self.link_ids:
            raise ValueError(f"route {self.prefix} has no ingress links")

    @property
    def origin_asn(self) -> ASN:
        """The Source AS: who originates the prefix."""
        return self.as_path[-1]

    @property
    def neighbor_asn(self) -> ASN:
        """The handover AS: the direct neighbour announcing the route."""
        return self.as_path[0]

    @property
    def is_direct(self) -> bool:
        """Whether origin and handover coincide (no transit)."""
        return self.origin_asn == self.neighbor_asn

    def __str__(self) -> str:
        path = " ".join(str(asn.number) for asn in self.as_path)
        return f"{self.prefix} via [{path}] over {','.join(self.link_ids)}"


class BgpRib:
    """Longest-prefix-match table of installed best routes."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[BgpRoute] = PrefixTrie()
        self._count = 0

    def install(self, route: BgpRoute) -> None:
        """Install (or replace) the best route for ``route.prefix``."""
        if self._trie.get(route.prefix) is None:
            self._count += 1
        self._trie.insert(route.prefix, route)

    def lookup(self, address: IPv4Address) -> Optional[BgpRoute]:
        """The best route covering ``address``, or ``None``."""
        return self._trie.lookup(address)

    def origin_asn(self, address: IPv4Address) -> Optional[ASN]:
        """Shortcut: the Source AS for ``address``."""
        route = self._trie.lookup(address)
        return route.origin_asn if route is not None else None

    def routes(self) -> Iterator[BgpRoute]:
        """All installed routes."""
        for _, route in self._trie.items():
            yield route

    @property
    def route_count(self) -> int:
        """Number of installed routes (the paper tracked ~60 M)."""
        return self._count

    def __len__(self) -> int:
        return self._count
