"""The ISP's BGP view: candidate routes with origin AS and ingress links.

Section 5.2 reports ~60 million BGP routes across ~300 sessions; the
reproduction keeps the same *queryable facts* at laptop scale: for any
source address, the originating AS (the paper's *Source AS*) and the
set of peering links the prefix is reachable over (which fixes the
*handover AS*).

The table holds every announced candidate per prefix, not just the
post-selection winner: anycast prefixes are announced from many sites
at once, so the decision process (shortest AS path, then a stable
deterministic tie-break) has to run over the full candidate set.  For
unicast prefixes with a single announcement the behaviour is identical
to a best-route table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional

from ..net.asys import ASN
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..net.trie import PrefixTrie

__all__ = ["BgpRoute", "BgpRib", "route_preference"]


@dataclass(frozen=True)
class BgpRoute:
    """One announced route.

    ``link_ids`` are the ingress links traffic from this prefix
    arrives over (multiple links to the same neighbour are balanced);
    the first AS in ``as_path`` is the handover AS, the last the
    origin (Source AS).
    """

    prefix: IPv4Prefix
    as_path: tuple[ASN, ...]
    link_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("empty AS path")
        if not self.link_ids:
            raise ValueError(f"route {self.prefix} has no ingress links")

    @property
    def origin_asn(self) -> ASN:
        """The Source AS: who originates the prefix."""
        return self.as_path[-1]

    @property
    def neighbor_asn(self) -> ASN:
        """The handover AS: the direct neighbour announcing the route."""
        return self.as_path[0]

    @property
    def is_direct(self) -> bool:
        """Whether origin and handover coincide (no transit)."""
        return self.origin_asn == self.neighbor_asn

    def __str__(self) -> str:
        path = " ".join(str(asn.number) for asn in self.as_path)
        return f"{self.prefix} via [{path}] over {','.join(self.link_ids)}"


def _route_digest(route: BgpRoute) -> bytes:
    """A stable content digest used to break best-path ties."""
    text = "|".join(
        [
            str(route.prefix),
            ".".join(str(asn.number) for asn in route.as_path),
            ",".join(route.link_ids),
        ]
    )
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()


def route_preference(route: BgpRoute) -> tuple[int, bytes]:
    """Best-path sort key: shortest AS path, then stable BLAKE2b tie-break.

    Lower sorts better.  The tie-break depends only on route content,
    never on insertion order or ``id()``, so selection is bit-identical
    across processes and runs.
    """
    return (len(route.as_path), _route_digest(route))


class BgpRib:
    """Longest-prefix-match table of announced candidate routes.

    Each prefix maps to a deterministic candidate set; :meth:`lookup`
    applies best-path selection (shortest AS path, stable tie-break)
    over the candidates of the longest matching prefix.  Installing a
    second distinct route for a prefix *adds a candidate* — it no
    longer silently replaces the previous announcement.
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie[tuple[BgpRoute, ...]] = PrefixTrie()

    def install(self, route: BgpRoute) -> None:
        """Announce ``route``, adding it to its prefix's candidate set.

        Re-announcing an identical route is a no-op; a route that
        differs in AS path or ingress links joins the candidate set in
        preference order.
        """
        existing = self._trie.get(route.prefix) or ()
        if route in existing:
            return
        candidates = tuple(sorted(existing + (route,), key=route_preference))
        self._trie.insert(route.prefix, candidates)

    def withdraw(self, route: BgpRoute) -> bool:
        """Withdraw one previously announced route.

        Returns ``True`` if the route was present.  Withdrawing the
        last candidate leaves an empty set installed, which lookups
        skip over (the covering prefix, if any, answers instead).
        """
        existing = self._trie.get(route.prefix)
        if not existing or route not in existing:
            return False
        remaining = tuple(r for r in existing if r != route)
        self._trie.insert(route.prefix, remaining)
        return True

    def candidates(self, prefix: IPv4Prefix) -> tuple[BgpRoute, ...]:
        """Every announced candidate for exactly ``prefix``, best first."""
        return self._trie.get(prefix) or ()

    def lookup(self, address: IPv4Address) -> Optional[BgpRoute]:
        """Best route covering ``address``, or ``None``."""
        best = self.lookup_all(address)
        return best[0] if best else None

    def lookup_all(self, address: IPv4Address) -> tuple[BgpRoute, ...]:
        """All candidates of the longest matching prefix, best first.

        Prefixes whose candidates were all withdrawn are transparent:
        the next-longest covering prefix answers.
        """
        # Walk covering prefixes longest-first: take the longest match,
        # and if its candidate set is empty (fully withdrawn) retry
        # strictly above it.
        length = 33
        while length > 0:
            found = self._lookup_above(address, length)
            if found is None:
                break
            match_prefix, candidates = found
            if candidates:
                return candidates
            length = match_prefix.length
        return ()

    def _lookup_above(
        self, address: IPv4Address, below: int
    ) -> Optional[tuple[IPv4Prefix, tuple[BgpRoute, ...]]]:
        """Longest match for ``address`` strictly shorter than ``below``."""
        return self._trie.lookup_prefix(address, max_length=below - 1)

    def origin_asn(self, address: IPv4Address) -> Optional[ASN]:
        """Shortcut: the Source AS for ``address``."""
        route = self.lookup(address)
        return route.origin_asn if route is not None else None

    def routes(self) -> Iterator[BgpRoute]:
        """All announced routes (every candidate of every prefix)."""
        for _, candidates in self._trie.items():
            yield from candidates

    def routes_under(self, prefix: IPv4Prefix) -> Iterator[BgpRoute]:
        """All announced routes whose prefix is covered by ``prefix``."""
        for _, candidates in self._trie.items_under(prefix):
            yield from candidates

    @property
    def route_count(self) -> int:
        """Number of prefixes with at least one live candidate."""
        return sum(1 for _, candidates in self._trie.items() if candidates)

    def __len__(self) -> int:
        return self.route_count
