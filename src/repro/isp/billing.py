"""95th-percentile ("95/5") transit billing.

Section 5.4 closes with a commercial observation: the overflow spike
Limelight pushed through AS D "could mean a multifold increase of their
monthly bill, because the prevalent 95/5 billing is affected by the
traffic spike".  Under 95/5, a month is cut into 5-minute samples, the
top 5 % are discarded, and the highest remaining sample sets the
committed rate billed for the whole month — so a multi-day spike lands
squarely inside the billable percentile.

:class:`PercentileBilling` computes that from SNMP byte counters, and
:func:`bill_impact` quantifies the before/after effect of an event.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Iterable, Optional

from .snmp import SnmpCounters

__all__ = ["PercentileBilling", "BillImpact", "bill_impact"]


@dataclass(frozen=True)
class PercentileBilling:
    """The classic 95/5 scheme (parameters adjustable)."""

    percentile: float = 0.95
    sample_seconds: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        if self.sample_seconds <= 0:
            raise ValueError("sample_seconds must be positive")

    def billable_gbps(self, samples: Iterable[float]) -> float:
        """The billable rate for a series of per-sample Gbps values.

        The top ``1 - percentile`` of samples is discarded; the maximum
        of the remainder is the committed rate.  An empty series bills
        zero.
        """
        ordered = sorted(samples)
        if not ordered:
            return 0.0
        # 1-based rank ceil(p*n): exactly the top (1-p) share is free,
        # and a single sample bills in full.
        rank = math.ceil(self.percentile * len(ordered))
        return ordered[max(0, rank - 1)]

    def samples_from_snmp(
        self,
        snmp: SnmpCounters,
        link_ids: Iterable[str],
        start: float,
        end: float,
    ) -> list[float]:
        """Per-bin aggregate Gbps over a link group, zero-filled.

        SNMP bins may be coarser than 5 minutes; each bin contributes
        one sample at its average rate, and bins without traffic count
        as zero — exactly how a billing collector sees a quiet period.
        """
        if end <= start:
            raise ValueError("end must be after start")
        links = list(link_ids)
        samples = []
        bin_seconds = snmp.bin_seconds
        cursor = snmp.bin_start(start)
        while cursor < end:
            total_bytes = sum(
                snmp.bytes_in_bin(link, cursor) for link in links
            )
            samples.append(total_bytes * 8.0 / 1e9 / bin_seconds)
            cursor += bin_seconds
        return samples


@dataclass(frozen=True)
class BillImpact:
    """Billable rate before vs including an event."""

    baseline_gbps: float
    with_event_gbps: float

    @property
    def multiplier(self) -> float:
        """How many times the committed rate grew (inf from zero)."""
        if self.baseline_gbps <= 0.0:
            return float("inf") if self.with_event_gbps > 0 else 1.0
        return self.with_event_gbps / self.baseline_gbps

    def render(self) -> str:
        """One-line report."""
        return (
            f"95/5 billable rate: {self.baseline_gbps:.2f} Gbps before, "
            f"{self.with_event_gbps:.2f} Gbps with the event "
            f"({self.multiplier:.1f}x)"
        )


def bill_impact(
    snmp: SnmpCounters,
    link_ids: Iterable[str],
    baseline_start: float,
    event_start: float,
    event_end: float,
    billing: Optional[PercentileBilling] = None,
) -> BillImpact:
    """The §5.4 bill effect for a link group.

    ``baseline_start .. event_start`` is the quiet reference period;
    ``baseline_start .. event_end`` is the same billing window with the
    event included (a real bill covers the whole month — using the same
    left edge keeps sample counts comparable).
    """
    scheme = billing if billing is not None else PercentileBilling()
    links = list(link_ids)
    before = scheme.samples_from_snmp(snmp, links, baseline_start, event_start)
    including = scheme.samples_from_snmp(snmp, links, baseline_start, event_end)
    return BillImpact(
        baseline_gbps=scheme.billable_gbps(before),
        with_event_gbps=scheme.billable_gbps(including),
    )
