"""Offload and overflow classification (Section 5.1).

The paper's two definitions, implemented verbatim:

* **Offload** — traffic the Apple Meta-CDN delivers via third-party CDN
  servers, i.e. the *Source AS* (origin of the server's address) is a
  third-party CDN.
* **Overflow** — traffic received from non-direct neighbours: the
  Source AS and the *handover AS* (the direct neighbour on the ingress
  link) differ.

The two are orthogonal: Akamai traffic via a transit AS is both;
Apple traffic via a transit AS is overflow only; Akamai traffic over a
direct Akamai link is offload only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..net.asys import ASN
from ..net.ipv4 import IPv4Address
from .bgp import BgpRib
from .netflow import FlowRecord
from .topology import EyeballIsp

__all__ = ["ClassifiedFlow", "TrafficClassifier", "THIRD_PARTY_OPERATORS"]

THIRD_PARTY_OPERATORS = frozenset({"Akamai", "Limelight", "Level3"})


@dataclass(frozen=True)
class ClassifiedFlow:
    """A flow record plus the Section 5.1 attribution."""

    flow: FlowRecord
    source_asn: Optional[ASN]
    handover_asn: ASN
    operator: Optional[str]  # CDN operating the server, if known

    @property
    def is_offload(self) -> bool:
        """Delivered by a third-party CDN on Apple's behalf."""
        return self.operator in THIRD_PARTY_OPERATORS

    @property
    def is_overflow(self) -> bool:
        """Received from a non-direct neighbour (Source AS != handover)."""
        return self.source_asn is not None and self.source_asn != self.handover_asn

    @property
    def is_update_traffic(self) -> bool:
        """Attributable to the Apple Meta-CDN at all (any known operator)."""
        return self.operator is not None


class TrafficClassifier:
    """Cross-correlates flows with BGP, link data and DNS observations.

    ``operator_of`` maps a server address to the CDN operating it; the
    paper derives this set from the RIPE Atlas DNS measurements ("we
    select all CDN server IPs observed in RIPE Atlas DNS measurements
    to the Apple Meta-CDN ... and cross-correlate them with Netflow").
    """

    def __init__(
        self,
        isp: EyeballIsp,
        rib: BgpRib,
        operator_of: Callable[[IPv4Address], Optional[str]],
    ) -> None:
        self._isp = isp
        self._rib = rib
        self._operator_of = operator_of

    def classify(self, flow: FlowRecord) -> ClassifiedFlow:
        """Attribute one flow record."""
        return ClassifiedFlow(
            flow=flow,
            source_asn=self._rib.origin_asn(flow.src),
            handover_asn=self._isp.handover_for(flow.link_id),
            operator=self._operator_of(flow.src),
        )

    def classify_all(self, flows: Iterable[FlowRecord]) -> Iterator[ClassifiedFlow]:
        """Attribute a stream of flow records."""
        return (self.classify(flow) for flow in flows)

    def update_traffic(
        self, flows: Iterable[FlowRecord]
    ) -> Iterator[ClassifiedFlow]:
        """Only the flows attributable to the Apple Meta-CDN."""
        return (c for c in self.classify_all(flows) if c.is_update_traffic)

    def offload_traffic(
        self, flows: Iterable[FlowRecord]
    ) -> Iterator[ClassifiedFlow]:
        """Only third-party-delivered (offload) flows."""
        return (c for c in self.classify_all(flows) if c.is_offload)

    def overflow_traffic(
        self, flows: Iterable[FlowRecord], operator: Optional[str] = None
    ) -> Iterator[ClassifiedFlow]:
        """Only overflow flows, optionally for one CDN operator."""
        for classified in self.classify_all(flows):
            if not classified.is_overflow:
                continue
            if operator is not None and classified.operator != operator:
                continue
            yield classified
