"""Netflow collection with packet sampling.

The ISP collected ~300 billion Netflow records over the measurement
week.  Netflow is *sampled* (typically 1 in N packets), so absolute
volumes from flow records alone are biased; the paper corrects this by
scaling flow volumes with the SNMP byte counters per link
(Section 5.3).  The reproduction implements both halves: a sampling
collector here, the SNMP-scaled estimator in
:mod:`repro.isp.snmp` / :mod:`repro.analysis.offload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..dns.policies import stable_fraction
from ..net.ipv4 import IPv4Address
from ..obs import get_registry

__all__ = ["FlowRecord", "NetflowCollector"]


@dataclass(frozen=True)
class FlowRecord:
    """One (sampled) flow record as exported by a border router."""

    timestamp: float
    src: IPv4Address
    dst: IPv4Address
    bytes: int
    link_id: str

    def __post_init__(self) -> None:
        if self.bytes <= 0:
            raise ValueError("flow bytes must be positive")


class NetflowCollector:
    """Samples synthetic flows out of aggregate per-link traffic.

    ``sampling_rate`` is the classic 1-in-N: an aggregate of B bytes on
    a link decomposes into flows of ``flow_bytes`` each, of which a
    deterministic 1/N are exported.  Determinism (a stable hash over
    link, time and flow index) keeps runs reproducible while remaining
    statistically faithful: expected exported volume is B/N.
    """

    def __init__(self, sampling_rate: int = 1000, flow_bytes: int = 40 * 1024 * 1024):
        if sampling_rate < 1:
            raise ValueError("sampling_rate must be >= 1")
        if flow_bytes <= 0:
            raise ValueError("flow_bytes must be positive")
        self.sampling_rate = sampling_rate
        self.flow_bytes = flow_bytes
        self._records: list[FlowRecord] = []
        self.total_offered_bytes = 0
        registry = get_registry()
        self._m_records = registry.counter(
            "netflow_records_total", "Flow records exported by the collector"
        )
        self._m_offered = registry.counter(
            "netflow_offered_bytes_total",
            "Aggregate bytes offered to the flow collector",
        )

    def observe(
        self,
        timestamp: float,
        src: IPv4Address,
        link_id: str,
        total_bytes: int,
        dst_picker: Optional[Callable[[int], IPv4Address]] = None,
    ) -> int:
        """Feed aggregate traffic from ``src`` over ``link_id``.

        ``dst_picker`` maps a flow index to a destination (customer)
        address; by default all flows share a placeholder destination,
        which is fine for source-AS/handover analyses.  Returns the
        number of records exported.
        """
        if total_bytes < 0:
            raise ValueError("bytes cannot be negative")
        self.total_offered_bytes += total_bytes
        self._m_offered.inc(total_bytes)
        flows = max(1, round(total_bytes / self.flow_bytes)) if total_bytes else 0
        exported = 0
        for index in range(flows):
            if stable_fraction(link_id, timestamp, src, index) < 1.0 / self.sampling_rate:
                destination = (
                    dst_picker(index) if dst_picker is not None
                    else IPv4Address.parse("100.64.0.1")
                )
                self._records.append(
                    FlowRecord(
                        timestamp=timestamp,
                        src=src,
                        dst=destination,
                        bytes=self.flow_bytes,
                        link_id=link_id,
                    )
                )
                exported += 1
        if exported:
            self._m_records.inc(exported)
        return exported

    def observe_exact(
        self, timestamp: float, src: IPv4Address, link_id: str, total_bytes: int,
        dst: Optional[IPv4Address] = None,
    ) -> None:
        """Record the aggregate as one unsampled record (rate 1 mode).

        The simulation engine uses this when configured without
        sampling: every byte shows up in exactly one record, so small
        scenario runs do not suffer sampling noise.
        """
        if total_bytes <= 0:
            return
        self.total_offered_bytes += total_bytes
        self._m_offered.inc(total_bytes)
        self._m_records.inc()
        self._records.append(
            FlowRecord(
                timestamp=timestamp,
                src=src,
                dst=dst if dst is not None else IPv4Address.parse("100.64.0.1"),
                bytes=total_bytes,
                link_id=link_id,
            )
        )

    def mark(self) -> int:
        """A cursor over the record log (for :meth:`records_since`)."""
        return len(self._records)

    def records_since(self, cursor: int) -> tuple[FlowRecord, ...]:
        """Records appended after a :meth:`mark` cursor was taken."""
        return tuple(self._records[cursor:])

    def absorb(self, records: Iterable[FlowRecord], offered_bytes: int) -> None:
        """Append records exported by another collector replica.

        The sharded engine generates flows in a worker process and
        merges them here; the worker's collector already counted the
        export metrics, so this only extends the log and the offered-
        bytes tally (no re-counting).
        """
        if offered_bytes < 0:
            raise ValueError("bytes cannot be negative")
        self._records.extend(records)
        self.total_offered_bytes += offered_bytes

    @property
    def records(self) -> tuple[FlowRecord, ...]:
        """Every exported record so far."""
        return tuple(self._records)

    def records_between(self, start: float, end: float) -> Iterator[FlowRecord]:
        """Records with ``start <= timestamp < end``."""
        return (r for r in self._records if start <= r.timestamp < end)

    def sampled_bytes(self) -> int:
        """Total bytes across exported records (before SNMP scaling)."""
        return sum(record.bytes for record in self._records)

    def __len__(self) -> int:
        return len(self._records)
