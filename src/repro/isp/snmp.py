"""SNMP byte counters per peering link.

The paper collected ~350 million SNMP measurements and used them to
(a) scale Netflow volumes ("we scale the Netflow traffic on the
peering links by the byte counters from SNMP to minimize Netflow
sampling errors", Section 5.3) and (b) classify handover ASs and find
saturated links (Section 5.4).

:class:`SnmpCounters` bins bytes per link; :meth:`scale_factor` yields
the per-link, per-bin correction the offload analysis applies to
sampled flow volumes.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterator, Optional

from ..obs import get_registry
from .netflow import NetflowCollector
from .topology import EyeballIsp

__all__ = ["SnmpCounters"]


class SnmpCounters:
    """Per-link byte counters in fixed time bins."""

    def __init__(self, bin_seconds: float = 300.0) -> None:
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        self.bin_seconds = bin_seconds
        self._bytes: dict[str, dict[float, int]] = defaultdict(dict)
        self._m_bytes = get_registry().counter(
            "snmp_bytes_total", "Bytes counted per peering link", ("link",)
        )

    def bin_start(self, timestamp: float) -> float:
        """The start of the bin containing ``timestamp``."""
        return math.floor(timestamp / self.bin_seconds) * self.bin_seconds

    def add_bytes(self, link_id: str, timestamp: float, count: int) -> None:
        """Count ``count`` bytes on ``link_id`` at ``timestamp``."""
        if count < 0:
            raise ValueError("bytes cannot be negative")
        bin_key = self.bin_start(timestamp)
        bins = self._bytes[link_id]
        bins[bin_key] = bins.get(bin_key, 0) + count
        self._m_bytes.labels(link_id).inc(count)

    def snapshot_bins(self) -> dict[str, dict[float, int]]:
        """A deep copy of the per-link bins (diff input for sharding)."""
        return {link: dict(bins) for link, bins in self._bytes.items()}

    def bins_since(self, base: dict[str, dict[float, int]]) -> dict[str, dict[float, int]]:
        """Per-link byte deltas accumulated since ``base`` was snapshot."""
        delta: dict[str, dict[float, int]] = {}
        for link, bins in self._bytes.items():
            base_bins = base.get(link, {})
            changed = {
                bin_key: count - base_bins.get(bin_key, 0)
                for bin_key, count in bins.items()
                if count != base_bins.get(bin_key, 0)
            }
            if changed:
                delta[link] = changed
        return delta

    def absorb(self, delta: dict[str, dict[float, int]]) -> None:
        """Merge per-link byte deltas counted by another replica.

        Worker-side counters already emitted the ``snmp_bytes_total``
        metrics for these bytes, so absorption updates bins only.
        """
        for link, bins in delta.items():
            target = self._bytes[link]
            for bin_key, count in bins.items():
                target[bin_key] = target.get(bin_key, 0) + count

    def bytes_in_bin(self, link_id: str, timestamp: float) -> int:
        """Bytes counted on ``link_id`` in the bin containing ``timestamp``."""
        return self._bytes.get(link_id, {}).get(self.bin_start(timestamp), 0)

    def series(self, link_id: str) -> list[tuple[float, int]]:
        """(bin start, bytes) pairs for a link, time-ordered."""
        return sorted(self._bytes.get(link_id, {}).items())

    def links(self) -> Iterator[str]:
        """Every link that has counted bytes."""
        return iter(self._bytes)

    def utilization(
        self, isp: EyeballIsp, link_id: str, timestamp: float
    ) -> float:
        """The link's fill level in the bin (1.0 = saturated)."""
        capacity = isp.link(link_id).capacity_bytes(self.bin_seconds)
        if capacity <= 0:
            return 0.0
        return min(1.0, self.bytes_in_bin(link_id, timestamp) / capacity)

    def saturated_links(
        self, isp: EyeballIsp, timestamp: float, threshold: float = 0.98
    ) -> list[str]:
        """Links at or above ``threshold`` utilisation in the bin."""
        return sorted(
            link_id
            for link_id in self._bytes
            if self.utilization(isp, link_id, timestamp) >= threshold
        )

    def scale_factor(
        self,
        collector: NetflowCollector,
        link_id: str,
        timestamp: float,
    ) -> Optional[float]:
        """SNMP/Netflow correction factor for a link and bin.

        Sampled flow bytes multiplied by this factor reproduce the SNMP
        ground truth — the Section 5.3 sampling-error correction.
        Returns ``None`` when no flow bytes landed in the bin.
        """
        bin_key = self.bin_start(timestamp)
        flow_bytes = sum(
            record.bytes
            for record in collector.records_between(bin_key, bin_key + self.bin_seconds)
            if record.link_id == link_id
        )
        if flow_bytes == 0:
            return None
        return self.bytes_in_bin(link_id, timestamp) / flow_bytes
