"""The Tier-1 European eyeball ISP's border topology.

Section 5.2: the authors measured on *all* border routers of the ISP,
knowing every active peering link and its *handover AS* (the direct
neighbour delivering the traffic), and verified that internal cache
links count as direct connections to the CDN controlling the cache.

:class:`EyeballIsp` models exactly that observable surface: border
routers, peering links with capacities and neighbour ASs, plus the
customer address space the eyeballs live in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..net.asys import ASN
from ..net.ipv4 import IPv4Prefix

__all__ = ["PeeringLink", "EyeballIsp"]


@dataclass(frozen=True)
class PeeringLink:
    """One peering link on a border router.

    ``is_cache_link`` marks internal CDN-cache links, which the paper
    treats "as direct connections to the CDN controlling the cache" —
    their handover AS is the CDN's AS even though the cache sits inside
    the ISP.
    """

    link_id: str
    router: str
    neighbor_asn: ASN
    capacity_gbps: float
    is_cache_link: bool = False

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError(f"{self.link_id}: capacity must be positive")

    def capacity_bytes(self, seconds: float) -> float:
        """Bytes the link can carry in ``seconds``."""
        return self.capacity_gbps / 8.0 * 1e9 * seconds

    def __str__(self) -> str:
        return f"{self.link_id} ({self.router} <-> {self.neighbor_asn}, {self.capacity_gbps} G)"


class EyeballIsp:
    """The measured ISP: identity, customer space and peering surface."""

    def __init__(self, asn: ASN, name: str, customer_prefix: IPv4Prefix) -> None:
        self.asn = asn
        self.name = name
        self.customer_prefix = customer_prefix
        self._links: dict[str, PeeringLink] = {}
        self._by_neighbor: dict[ASN, list[PeeringLink]] = {}
        self._down: set[str] = set()

    def add_link(self, link: PeeringLink) -> PeeringLink:
        """Register a peering link; link ids must be unique."""
        if link.link_id in self._links:
            raise ValueError(f"duplicate link id {link.link_id!r}")
        self._links[link.link_id] = link
        self._by_neighbor.setdefault(link.neighbor_asn, []).append(link)
        return link

    def link(self, link_id: str) -> PeeringLink:
        """The link with ``link_id``; raises ``KeyError`` if unknown."""
        return self._links[link_id]

    def find_link(self, link_id: str) -> Optional[PeeringLink]:
        """The link with ``link_id``, or ``None``."""
        return self._links.get(link_id)

    def links_for(self, neighbor: ASN) -> tuple[PeeringLink, ...]:
        """Every link to ``neighbor`` (empty if not a direct peer)."""
        return tuple(self._by_neighbor.get(neighbor, ()))

    def is_direct_peer(self, asn: ASN) -> bool:
        """Whether ``asn`` hands traffic to the ISP directly."""
        return asn in self._by_neighbor

    def handover_for(self, link_id: str) -> ASN:
        """The handover AS of a link."""
        return self.link(link_id).neighbor_asn

    # ----- failure injection ---------------------------------------------

    def fail_link(self, link_id: str) -> None:
        """Take a link down (maintenance, fibre cut, ...)."""
        if link_id not in self._links:
            raise KeyError(f"unknown link {link_id!r}")
        self._down.add(link_id)

    def restore_link(self, link_id: str) -> None:
        """Bring a failed link back up (idempotent)."""
        self._down.discard(link_id)

    def is_up(self, link_id: str) -> bool:
        """Whether the link currently carries traffic."""
        return link_id in self._links and link_id not in self._down

    def up_links(self, link_ids: Iterable[str]) -> tuple[PeeringLink, ...]:
        """The subset of ``link_ids`` that is up, as link objects."""
        return tuple(
            self._links[link_id]
            for link_id in link_ids
            if self.is_up(link_id)
        )

    @property
    def routers(self) -> tuple[str, ...]:
        """All border routers, sorted."""
        return tuple(sorted({link.router for link in self._links.values()}))

    @property
    def neighbors(self) -> tuple[ASN, ...]:
        """All direct neighbour ASs, sorted."""
        return tuple(sorted(self._by_neighbor))

    def __iter__(self) -> Iterator[PeeringLink]:
        return iter(self._links.values())

    def __len__(self) -> int:
        return len(self._links)

    def __str__(self) -> str:
        return f"EyeballIsp({self.name}, {self.asn}, {len(self)} links)"
