"""Network primitives: IPv4, prefix tries, autonomous systems, geography.

This subpackage is the foundation every other substrate builds on.  It is
dependency-free and deterministic.
"""

from .asys import (
    AS_AKAMAI,
    AS_APPLE,
    AS_LEVEL3,
    AS_LIMELIGHT,
    ASN,
    ASRegistry,
    AutonomousSystem,
)
from .geo import (
    Continent,
    Coordinates,
    MappingRegion,
    great_circle_km,
    nearest,
)
from .ipv4 import AddressError, IPv4Address, IPv4Prefix
from .locode import Location, LocodeDatabase
from .trie import PrefixTrie

__all__ = [
    "AddressError",
    "IPv4Address",
    "IPv4Prefix",
    "PrefixTrie",
    "ASN",
    "AutonomousSystem",
    "ASRegistry",
    "AS_APPLE",
    "AS_AKAMAI",
    "AS_LIMELIGHT",
    "AS_LEVEL3",
    "Coordinates",
    "Continent",
    "MappingRegion",
    "great_circle_km",
    "nearest",
    "Location",
    "LocodeDatabase",
]
