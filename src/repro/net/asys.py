"""Autonomous systems and organisation registry.

Sections 4 and 5 of the paper reason at the AS level: which AS originates
traffic (*source AS*), which AS hands it over to the eyeball ISP
(*handover AS*), and to which organisation (Apple, Akamai, Limelight,
...) an observed cache IP belongs.  This module provides:

* :class:`ASN` -- an autonomous system number.
* :class:`AutonomousSystem` -- an AS plus its organisation and announced
  prefixes.
* :class:`ASRegistry` -- prefix-to-AS resolution (longest-prefix match)
  and organisation bookkeeping, playing the role the BGP feeds + IP-to-AS
  data played for the authors.

The well-known ASNs of the organisations in the paper are provided as
constants; their values match the real registries (Apple AS714, Akamai
AS20940, Limelight AS22822, Level3 AS3356) so that analysis output is
recognisable next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .ipv4 import IPv4Address, IPv4Prefix
from .trie import PrefixTrie

__all__ = [
    "ASN",
    "AutonomousSystem",
    "ASRegistry",
    "AS_APPLE",
    "AS_AKAMAI",
    "AS_LIMELIGHT",
    "AS_LEVEL3",
]


@dataclass(frozen=True, order=True)
class ASN:
    """An autonomous system number.

    >>> str(ASN(714))
    'AS714'
    """

    number: int

    def __post_init__(self) -> None:
        if not 0 < self.number <= 4294967295:
            raise ValueError(f"ASN out of range: {self.number}")

    def __str__(self) -> str:
        return f"AS{self.number}"

    def __int__(self) -> int:
        return self.number


AS_APPLE = ASN(714)
AS_AKAMAI = ASN(20940)
AS_LIMELIGHT = ASN(22822)
AS_LEVEL3 = ASN(3356)


@dataclass
class AutonomousSystem:
    """An AS: number, owning organisation, and announced prefixes."""

    asn: ASN
    organisation: str
    prefixes: list[IPv4Prefix] = field(default_factory=list)

    def announce(self, prefix: IPv4Prefix) -> None:
        """Add ``prefix`` to the set announced by this AS."""
        if prefix not in self.prefixes:
            self.prefixes.append(prefix)

    def __str__(self) -> str:
        return f"{self.asn} ({self.organisation})"


class ASRegistry:
    """IP-to-AS and AS-to-organisation resolution.

    The registry is the reproduction's stand-in for the combination of
    public BGP data and WHOIS the authors used to attribute cache IPs to
    CDN operators (e.g. "Akamai other AS" in Figures 4 and 5 denotes
    Akamai-operated caches whose IP is *not* in Akamai's own AS).
    """

    def __init__(self) -> None:
        self._by_asn: dict[ASN, AutonomousSystem] = {}
        self._trie: PrefixTrie[ASN] = PrefixTrie()

    def register(self, autonomous_system: AutonomousSystem) -> AutonomousSystem:
        """Add an AS (idempotent for the same ASN) and index its prefixes."""
        existing = self._by_asn.get(autonomous_system.asn)
        if existing is None:
            self._by_asn[autonomous_system.asn] = autonomous_system
            existing = autonomous_system
        for prefix in autonomous_system.prefixes:
            self._trie.insert(prefix, autonomous_system.asn)
        return existing

    def create(
        self, asn: ASN, organisation: str, prefixes: Iterable[IPv4Prefix] = ()
    ) -> AutonomousSystem:
        """Convenience constructor: create, register and return an AS."""
        autonomous_system = AutonomousSystem(asn, organisation, list(prefixes))
        return self.register(autonomous_system)

    def announce(self, asn: ASN, prefix: IPv4Prefix) -> None:
        """Record that ``asn`` announces ``prefix``."""
        if asn not in self._by_asn:
            raise KeyError(f"unknown {asn}; register it first")
        self._by_asn[asn].announce(prefix)
        self._trie.insert(prefix, asn)

    def asn_for(self, address: IPv4Address) -> Optional[ASN]:
        """Longest-prefix-match origin AS for ``address``."""
        return self._trie.lookup(address)

    def organisation_for(self, address: IPv4Address) -> Optional[str]:
        """Organisation name owning ``address``, if known."""
        asn = self.asn_for(address)
        if asn is None:
            return None
        return self._by_asn[asn].organisation

    def get(self, asn: ASN) -> Optional[AutonomousSystem]:
        """The registered AS for ``asn``, or ``None``."""
        return self._by_asn.get(asn)

    def __contains__(self, asn: object) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._by_asn.values())
