"""Geography: coordinates, distances, continents and mapping regions.

The Apple Meta-CDN maps requests by location at three granularities that
all appear in the paper:

* **country split** (step 1 in Figure 2): India / China vs. the world;
* **mapping regions** (step 3): US / EU / APAC third-party selection;
* **continents** (Figure 4): per-continent unique-IP time series.

This module provides the coordinate type, great-circle distance (used by
CDN request mapping to pick the nearest edge site), and the enumerations
for continents and mapping regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Iterable

__all__ = [
    "Coordinates",
    "Continent",
    "MappingRegion",
    "great_circle_km",
    "nearest",
    "EARTH_RADIUS_KM",
]

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class Coordinates:
    """A WGS84 latitude/longitude pair in decimal degrees."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")

    def distance_km(self, other: "Coordinates") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self, other)

    def __str__(self) -> str:
        return f"({self.latitude:.4f}, {self.longitude:.4f})"


class Continent(str, Enum):
    """The six continents used on the Figure 4 facets."""

    AFRICA = "Africa"
    ASIA = "Asia"
    EUROPE = "Europe"
    NORTH_AMERICA = "North America"
    OCEANIA = "Oceania"
    SOUTH_AMERICA = "South America"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class MappingRegion(str, Enum):
    """Apple's third-party selection regions (Section 3.2).

    The DNS names are ``ios8-{us|eu|apac}-lb.apple.com.akadns.net``.
    Continents without their own load-balancer entry are folded into the
    nearest region, following the CDN lists the paper reports.
    """

    US = "us"
    EU = "eu"
    APAC = "apac"

    @classmethod
    def for_continent(cls, continent: Continent) -> "MappingRegion":
        """The mapping region serving a continent."""
        return _REGION_OF_CONTINENT[continent]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_REGION_OF_CONTINENT = {
    Continent.NORTH_AMERICA: MappingRegion.US,
    Continent.SOUTH_AMERICA: MappingRegion.US,
    Continent.EUROPE: MappingRegion.EU,
    Continent.AFRICA: MappingRegion.EU,
    Continent.ASIA: MappingRegion.APAC,
    Continent.OCEANIA: MappingRegion.APAC,
}


@lru_cache(maxsize=65536)
def great_circle_km(a: Coordinates, b: Coordinates) -> float:
    """Great-circle distance between two coordinates (haversine formula).

    Memoised: probes, metros and cache servers all sit at fixed
    coordinates, so the same pairs are measured millions of times per
    simulation run (GSLB pool ranking, traceroute RTT synthesis).
    """
    lat_a = math.radians(a.latitude)
    lat_b = math.radians(b.latitude)
    delta_lat = lat_b - lat_a
    delta_lon = math.radians(b.longitude - a.longitude)
    h = (
        math.sin(delta_lat / 2.0) ** 2
        + math.cos(lat_a) * math.cos(lat_b) * math.sin(delta_lon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def nearest(origin: Coordinates, candidates: Iterable[Coordinates]) -> Coordinates:
    """The candidate closest to ``origin`` by great-circle distance.

    Raises ``ValueError`` on an empty candidate set.  Ties resolve to the
    first-seen candidate so results are deterministic.
    """
    best: Coordinates | None = None
    best_distance = math.inf
    for candidate in candidates:
        distance = great_circle_km(origin, candidate)
        if distance < best_distance:
            best = candidate
            best_distance = distance
    if best is None:
        raise ValueError("no candidates")
    return best
