"""IPv4 addresses and prefixes.

The reproduction models every network entity (CDN caches, DNS servers,
RIPE Atlas probes, ISP border routers) with concrete IPv4 addresses, so
this module provides a small, fast, dependency-free IPv4 layer:

* :class:`IPv4Address` -- an immutable 32-bit address.
* :class:`IPv4Prefix` -- a CIDR prefix with containment and iteration.

Only IPv4 is modelled: the paper found that none of the Apple Meta-CDN
mapping entry points respond to IPv6 resolution (Section 3.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["IPv4Address", "IPv4Prefix", "AddressError"]

_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

_MAX = 0xFFFFFFFF


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An immutable IPv4 address backed by a 32-bit integer.

    >>> IPv4Address.parse("17.253.0.1").value
    301858817
    >>> str(IPv4Address(301858817))
    '17.253.0.1'
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX:
            raise AddressError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse a dotted-quad string such as ``"17.253.0.1"``."""
        match = _DOTTED_QUAD.match(text.strip())
        if match is None:
            raise AddressError(f"not a dotted quad: {text!r}")
        octets = [int(part) for part in match.groups()]
        if any(octet > 255 for octet in octets):
            raise AddressError(f"octet out of range: {text!r}")
        value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        return cls(value)

    @property
    def octets(self) -> tuple[int, int, int, int]:
        """The four octets, most-significant first."""
        value = self.value
        return ((value >> 24) & 0xFF, (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF)

    def shifted(self, offset: int) -> "IPv4Address":
        """Return the address ``offset`` positions away (may be negative)."""
        return IPv4Address(self.value + offset)

    def __hash__(self) -> int:
        # The generated dataclass hash builds a field tuple per call;
        # addresses are hashed tens of millions of times per run (set
        # membership in stores, caches, routing tables), so hash the
        # backing int directly.  Consistent with the generated __eq__,
        # which compares the single ``value`` field.
        return hash(self.value)

    def __str__(self) -> str:
        text = self.__dict__.get("_text")
        if text is None:
            text = ".".join(str(octet) for octet in self.octets)
            object.__setattr__(self, "_text", text)
        return text

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True, order=True)
class IPv4Prefix:
    """A CIDR prefix, e.g. ``17.253.0.0/16``.

    The network address is canonicalised: host bits are required to be
    zero so that two equal prefixes always compare equal.
    """

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if self.network.value & ~self.mask & _MAX:
            raise AddressError(
                f"host bits set in {self.network}/{self.length}; "
                "use IPv4Prefix.containing() to round down"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse CIDR notation such as ``"17.0.0.0/8"``."""
        if "/" not in text:
            raise AddressError(f"missing prefix length: {text!r}")
        address_part, _, length_part = text.partition("/")
        try:
            length = int(length_part)
        except ValueError as exc:
            raise AddressError(f"bad prefix length: {text!r}") from exc
        return cls(IPv4Address.parse(address_part), length)

    @classmethod
    def containing(cls, address: IPv4Address, length: int) -> "IPv4Prefix":
        """The ``/length`` prefix that contains ``address``."""
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        mask = (_MAX << (32 - length)) & _MAX
        return cls(IPv4Address(address.value & mask), length)

    @property
    def mask(self) -> int:
        """The network mask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (_MAX << (32 - self.length)) & _MAX

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> IPv4Address:
        """The lowest address in the prefix (the network address)."""
        return self.network

    @property
    def last(self) -> IPv4Address:
        """The highest address in the prefix."""
        return IPv4Address(self.network.value | (~self.mask & _MAX))

    def contains(self, address: IPv4Address) -> bool:
        """Whether ``address`` falls inside this prefix."""
        return (address.value & self.mask) == self.network.value

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """Whether ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains(other.network)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Yield the subnets of this prefix at ``new_length``."""
        if new_length < self.length:
            raise AddressError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        if new_length > 32:
            raise AddressError(f"prefix length out of range: {new_length}")
        step = 1 << (32 - new_length)
        for base in range(self.network.value, self.network.value + self.size, step):
            yield IPv4Prefix(IPv4Address(base), new_length)

    def addresses(self) -> Iterator[IPv4Address]:
        """Yield every address in the prefix, network address first."""
        for value in range(self.network.value, self.network.value + self.size):
            yield IPv4Address(value)

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th address inside the prefix (0 = network address)."""
        if not 0 <= index < self.size:
            raise AddressError(f"host index {index} outside /{self.length}")
        return IPv4Address(self.network.value + index)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __contains__(self, address: object) -> bool:
        return isinstance(address, IPv4Address) and self.contains(address)
