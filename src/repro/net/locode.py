"""A UN/LOCODE location database subset.

Apple names its CDN servers after UN/LOCODE codes (Table 1), e.g.
``usnyc3-vip-bx-008.aaplimg.com`` is site 3 in New York City.  The paper
geolocates the 34 discovered edge sites through these codes, with one
noted deviation: Apple writes London as ``uklon`` where UN/LOCODE says
``gblon``.

This module carries the subset of the location database the reproduction
needs: every metro hosting an Apple edge site, plus a worldwide spread of
cities used to place RIPE Atlas probes and third-party CDN caches.
Coordinates are approximate city centres, sufficient for the great-circle
nearest-site mapping the CDN models perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .geo import Continent, Coordinates

__all__ = ["Location", "LocodeDatabase", "APPLE_LONDON_ALIAS"]

# Apple's naming deviation noted in Section 3.3.
APPLE_LONDON_ALIAS = ("uklon", "gblon")


@dataclass(frozen=True)
class Location:
    """One UN/LOCODE entry: a city with coordinates and continent."""

    code: str  # five-letter lowercase code, e.g. "usnyc"
    city: str
    country: str  # ISO 3166-1 alpha-2, lowercase
    coordinates: Coordinates
    continent: Continent

    def __post_init__(self) -> None:
        if len(self.code) != 5 or not self.code.isalpha() or not self.code.islower():
            raise ValueError(f"bad LOCODE: {self.code!r}")
        if self.code[:2] != self.country and self.code not in _ALIASED_CODES:
            raise ValueError(
                f"LOCODE {self.code!r} does not start with country {self.country!r}"
            )

    def __str__(self) -> str:
        return f"{self.code} ({self.city})"


_ALIASED_CODES = {"uklon"}  # Apple's uklon is gblon in the real scheme


def _loc(
    code: str,
    city: str,
    latitude: float,
    longitude: float,
    continent: Continent,
    country: Optional[str] = None,
) -> Location:
    return Location(
        code=code,
        city=city,
        country=country if country is not None else code[:2],
        coordinates=Coordinates(latitude, longitude),
        continent=continent,
    )


_NA = Continent.NORTH_AMERICA
_SA = Continent.SOUTH_AMERICA
_EU = Continent.EUROPE
_AS = Continent.ASIA
_OC = Continent.OCEANIA
_AF = Continent.AFRICA

# The built-in subset.  The first block lists metros used by the Apple CDN
# deployment model (Figure 3); the second adds cities for probe placement
# and third-party CDN caches so every continent is populated.
_BUILTIN: tuple[Location, ...] = (
    # --- United States ---
    _loc("usnyc", "New York", 40.7128, -74.0060, _NA),
    _loc("uslax", "Los Angeles", 34.0522, -118.2437, _NA),
    _loc("ussjc", "San Jose", 37.3382, -121.8863, _NA),
    _loc("uschi", "Chicago", 41.8781, -87.6298, _NA),
    _loc("usdal", "Dallas", 32.7767, -96.7970, _NA),
    _loc("usmia", "Miami", 25.7617, -80.1918, _NA),
    _loc("ussea", "Seattle", 47.6062, -122.3321, _NA),
    _loc("usatl", "Atlanta", 33.7490, -84.3880, _NA),
    _loc("usiad", "Ashburn", 39.0438, -77.4874, _NA),
    _loc("usden", "Denver", 39.7392, -104.9903, _NA),
    _loc("ushou", "Houston", 29.7604, -95.3698, _NA),
    _loc("usphx", "Phoenix", 33.4484, -112.0740, _NA),
    _loc("usbos", "Boston", 42.3601, -71.0589, _NA),
    _loc("usmsp", "Minneapolis", 44.9778, -93.2650, _NA),
    # --- Canada / Mexico ---
    _loc("cayto", "Toronto", 43.6532, -79.3832, _NA),
    _loc("camtr", "Montreal", 45.5017, -73.5673, _NA),
    _loc("mxmex", "Mexico City", 19.4326, -99.1332, _NA),
    # --- Europe ---
    _loc("defra", "Frankfurt", 50.1109, 8.6821, _EU),
    _loc("deber", "Berlin", 52.5200, 13.4050, _EU),
    _loc("uklon", "London", 51.5074, -0.1278, _EU, country="gb"),
    _loc("nlams", "Amsterdam", 52.3676, 4.9041, _EU),
    _loc("frpar", "Paris", 48.8566, 2.3522, _EU),
    _loc("semma", "Stockholm", 59.3293, 18.0686, _EU),
    _loc("itmil", "Milan", 45.4642, 9.1900, _EU),
    _loc("esmad", "Madrid", 40.4168, -3.7038, _EU),
    _loc("plwaw", "Warsaw", 52.2297, 21.0122, _EU),
    _loc("atvie", "Vienna", 48.2082, 16.3738, _EU),
    _loc("chzrh", "Zurich", 47.3769, 8.5417, _EU),
    _loc("iedub", "Dublin", 53.3498, -6.2603, _EU),
    _loc("dkcph", "Copenhagen", 55.6761, 12.5683, _EU),
    _loc("czprg", "Prague", 50.0755, 14.4378, _EU),
    _loc("ptlis", "Lisbon", 38.7223, -9.1393, _EU),
    _loc("fihel", "Helsinki", 60.1699, 24.9384, _EU),
    _loc("rumow", "Moscow", 55.7558, 37.6173, _EU),
    # --- Asia ---
    _loc("jptyo", "Tokyo", 35.6762, 139.6503, _AS),
    _loc("jposa", "Osaka", 34.6937, 135.5023, _AS),
    _loc("krsel", "Seoul", 37.5665, 126.9780, _AS),
    _loc("hkhkg", "Hong Kong", 22.3193, 114.1694, _AS),
    _loc("sgsin", "Singapore", 1.3521, 103.8198, _AS),
    _loc("twtpe", "Taipei", 25.0330, 121.5654, _AS),
    _loc("cnsha", "Shanghai", 31.2304, 121.4737, _AS),
    _loc("cnbjs", "Beijing", 39.9042, 116.4074, _AS),
    _loc("inbom", "Mumbai", 19.0760, 72.8777, _AS),
    _loc("indel", "Delhi", 28.7041, 77.1025, _AS),
    _loc("inmaa", "Chennai", 13.0827, 80.2707, _AS),
    _loc("thbkk", "Bangkok", 13.7563, 100.5018, _AS),
    _loc("mykul", "Kuala Lumpur", 3.1390, 101.6869, _AS),
    _loc("idjkt", "Jakarta", -6.2088, 106.8456, _AS),
    _loc("aedxb", "Dubai", 25.2048, 55.2708, _AS),
    _loc("ilhfa", "Haifa", 32.7940, 34.9896, _AS),
    _loc("trist", "Istanbul", 41.0082, 28.9784, _AS),
    # --- Oceania ---
    _loc("ausyd", "Sydney", -33.8688, 151.2093, _OC),
    _loc("aumel", "Melbourne", -37.8136, 144.9631, _OC),
    _loc("aubne", "Brisbane", -27.4698, 153.0251, _OC),
    _loc("nzakl", "Auckland", -36.8485, 174.7633, _OC),
    # --- South America ---
    _loc("brsao", "Sao Paulo", -23.5505, -46.6333, _SA),
    _loc("brrio", "Rio de Janeiro", -22.9068, -43.1729, _SA),
    _loc("arbue", "Buenos Aires", -34.6037, -58.3816, _SA),
    _loc("clscl", "Santiago", -33.4489, -70.6693, _SA),
    _loc("cobog", "Bogota", 4.7110, -74.0721, _SA),
    _loc("pelim", "Lima", -12.0464, -77.0428, _SA),
    # --- Africa ---
    _loc("zajnb", "Johannesburg", -26.2041, 28.0473, _AF),
    _loc("zacpt", "Cape Town", -33.9249, 18.4241, _AF),
    _loc("egcai", "Cairo", 30.0444, 31.2357, _AF),
    _loc("kenbo", "Nairobi", -1.2921, 36.8219, _AF),
    _loc("nglos", "Lagos", 6.5244, 3.3792, _AF),
    _loc("macas", "Casablanca", 33.5731, -7.5898, _AF),
    # --- additional probe metros (RIPE Atlas hosts are everywhere) ---
    _loc("usslc", "Salt Lake City", 40.7608, -111.8910, _NA),
    _loc("uspdx", "Portland", 45.5152, -122.6784, _NA),
    _loc("usclt", "Charlotte", 35.2271, -80.8431, _NA),
    _loc("cavan", "Vancouver", 49.2827, -123.1207, _NA),
    _loc("cacal", "Calgary", 51.0447, -114.0719, _NA),
    _loc("mxgdl", "Guadalajara", 20.6597, -103.3496, _NA),
    _loc("gbman", "Manchester", 53.4808, -2.2426, _EU),
    _loc("gbedi", "Edinburgh", 55.9533, -3.1883, _EU),
    _loc("deham", "Hamburg", 53.5511, 9.9937, _EU),
    _loc("demuc", "Munich", 48.1351, 11.5820, _EU),
    _loc("dedus", "Duesseldorf", 51.2277, 6.7735, _EU),
    _loc("frmrs", "Marseille", 43.2965, 5.3698, _EU),
    _loc("frlio", "Lyon", 45.7640, 4.8357, _EU),
    _loc("itrom", "Rome", 41.9028, 12.4964, _EU),
    _loc("esbcn", "Barcelona", 41.3874, 2.1686, _EU),
    _loc("begro", "Brussels", 50.8503, 4.3517, _EU),
    _loc("noosl", "Oslo", 59.9139, 10.7522, _EU),
    _loc("huhud", "Budapest", 47.4979, 19.0402, _EU),
    _loc("robuh", "Bucharest", 44.4268, 26.1025, _EU),
    _loc("grath", "Athens", 37.9838, 23.7275, _EU),
    _loc("uaiev", "Kyiv", 50.4501, 30.5234, _EU),
    _loc("jpngo", "Nagoya", 35.1815, 136.9066, _AS),
    _loc("krpus", "Busan", 35.1796, 129.0756, _AS),
    _loc("cncan", "Guangzhou", 23.1291, 113.2644, _AS),
    _loc("phmnl", "Manila", 14.5995, 120.9842, _AS),
    _loc("vnsgn", "Ho Chi Minh City", 10.8231, 106.6297, _AS),
    _loc("sariy", "Riyadh", 24.7136, 46.6753, _AS),
    _loc("auper", "Perth", -31.9523, 115.8613, _OC),
    _loc("nzwlg", "Wellington", -41.2866, 174.7756, _OC),
    _loc("brfor", "Fortaleza", -3.7327, -38.5270, _SA),
    _loc("uymvd", "Montevideo", -34.9011, -56.1645, _SA),
    _loc("ecgye", "Guayaquil", -2.1710, -79.9224, _SA),
    _loc("tntun", "Tunis", 36.8065, 10.1815, _AF),
    _loc("ghacc", "Accra", 5.6037, -0.1870, _AF),
    _loc("mumru", "Port Louis", -20.1609, 57.5012, _AF),
)


class LocodeDatabase:
    """Lookup by code plus filtered iteration.

    >>> db = LocodeDatabase.builtin()
    >>> db.get("usnyc").city
    'New York'
    >>> db.canonical_code("uklon")
    'gblon'
    """

    def __init__(self, locations: Optional[tuple[Location, ...]] = None) -> None:
        entries = locations if locations is not None else _BUILTIN
        self._by_code = {location.code: location for location in entries}
        if len(self._by_code) != len(entries):
            raise ValueError("duplicate LOCODE entries")

    @classmethod
    def builtin(cls) -> "LocodeDatabase":
        """The built-in worldwide subset."""
        return cls()

    def get(self, code: str) -> Location:
        """The location for ``code``; raises ``KeyError`` if unknown."""
        return self._by_code[code]

    def find(self, code: str) -> Optional[Location]:
        """The location for ``code``, or ``None``."""
        return self._by_code.get(code)

    @staticmethod
    def canonical_code(code: str) -> str:
        """Resolve Apple's naming deviations to real UN/LOCODE codes.

        The only known deviation is London: Apple uses ``uklon`` where
        the UN/LOCODE standard assigns ``gblon`` (Section 3.3).
        """
        apple_code, real_code = APPLE_LONDON_ALIAS
        return real_code if code == apple_code else code

    def on_continent(self, continent: Continent) -> Iterator[Location]:
        """Yield all locations on ``continent``."""
        for location in self._by_code.values():
            if location.continent is continent:
                yield location

    def in_country(self, country: str) -> Iterator[Location]:
        """Yield all locations in ISO country ``country`` (lowercase)."""
        for location in self._by_code.values():
            if location.country == country:
                yield location

    def __iter__(self) -> Iterator[Location]:
        return iter(self._by_code.values())

    def __len__(self) -> int:
        return len(self._by_code)

    def __contains__(self, code: object) -> bool:
        return code in self._by_code
