"""Binary radix trie for longest-prefix matching.

The ISP substrate keeps ~tens of thousands of BGP routes (the paper's ISP
tracked ~60 million; we run scaled down) and classifies every Netflow
record by *source AS*, which requires longest-prefix match on the source
IP.  A bitwise radix trie gives O(32) lookups independent of table size.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from .ipv4 import IPv4Address, IPv4Prefix

__all__ = ["PrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("zero", "one", "value", "has_value")

    def __init__(self) -> None:
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps IPv4 prefixes to values with longest-prefix-match lookup.

    >>> trie = PrefixTrie()
    >>> trie.insert(IPv4Prefix.parse("17.0.0.0/8"), "apple-coarse")
    >>> trie.insert(IPv4Prefix.parse("17.253.0.0/16"), "apple-cdn")
    >>> trie.lookup(IPv4Address.parse("17.253.4.2"))
    'apple-cdn'
    >>> trie.lookup(IPv4Address.parse("17.1.2.3"))
    'apple-coarse'
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert ``prefix`` -> ``value``, replacing any previous value."""
        node = self._root
        bits = prefix.network.value
        for depth in range(prefix.length):
            bit = (bits >> (31 - depth)) & 1
            if bit:
                if node.one is None:
                    node.one = _Node()
                node = node.one
            else:
                if node.zero is None:
                    node.zero = _Node()
                node = node.zero
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: IPv4Address) -> Optional[V]:
        """Longest-prefix-match value for ``address``, or ``None``."""
        node = self._root
        best: Optional[V] = node.value if node.has_value else None
        bits = address.value
        for depth in range(32):
            bit = (bits >> (31 - depth)) & 1
            node = node.one if bit else node.zero  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def lookup_prefix(
        self, address: IPv4Address, max_length: int = 32
    ) -> Optional[tuple[IPv4Prefix, V]]:
        """Like :meth:`lookup` but also return the matching prefix.

        ``max_length`` bounds the match: only prefixes of at most that
        length are considered, which lets callers walk the chain of
        covering prefixes from longest to shortest.
        """
        node = self._root
        best: Optional[tuple[IPv4Prefix, V]] = None
        if node.has_value and max_length >= 0:
            best = (IPv4Prefix(IPv4Address(0), 0), node.value)  # type: ignore[arg-type]
        bits = address.value
        for depth in range(min(32, max_length)):
            bit = (bits >> (31 - depth)) & 1
            node = node.one if bit else node.zero  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                length = depth + 1
                best = (
                    IPv4Prefix.containing(address, length),
                    node.value,  # type: ignore[arg-type]
                )
        return best

    def get(self, prefix: IPv4Prefix) -> Optional[V]:
        """Exact-match value stored at ``prefix``, or ``None``."""
        node = self._root
        bits = prefix.network.value
        for depth in range(prefix.length):
            bit = (bits >> (31 - depth)) & 1
            node = node.one if bit else node.zero  # type: ignore[assignment]
            if node is None:
                return None
        return node.value if node.has_value else None

    def items(self) -> Iterator[tuple[IPv4Prefix, V]]:
        """Yield ``(prefix, value)`` pairs in depth-first order."""
        yield from _walk(self._root, 0, 0)

    def items_under(self, prefix: IPv4Prefix) -> Iterator[tuple[IPv4Prefix, V]]:
        """Yield every stored ``(prefix, value)`` covered by ``prefix``.

        Descends directly to the subtree rooted at ``prefix`` and walks
        only that subtree, so enumerating the entries under a covering
        prefix costs O(length + subtree) rather than a full-table scan.
        The entry stored *at* ``prefix`` itself (if any) is included.
        """
        node: Optional[_Node[V]] = self._root
        bits = prefix.network.value
        for depth in range(prefix.length):
            bit = (bits >> (31 - depth)) & 1
            node = node.one if bit else node.zero  # type: ignore[union-attr]
            if node is None:
                return
        yield from _walk(node, bits >> (32 - prefix.length) if prefix.length else 0, prefix.length)


def _walk(node: _Node[V], bits: int, depth: int) -> Iterator[tuple[IPv4Prefix, V]]:
    if node.has_value:
        network = IPv4Address(bits << (32 - depth) if depth else 0)
        yield IPv4Prefix(network, depth), node.value  # type: ignore[misc]
    if node.zero is not None:
        yield from _walk(node.zero, bits << 1, depth + 1)
    if node.one is not None:
        yield from _walk(node.one, (bits << 1) | 1, depth + 1)
