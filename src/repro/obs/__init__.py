"""Telemetry substrate: metrics registry, event tracing, exporters.

The reproduction's subject is *observation*, and this subpackage makes
the reproduction itself observable: every hot path (DNS resolution,
engine stepping, the cache hierarchy, ISP traffic, Atlas campaigns)
routes its instrumentation through a registry/tracer handle obtained
here.

* :mod:`repro.obs.registry` — labelled counters, gauges and
  fixed-bucket histograms; a process-wide default handle; a null
  registry whose instruments are no-ops (the default, so an
  un-configured run pays nothing);
* :mod:`repro.obs.tracer` — timestamped point events and nested spans
  in a bounded ring buffer, optionally streamed as JSONL; span
  parentage is :mod:`contextvars`-based, so concurrent asyncio tasks
  nest correctly;
* :mod:`repro.obs.trace_context` — the wire-level trace context
  (EDNS0 option / ``traceparent`` header) that joins client, DNS and
  HTTP spans into one causal chain, with deterministic per-trace-id
  sampling;
* :mod:`repro.obs.flight` — the flight recorder that persists the span
  ring buffer to JSONL when a chaos drill or shard divergence trips;
* :mod:`repro.obs.export` — Prometheus text exposition (render and
  parse), JSONL trace dumps, human-readable summary tables.

Typical use (the CLI's ``--metrics-out`` / ``--trace-out`` path)::

    from repro.obs import MetricsRegistry, EventTracer, use_registry, use_tracer

    metrics, tracer = MetricsRegistry(), EventTracer()
    with use_registry(metrics), use_tracer(tracer):
        scenario = Sep2017Scenario()           # components capture handles
        SimulationEngine(scenario).run(start, end)
    print(summary_table(metrics))

Install the handles *before* constructing the scenario: instrumented
components capture their instruments at construction time.
"""

from .export import (
    ExpositionError,
    ParsedFamily,
    parse_exposition,
    parsed_histogram,
    render_exposition,
    render_trace_jsonl,
    summary_table,
    write_metrics,
    write_trace,
)
from .flight import (
    FlightRecorder,
    get_flight_recorder,
    set_flight_recorder,
    use_flight_recorder,
)
from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramChild,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    merge_registry_snapshots,
    set_registry,
    snapshot_delta,
    use_registry,
)
from .trace_context import (
    TRACE_OPTION_CODE,
    TraceChain,
    TraceContext,
    assemble_chains,
    current_context,
    new_trace_id,
    sample_trace,
    set_context,
    use_context,
)
from .tracer import (
    NULL_TRACER,
    EventTracer,
    NullTracer,
    TraceRecord,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramChild",
    "MetricError",
    "DEFAULT_BUCKETS",
    "get_registry",
    "merge_registry_snapshots",
    "set_registry",
    "snapshot_delta",
    "use_registry",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceRecord",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "TRACE_OPTION_CODE",
    "TraceContext",
    "TraceChain",
    "assemble_chains",
    "current_context",
    "set_context",
    "use_context",
    "new_trace_id",
    "sample_trace",
    "FlightRecorder",
    "get_flight_recorder",
    "set_flight_recorder",
    "use_flight_recorder",
    "render_exposition",
    "parse_exposition",
    "parsed_histogram",
    "ParsedFamily",
    "ExpositionError",
    "summary_table",
    "render_trace_jsonl",
    "write_metrics",
    "write_trace",
]
