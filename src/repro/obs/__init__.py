"""Telemetry substrate: metrics registry, event tracing, exporters.

The reproduction's subject is *observation*, and this subpackage makes
the reproduction itself observable: every hot path (DNS resolution,
engine stepping, the cache hierarchy, ISP traffic, Atlas campaigns)
routes its instrumentation through a registry/tracer handle obtained
here.

* :mod:`repro.obs.registry` — labelled counters, gauges and
  fixed-bucket histograms; a process-wide default handle; a null
  registry whose instruments are no-ops (the default, so an
  un-configured run pays nothing);
* :mod:`repro.obs.tracer` — timestamped point events and nested spans
  in a bounded ring buffer, optionally streamed as JSONL;
* :mod:`repro.obs.export` — Prometheus text exposition (render and
  parse), JSONL trace dumps, human-readable summary tables.

Typical use (the CLI's ``--metrics-out`` / ``--trace-out`` path)::

    from repro.obs import MetricsRegistry, EventTracer, use_registry, use_tracer

    metrics, tracer = MetricsRegistry(), EventTracer()
    with use_registry(metrics), use_tracer(tracer):
        scenario = Sep2017Scenario()           # components capture handles
        SimulationEngine(scenario).run(start, end)
    print(summary_table(metrics))

Install the handles *before* constructing the scenario: instrumented
components capture their instruments at construction time.
"""

from .export import (
    ExpositionError,
    ParsedFamily,
    parse_exposition,
    render_exposition,
    render_trace_jsonl,
    summary_table,
    write_metrics,
    write_trace,
)
from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    snapshot_delta,
    use_registry,
)
from .tracer import (
    NULL_TRACER,
    EventTracer,
    NullTracer,
    TraceRecord,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "snapshot_delta",
    "use_registry",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceRecord",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "render_exposition",
    "parse_exposition",
    "ParsedFamily",
    "ExpositionError",
    "summary_table",
    "render_trace_jsonl",
    "write_metrics",
    "write_trace",
]
