"""Exporters: Prometheus text exposition, JSONL traces, summary tables.

Three output formats cover the consumption paths:

* :func:`render_exposition` — the Prometheus text format (`# HELP` /
  `# TYPE` comments, labelled samples, cumulative histogram buckets),
  so any scrape-format tool can ingest a run's metrics;
* :func:`parse_exposition` — the matching parser, used by tests to
  round-trip the format and by analyses that read a dumped file back;
* :func:`summary_table` — a human-readable table for terminals;
* :func:`write_trace` / :func:`render_trace_jsonl` — the tracer's ring
  buffer as JSONL, one record per line.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Union

from .registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramChild,
    MetricsRegistry,
    NullRegistry,
)
from .tracer import EventTracer, NullTracer

__all__ = [
    "render_exposition",
    "parse_exposition",
    "parsed_histogram",
    "ParsedFamily",
    "ExpositionError",
    "summary_table",
    "render_trace_jsonl",
    "write_metrics",
    "write_trace",
]


class ExpositionError(ValueError):
    """Raised when exposition text cannot be parsed."""


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def render_exposition(registry: Union[MetricsRegistry, NullRegistry]) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.children():
            if isinstance(child, HistogramChild):
                bucket_names = family.labelnames + ("le",)
                for upper, cumulative in child.cumulative_buckets():
                    le = "+Inf" if math.isinf(upper) else _format_value(upper)
                    labels = _format_labels(
                        bucket_names, labelvalues + (le,)
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} {cumulative}"
                    )
                base = _format_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{base} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{base} {child.count}")
            else:
                labels = _format_labels(family.labelnames, labelvalues)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


@dataclass
class ParsedFamily:
    """One family read back from exposition text."""

    name: str
    kind: str
    help: str = ""
    # (sample name, ((label, value), ...) sorted) -> value
    samples: dict = field(default_factory=dict)

    def value(self, sample: str = "", **labels) -> float:
        """The sample value for ``labels`` (sample defaults to the family name)."""
        key = (sample or self.name, tuple(sorted(labels.items())))
        return self.samples[key]


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError as exc:
        raise ExpositionError(f"bad sample value {text!r}") from exc


def parse_exposition(text: str) -> dict[str, ParsedFamily]:
    """Parse Prometheus text exposition into :class:`ParsedFamily` objects.

    Samples are attributed to the most recent ``# TYPE`` declaration
    whose name they extend (so ``foo_bucket`` lands in family ``foo``),
    which is exactly how :func:`render_exposition` lays text out.
    """
    families: dict[str, ParsedFamily] = {}
    current: ParsedFamily | None = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            family = families.setdefault(name, ParsedFamily(name, "untyped"))
            family.help = _unescape(help_text)
            current = family
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            family = families.setdefault(name, ParsedFamily(name, "untyped"))
            family.kind = kind.strip() or "untyped"
            current = family
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"line {line_number}: cannot parse {raw!r}")
        sample_name = match.group("name")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for label_match in _LABEL_RE.finditer(match.group("labels")):
                labels[label_match.group("key")] = _unescape(
                    label_match.group("value")
                )
        value = _parse_value(match.group("value"))
        family = None
        if current is not None and (
            sample_name == current.name
            or (
                sample_name.startswith(current.name + "_")
                and sample_name[len(current.name) + 1:]
                in ("bucket", "sum", "count")
            )
        ):
            family = current
        if family is None:
            family = families.setdefault(
                sample_name, ParsedFamily(sample_name, "untyped")
            )
        family.samples[(sample_name, tuple(sorted(labels.items())))] = value
    return families


def parsed_histogram(family: ParsedFamily, **labels) -> HistogramChild:
    """Rebuild a :class:`HistogramChild` from a scraped histogram family.

    Collects the ``_bucket`` samples matching ``labels`` (ignoring the
    ``le`` label itself) plus the ``_sum``, and hands them to
    :meth:`HistogramChild.from_cumulative` — giving remote consumers
    like ``repro top`` the same ``quantile`` / ``percentile_summary``
    machinery local histograms have.  Raises :class:`ExpositionError`
    when no buckets match.
    """
    wanted = tuple(sorted((k, str(v)) for k, v in labels.items()))
    buckets: list[tuple[float, float]] = []
    total = 0.0
    for (sample_name, labelitems), value in family.samples.items():
        rest = tuple(
            (k, v) for k, v in labelitems if k != "le"
        )
        if rest != wanted:
            continue
        if sample_name == family.name + "_bucket":
            le = dict(labelitems).get("le", "")
            buckets.append((_parse_value(le), value))
        elif sample_name == family.name + "_sum":
            total = value
    if not buckets:
        raise ExpositionError(
            f"no histogram buckets for {family.name}{dict(labels)!r}"
        )
    return HistogramChild.from_cumulative(buckets, sum=total)


def summary_table(registry: Union[MetricsRegistry, NullRegistry]) -> str:
    """A terminal-friendly table of every series in the registry."""
    rows: list[tuple[str, str, str]] = []
    for family in registry.collect():
        for labelvalues, child in family.children():
            label_text = (
                ", ".join(
                    f"{name}={value}"
                    for name, value in zip(family.labelnames, labelvalues)
                )
                or "-"
            )
            if isinstance(child, HistogramChild):
                value_text = (
                    f"count={child.count} sum={_format_value(round(child.sum, 6))} "
                    f"mean={child.mean:.6g}"
                )
            else:
                value_text = _format_value(round(child.value, 6))
            rows.append((family.name, label_text, value_text))
    if not rows:
        return "(no metrics recorded)"
    name_width = max(len(r[0]) for r in rows)
    label_width = max(len(r[1]) for r in rows)
    header = f"{'metric':<{name_width}}  {'labels':<{label_width}}  value"
    lines = [header, "-" * len(header)]
    for name, labels, value in rows:
        lines.append(f"{name:<{name_width}}  {labels:<{label_width}}  {value}")
    return "\n".join(lines)


def render_trace_jsonl(tracer: Union[EventTracer, NullTracer]) -> str:
    """The tracer's buffered records as JSONL text."""
    lines = list(tracer.jsonl_lines())
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(
    registry: Union[MetricsRegistry, NullRegistry], path: str
) -> None:
    """Dump the registry to ``path`` in exposition format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_exposition(registry))


def write_trace(tracer: Union[EventTracer, NullTracer], path: str) -> None:
    """Dump the tracer's ring buffer to ``path`` as JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_trace_jsonl(tracer))
