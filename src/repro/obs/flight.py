"""Flight recorder: persist the span ring buffer when something trips.

The tracer's ring buffer holds the last N records of a run — exactly
the evidence needed when a chaos drill fails its checks or a sharded
worker diverges from its replica.  The flight recorder's job is to get
that buffer onto disk *at the moment of the trip*, before the run
finishes (or crashes) and the buffer is gone.

Each trip writes one JSONL file into the recorder's directory: a
header line naming the trip reason plus the ring-buffer stats, then
every buffered record.  ``limit`` caps the number of dumps per
recorder so a flapping drill cannot fill the disk.

Like the registry and tracer, the recorder has a process-wide ambient
handle (:func:`get_flight_recorder` / :func:`set_flight_recorder` /
:func:`use_flight_recorder`) defaulting to ``None`` — trip sites call
:func:`get_flight_recorder` and do nothing when no recorder is armed.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Optional, Union

from .tracer import EventTracer, NullTracer

__all__ = [
    "FlightRecorder",
    "get_flight_recorder",
    "set_flight_recorder",
    "use_flight_recorder",
]


class FlightRecorder:
    """Dumps a tracer's ring buffer to JSONL files on demand."""

    def __init__(self, directory: str, limit: int = 32) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.directory = directory
        self.limit = limit
        self.trips = 0

    def trip(
        self,
        reason: str,
        tracer: Union[EventTracer, NullTracer],
    ) -> Optional[str]:
        """Persist ``tracer``'s buffer; returns the file path written.

        Returns ``None`` when the per-recorder ``limit`` is exhausted.
        A sanitised ``reason`` lands in both the filename and the
        header line, so a directory listing already tells the story.
        """
        if self.trips >= self.limit:
            return None
        self.trips += 1
        slug = "".join(
            c if c.isalnum() or c in "-_" else "-" for c in reason
        ).strip("-") or "trip"
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(
            self.directory, f"flight-{self.trips:03d}-{slug}.jsonl"
        )
        header = {"flight": reason, **tracer.stats()}
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for line in tracer.jsonl_lines():
                handle.write(line + "\n")
        return path


_default_recorder: Optional[FlightRecorder] = None


def get_flight_recorder() -> Optional[FlightRecorder]:
    """The process-wide flight recorder, if one is armed."""
    return _default_recorder


def set_flight_recorder(recorder: Optional[FlightRecorder]) -> None:
    """Arm (or with ``None``, disarm) the process-wide recorder."""
    global _default_recorder
    _default_recorder = recorder


@contextmanager
def use_flight_recorder(recorder: Optional[FlightRecorder]):
    """Temporarily arm ``recorder`` (restores the previous one on exit)."""
    previous = get_flight_recorder()
    set_flight_recorder(recorder)
    try:
        yield recorder
    finally:
        set_flight_recorder(previous)
