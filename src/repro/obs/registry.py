"""Labelled metrics: counters, gauges and fixed-bucket histograms.

The registry is the single handle every instrumented module routes
through.  Two implementations share the interface:

* :class:`MetricsRegistry` — the real thing: named metric families with
  label sets, children cached per label tuple, rendered to Prometheus
  text exposition by :mod:`repro.obs.export`;
* :class:`NullRegistry` — the zero-overhead opt-out: every instrument
  it hands out is the same no-op singleton, so instrumented hot paths
  cost a bound-method call at most (and nothing when the caller gates
  on ``registry.enabled``).

A process-wide default (:func:`get_registry` / :func:`set_registry` /
:func:`use_registry`) lets deeply nested components — per-probe
resolvers, edge sites built four constructors down — pick up the active
registry without threading a handle through every signature.  The
default is the null registry; install a real one *before* building a
scenario so construction-time instrument capture sees it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "CounterChild",
    "GaugeChild",
    "HistogramChild",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "snapshot_delta",
    "get_registry",
    "set_registry",
    "use_registry",
]

# Prometheus' classic latency buckets; callers pass their own for
# quantities that are not seconds (chain lengths, Gbps, ...).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Raised on invalid metric names, labels or amounts."""


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise MetricError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise MetricError(f"metric name cannot start with a digit: {name!r}")
    return name


class CounterChild:
    """One monotonically increasing series (a single label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise MetricError(f"counters cannot decrease (inc by {amount})")
        self.value += amount


class GaugeChild:
    """One settable series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount


class HistogramChild:
    """One fixed-bucket distribution series.

    Bucket counts are stored per-bucket (non-cumulative); the exporter
    accumulates them into the Prometheus ``le`` convention.
    """

    __slots__ = ("uppers", "bucket_counts", "sum", "count")

    def __init__(self, uppers: tuple[float, ...]) -> None:
        self.uppers = uppers
        self.bucket_counts = [0] * len(uppers)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, upper in enumerate(self.uppers):
            if value <= upper:
                self.bucket_counts[index] += 1
                break
        # values above the last bound land only in the implicit +Inf
        # bucket, whose cumulative count is ``count`` itself.

    @property
    def mean(self) -> float:
        """Average of all observations (0.0 before any)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating the buckets.

        Classic Prometheus ``histogram_quantile``: find the bucket the
        target rank falls into and interpolate linearly between its
        bounds (the first bucket's lower bound is 0).  Observations
        above the last bound clamp to that bound, so a p99 can be
        asserted in tests even when outliers escaped the bucket range.
        Returns 0.0 before any observation.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        lower = 0.0
        for upper, n in zip(self.uppers, self.bucket_counts):
            if running + n >= rank and n > 0:
                fraction = (rank - running) / n
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            running += n
            lower = upper
        # Rank lies in the implicit +Inf bucket: clamp to the last bound.
        return self.uppers[-1]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, n in zip(self.uppers, self.bucket_counts):
            running += n
            out.append((upper, running))
        out.append((float("inf"), self.count))
        return out

    def percentile_summary(self) -> dict[str, float]:
        """The standard latency panel: p50/p95/p99/p999.

        The quantiles every live view and bench gate reads; an empty
        histogram yields all zeros (see :meth:`quantile`).
        """
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    @classmethod
    def merge(cls, children: Sequence["HistogramChild"]) -> "HistogramChild":
        """A new child summing ``children`` bucket for bucket.

        Every input must share the same bucket bounds (merging across
        schemas would silently misplace observations).  Merging is
        exact — bucket counts, sums and observation counts are plain
        additions — so quantiles of the merged child equal quantiles of
        a single child that saw every observation, regardless of how
        the observations were partitioned across processes.
        """
        inputs = list(children)
        if not inputs:
            raise MetricError("merge needs at least one histogram child")
        uppers = inputs[0].uppers
        for child in inputs[1:]:
            if tuple(child.uppers) != tuple(uppers):
                raise MetricError(
                    "cannot merge histograms with different bucket bounds"
                )
        merged = cls(tuple(uppers))
        for child in inputs:
            for index, n in enumerate(child.bucket_counts):
                merged.bucket_counts[index] += n
            merged.sum += child.sum
            merged.count += child.count
        return merged

    @classmethod
    def from_cumulative(
        cls,
        buckets: Sequence[tuple[float, float]],
        sum: float = 0.0,
    ) -> "HistogramChild":
        """Rebuild a child from Prometheus-style cumulative ``le`` pairs.

        ``buckets`` is (upper bound, cumulative count) with the +Inf
        bucket last — exactly what a scraped exposition provides — so
        ``repro top`` can run :meth:`quantile` on remote histograms.
        """
        finite = [(u, c) for u, c in buckets if u != float("inf")]
        finite.sort(key=lambda pair: pair[0])
        child = cls(tuple(u for u, _ in finite) or (float("inf"),))
        running = 0
        for index, (_, cumulative) in enumerate(finite):
            child.bucket_counts[index] = int(cumulative) - running
            running = int(cumulative)
        total = max((int(c) for _, c in buckets), default=0)
        child.count = total
        child.sum = sum
        return child


_Child = Union[CounterChild, GaugeChild, HistogramChild]


class MetricFamily:
    """A named metric with a label schema and one child per label tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not label or not label.replace("_", "a").isalnum():
                raise MetricError(f"invalid label name {label!r}")
        self._children: dict[tuple[str, ...], _Child] = {}

    def _new_child(self) -> _Child:
        raise NotImplementedError

    def labels(self, *values) -> _Child:
        """The child series for one combination of label values."""
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name} takes {len(self.labelnames)} label values, "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def children(self) -> Iterator[tuple[tuple[str, ...], _Child]]:
        """(label values, child) pairs in insertion order."""
        return iter(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


class Counter(MetricFamily):
    """A family of monotonically increasing series."""

    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series (labelnames must be empty)."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        """Value of the unlabelled series (0.0 if never touched)."""
        return self.labels().value


class Gauge(MetricFamily):
    """A family of settable series."""

    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild()

    def set(self, value: float) -> None:
        """Set the unlabelled series."""
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series."""
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabelled series."""
        self.labels().dec(amount)

    @property
    def value(self) -> float:
        """Value of the unlabelled series."""
        return self.labels().value


class Histogram(MetricFamily):
    """A family of fixed-bucket distributions."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise MetricError("histogram needs at least one bucket")
        if len(set(uppers)) != len(uppers):
            raise MetricError("histogram buckets must be distinct")
        super().__init__(name, help, labelnames)
        self.buckets = uppers

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Record on the unlabelled series."""
        self.labels().observe(value)

    def quantile(self, q: float) -> float:
        """Interpolated quantile of the unlabelled series."""
        return self.labels().quantile(q)


class MetricsRegistry:
    """Holds metric families; registration is idempotent by name.

    Re-requesting an existing name returns the same family provided the
    kind and label schema agree; a mismatch raises :class:`MetricError`
    (two modules silently sharing a name with different meanings is a
    bug worth failing loudly on).
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(self, family: MetricFamily) -> MetricFamily:
        existing = self._families.get(family.name)
        if existing is None:
            self._families[family.name] = family
            return family
        if existing.kind != family.kind:
            raise MetricError(
                f"{family.name} already registered as a {existing.kind}"
            )
        if existing.labelnames != family.labelnames:
            raise MetricError(
                f"{family.name} already registered with labels "
                f"{existing.labelnames}, not {family.labelnames}"
            )
        if (
            isinstance(existing, Histogram)
            and isinstance(family, Histogram)
            and existing.buckets != family.buckets
        ):
            raise MetricError(
                f"{family.name} already registered with different buckets"
            )
        return existing

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter family."""
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge family."""
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family."""
        return self._register(Histogram(name, help, labelnames, buckets))

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    def snapshot(self, names: Optional[Sequence[str]] = None) -> dict:
        """A plain-data dump of (a subset of) the registry's state.

        The result is picklable and self-describing: per family the
        kind, label schema, help text, buckets (histograms) and every
        child's payload.  ``names`` restricts the dump to those
        families (missing names are skipped).  Used by the sharded
        engine to ship worker-side metrics back to the coordinator.
        """
        selected = (
            sorted(self._families) if names is None
            else [n for n in names if n in self._families]
        )
        dump: dict = {}
        for name in selected:
            family = self._families[name]
            children: dict = {}
            for labelvalues, child in family.children():
                if isinstance(child, HistogramChild):
                    children[labelvalues] = (
                        list(child.bucket_counts), child.sum, child.count
                    )
                else:
                    children[labelvalues] = child.value
            entry: dict = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": family.labelnames,
                "children": children,
            }
            if isinstance(family, Histogram):
                entry["buckets"] = family.buckets
            dump[name] = entry
        return dump

    def absorb_snapshot(self, snapshot: dict) -> None:
        """Merge a :meth:`snapshot` (usually a delta) into this registry.

        Families are created on demand with the snapshot's schema;
        counter/gauge children add their values, histogram children add
        bucket counts, sums and observation counts.  Schema mismatches
        with already-registered families raise :class:`MetricError`,
        exactly as double registration would.
        """
        for name, entry in snapshot.items():
            kind = entry["kind"]
            labelnames = entry["labelnames"]
            if kind == "counter":
                family = self.counter(name, entry["help"], labelnames)
            elif kind == "gauge":
                family = self.gauge(name, entry["help"], labelnames)
            elif kind == "histogram":
                family = self.histogram(
                    name, entry["help"], labelnames, entry["buckets"]
                )
            else:  # pragma: no cover - snapshots only contain known kinds
                raise MetricError(f"unknown metric kind {kind!r} for {name}")
            for labelvalues, payload in entry["children"].items():
                child = family.labels(*labelvalues)
                if isinstance(child, HistogramChild):
                    buckets, total, count = payload
                    for index, n in enumerate(buckets):
                        child.bucket_counts[index] += n
                    child.sum += total
                    child.count += count
                else:
                    child.value += payload

    def collect(self) -> Iterator[MetricFamily]:
        """All families, name-ordered (the exposition order)."""
        for name in sorted(self._families):
            yield self._families[name]

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families


class _NullInstrument:
    """The do-nothing instrument: absorbs every metric call.

    ``labels`` returns itself, so pre-bound children and call-time
    label lookups both collapse to no-op method calls.
    """

    __slots__ = ()

    value = 0.0
    sum = 0.0
    count = 0
    mean = 0.0

    def labels(self, *values) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentile_summary(self) -> dict:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "p999": 0.0}


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The opt-out registry: every instrument is the no-op singleton."""

    enabled = False

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        return NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def snapshot(self, names: Optional[Sequence[str]] = None) -> dict:
        return {}

    def absorb_snapshot(self, snapshot: dict) -> None:
        pass

    def collect(self) -> Iterator[MetricFamily]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


NULL_REGISTRY = NullRegistry()


def snapshot_delta(new: dict, base: dict) -> dict:
    """What ``new`` accumulated beyond ``base`` (both :meth:`snapshot` dumps).

    Children absent from ``base`` pass through unchanged; children whose
    delta is zero (or an empty histogram) are dropped, as are families
    left without children.  The result is itself a valid snapshot, ready
    for :meth:`MetricsRegistry.absorb_snapshot`.
    """
    delta: dict = {}
    for name, entry in new.items():
        base_children = base.get(name, {}).get("children", {})
        children: dict = {}
        for labelvalues, payload in entry["children"].items():
            before = base_children.get(labelvalues)
            if entry["kind"] == "histogram":
                b_buckets, b_sum, b_count = before if before else ([0] * len(payload[0]), 0.0, 0)
                buckets = [n - m for n, m in zip(payload[0], b_buckets)]
                count = payload[2] - b_count
                if count or any(buckets):
                    children[labelvalues] = (buckets, payload[1] - b_sum, count)
            else:
                value = payload - (before if before else 0.0)
                if value:
                    children[labelvalues] = value
        if children:
            delta[name] = {**entry, "children": children}
    return delta


def merge_registry_snapshots(snapshots: Sequence[dict]) -> MetricsRegistry:
    """A fresh registry absorbing every snapshot in ``snapshots``.

    The cross-process aggregation primitive of the serve fleet: each
    worker ships :meth:`MetricsRegistry.snapshot` dumps to the parent,
    which merges the latest per-worker dump into one registry for the
    admin plane's ``/metrics``.  Absorption is commutative and
    associative (plain additions per child), so merge order and the
    partition of observations across workers never change the result.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.absorb_snapshot(snapshot)
    return merged


_default_registry: Union[MetricsRegistry, NullRegistry] = NULL_REGISTRY


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The process-wide default registry (the null registry unless set)."""
    return _default_registry


def set_registry(registry: Union[MetricsRegistry, NullRegistry]) -> None:
    """Install ``registry`` as the process-wide default."""
    global _default_registry
    _default_registry = registry


@contextmanager
def use_registry(registry: Union[MetricsRegistry, NullRegistry]):
    """Temporarily install ``registry`` as the default (restores on exit)."""
    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
