"""Wire-level trace context: one id that follows a request everywhere.

A *trace* is the causal chain of one logical client request — the DNS
resolution that steered it, the broker selection behind that answer,
the TCP connect and HTTP fetch it produced, and the cache verdict at
the edge.  Each hop records spans into its tracer; the
:class:`TraceContext` carried on the wire is what lets those spans be
stitched back into a single chain afterwards.

Three representations of the same context:

* **ambient** — a :class:`contextvars.ContextVar` scoped to the current
  asyncio task (:func:`current_context` / :func:`use_context`), which
  the tracer consults for trace ids and remote parentage;
* **DNS** — an EDNS0 option in the local-use code range
  (:data:`TRACE_OPTION_CODE`), encoded next to ECS in the OPT
  pseudo-record by :mod:`repro.dns.wire`;
* **HTTP** — a ``traceparent``-style header
  (``00-<32 hex trace>-<16 hex span>-<2 hex flags>``).

Sampling is deterministic per trace id (:func:`sample_trace`): the id
is hashed and compared against the rate, so every hop — client and
servers alike — makes the *same* keep/drop decision without
coordination, and a given seed always samples the same requests.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Optional

from .tracer import TraceRecord, _ambient_context

__all__ = [
    "TRACE_OPTION_CODE",
    "TraceContext",
    "TraceChain",
    "current_context",
    "set_context",
    "use_context",
    "new_trace_id",
    "sample_trace",
    "assemble_chains",
]

# EDNS0 option code for the trace context, from the local/experimental
# range (65001-65534, RFC 6891 §9) so it can never collide with an
# IANA-assigned option such as ECS (8).
TRACE_OPTION_CODE = 65001

# struct layout of the option payload / traceparent fields:
# 8-byte trace id, 8-byte parent span id (0 = none), 1 flag byte.
_PAYLOAD = struct.Struct("!QQB")
_FLAG_SAMPLED = 0x01
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of one logical request.

    ``trace_id`` names the chain (64-bit, non-zero); ``span_id`` is the
    sender's currently open span — the remote parent that receiver-side
    spans attach under; ``sampled`` is the deterministic keep/drop
    decision made once at the root and honoured by every hop.
    """

    trace_id: int
    span_id: Optional[int] = None
    sampled: bool = True

    # ----- EDNS0 option payload ----------------------------------------

    def encode_option(self) -> bytes:
        """The raw EDNS0 option payload (17 bytes)."""
        return _PAYLOAD.pack(
            self.trace_id & _MASK64,
            (self.span_id or 0) & _MASK64,
            _FLAG_SAMPLED if self.sampled else 0,
        )

    @staticmethod
    def decode_option(payload: bytes) -> Optional["TraceContext"]:
        """Parse an option payload; ``None`` for malformed/truncated data.

        Tracing is observability, not protocol: a mangled trace option
        must never fail the query that carries it, so bad payloads are
        dropped silently instead of raising.
        """
        if len(payload) != _PAYLOAD.size:
            return None
        trace_id, span_id, flags = _PAYLOAD.unpack(payload)
        if trace_id == 0:
            return None
        return TraceContext(
            trace_id=trace_id,
            span_id=span_id or None,
            sampled=bool(flags & _FLAG_SAMPLED),
        )

    # ----- traceparent header ------------------------------------------

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent``-style header value."""
        return "00-{:032x}-{:016x}-{:02x}".format(
            self.trace_id & _MASK64,
            (self.span_id or 0) & _MASK64,
            _FLAG_SAMPLED if self.sampled else 0,
        )

    @staticmethod
    def from_traceparent(value: Optional[str]) -> Optional["TraceContext"]:
        """Parse a header value; ``None`` when absent or malformed."""
        if not value:
            return None
        parts = value.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_hex, span_hex, flags_hex = parts
        if len(version) != 2 or len(trace_hex) != 32 or len(span_hex) != 16:
            return None
        try:
            trace_id = int(trace_hex, 16)
            span_id = int(span_hex, 16)
            flags = int(flags_hex, 16)
        except ValueError:
            return None
        if trace_id == 0:
            return None
        return TraceContext(
            trace_id=trace_id & _MASK64,
            span_id=(span_id & _MASK64) or None,
            sampled=bool(flags & _FLAG_SAMPLED),
        )

    def child(self, span_id: Optional[int]) -> "TraceContext":
        """The same trace, re-parented under ``span_id`` for the next hop."""
        return TraceContext(self.trace_id, span_id, self.sampled)


# ----- ambient context -------------------------------------------------

# The variable itself lives in repro.obs.tracer (the hot recording path
# reads it); a ContextVar, not a module global, so each asyncio task
# sees its own value and concurrent loadgen workers / server handlers
# cannot clobber each other's request identity.


def current_context() -> Optional[TraceContext]:
    """The trace context of the current task, if any."""
    return _ambient_context.get()


def set_context(context: Optional[TraceContext]):
    """Install ``context`` for the current task; returns a reset token."""
    return _ambient_context.set(context)


@contextmanager
def use_context(context: Optional[TraceContext]):
    """Scope ``context`` to a ``with`` block (task-local)."""
    token = _ambient_context.set(context)
    try:
        yield context
    finally:
        _ambient_context.reset(token)


# ----- deterministic ids and sampling ----------------------------------


def new_trace_id(key: str) -> int:
    """A stable non-zero 64-bit trace id derived from ``key``.

    Deterministic by design: re-running the same workload yields the
    same trace ids, so traces can be diffed across runs.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(digest, "big")
    return value or 1


def sample_trace(trace_id: int, rate: float) -> bool:
    """The keep/drop decision for ``trace_id`` at sampling ``rate``.

    Hashes the id (salted, so sampling is independent of id
    derivation) into [0, 1) and keeps traces below ``rate``.  Every
    participant computes the same answer for the same id.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.blake2b(
        struct.pack("!Q", trace_id & _MASK64),
        digest_size=8,
        person=b"trc-sampl",
    ).digest()
    fraction = int.from_bytes(digest, "big") / float(1 << 64)
    return fraction < rate


# ----- chain assembly --------------------------------------------------


@dataclass(frozen=True)
class TraceChain:
    """All buffered spans of one trace, in completion order."""

    trace_id: int
    spans: tuple[TraceRecord, ...]

    @property
    def complete(self) -> bool:
        """True once the root span (no parent) has closed."""
        return any(r.parent_id is None for r in self.spans)

    def named(self, name: str) -> Optional[TraceRecord]:
        """The first span called ``name``, if any."""
        for record in self.spans:
            if record.name == name:
                return record
        return None

    def parent_of(self, record: TraceRecord) -> Optional[TraceRecord]:
        """The span ``record`` is parented under, if buffered."""
        if record.parent_id is None:
            return None
        for candidate in self.spans:
            if candidate.span_id == record.parent_id:
                return candidate
        return None

    def to_json(self) -> dict:
        """One JSON object per chain (the ``/traces`` line format)."""
        return {
            "trace_id": "{:016x}".format(self.trace_id & _MASK64),
            "complete": self.complete,
            "spans": [r.to_json() for r in self.spans],
        }


def assemble_chains(
    records: Iterable[TraceRecord],
    complete_only: bool = False,
) -> list[TraceChain]:
    """Group buffered span records into per-trace chains.

    Chains are ordered by the buffer position of their newest record
    (oldest chain first), so ``chains[-N:]`` is the natural ``tail=N``.
    """
    grouped: dict[int, list[TraceRecord]] = {}
    order: dict[int, int] = {}
    for index, record in enumerate(records):
        if record.kind != "span" or record.trace_id is None:
            continue
        grouped.setdefault(record.trace_id, []).append(record)
        order[record.trace_id] = index
    chains = [
        TraceChain(trace_id=trace_id, spans=tuple(spans))
        for trace_id, spans in grouped.items()
    ]
    chains.sort(key=lambda chain: order[chain.trace_id])
    if complete_only:
        chains = [chain for chain in chains if chain.complete]
    return chains
