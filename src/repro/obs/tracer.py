"""Structured event tracing: timestamped point events and nested spans.

The tracer is the narrative complement to the metrics registry: where
counters say *how much*, the trace says *when and in what order* — the
controller flipped to offload at 17:30, transit-d-1 saturated two steps
later, the ``a1015`` rollout landed at 23:00.  Records carry the
*simulation* clock in ``ts`` (the quantity every analysis reasons in);
span durations are wall-clock seconds, measured with
``time.perf_counter``.

Records land in a bounded in-memory ring buffer (old records drop
silently once ``capacity`` is exceeded; ``dropped`` counts them) and,
optionally, stream to a file-like object as JSONL the moment they are
emitted.  :class:`NullTracer` is the zero-overhead opt-out.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Iterator, Optional, Union

__all__ = [
    "TraceRecord",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a point event or a completed span."""

    name: str
    ts: float                       # simulation seconds
    kind: str                       # "event" | "span"
    fields: dict = field(default_factory=dict)
    span_id: Optional[int] = None   # set for spans
    parent_id: Optional[int] = None  # enclosing span, if any
    duration: Optional[float] = None  # wall seconds; spans only

    def to_json(self) -> dict:
        """The JSONL representation (stable key order)."""
        out = {"ts": self.ts, "kind": self.kind, "name": self.name}
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.duration is not None:
            out["duration_s"] = round(self.duration, 9)
        if self.fields:
            out["fields"] = self.fields
        return out

    def to_jsonl(self) -> str:
        """One JSONL line (no trailing newline)."""
        return json.dumps(self.to_json(), sort_keys=False, default=str)


class _Span:
    """Context manager recording a span on exit."""

    __slots__ = ("_tracer", "name", "ts", "fields", "span_id", "_t0")

    def __init__(self, tracer: "EventTracer", name: str, ts: float, fields: dict):
        self._tracer = tracer
        self.name = name
        self.ts = ts
        self.fields = fields
        self.span_id = 0
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self.span_id = self._tracer._open_span()
        self._t0 = time.perf_counter()
        return self

    def annotate(self, **fields) -> None:
        """Attach extra fields before the span closes."""
        self.fields.update(fields)

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        self._tracer._close_span(self, elapsed, failed=exc_type is not None)


class EventTracer:
    """Collects :class:`TraceRecord` entries in a ring buffer.

    ``capacity`` bounds memory; ``stream`` (optional, file-like) gets
    every record as a JSONL line the moment it is recorded, so long
    runs can persist more than the buffer holds.
    """

    enabled = True

    def __init__(self, capacity: int = 65536, stream: Optional[IO[str]] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: "deque[TraceRecord]" = deque(maxlen=capacity)
        self._stream = stream
        self._stack: list[int] = []   # open span ids, innermost last
        self._next_id = 1
        self.emitted = 0

    # ----- recording ----------------------------------------------------

    def event(self, name: str, ts: float, **fields) -> TraceRecord:
        """Record a point event at simulation time ``ts``."""
        record = TraceRecord(
            name=name,
            ts=float(ts),
            kind="event",
            fields=fields,
            parent_id=self._stack[-1] if self._stack else None,
        )
        self._emit(record)
        return record

    def span(self, name: str, ts: float, **fields) -> _Span:
        """A context manager timing a nested span starting at ``ts``."""
        return _Span(self, name, float(ts), fields)

    def _open_span(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(span_id)
        return span_id

    def _close_span(self, span: _Span, elapsed: float, failed: bool) -> None:
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        fields = dict(span.fields)
        if failed:
            fields["failed"] = True
        self._emit(
            TraceRecord(
                name=span.name,
                ts=span.ts,
                kind="span",
                fields=fields,
                span_id=span.span_id,
                parent_id=self._stack[-1] if self._stack else None,
                duration=elapsed,
            )
        )

    def _emit(self, record: TraceRecord) -> None:
        self._buffer.append(record)
        self.emitted += 1
        if self._stream is not None:
            self._stream.write(record.to_jsonl() + "\n")

    # ----- reading ------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records pushed out of the ring buffer."""
        return self.emitted - len(self._buffer)

    def records(self) -> tuple[TraceRecord, ...]:
        """Everything still in the buffer, oldest first."""
        return tuple(self._buffer)

    def find(self, name: str) -> list[TraceRecord]:
        """All buffered records with ``name``."""
        return [r for r in self._buffer if r.name == name]

    def first(self, name: str) -> Optional[TraceRecord]:
        """The oldest buffered record with ``name``, if any."""
        for record in self._buffer:
            if record.name == name:
                return record
        return None

    def jsonl_lines(self) -> Iterator[str]:
        """Every buffered record as a JSONL line."""
        for record in self._buffer:
            yield record.to_jsonl()

    def __len__(self) -> int:
        return len(self._buffer)


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def annotate(self, **fields) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The opt-out tracer: records nothing, costs a method call."""

    enabled = False
    emitted = 0
    dropped = 0

    def event(self, name: str, ts: float, **fields) -> None:
        return None

    def span(self, name: str, ts: float, **fields) -> _NullSpan:
        return _NULL_SPAN

    def records(self) -> tuple:
        return ()

    def find(self, name: str) -> list:
        return []

    def first(self, name: str) -> None:
        return None

    def jsonl_lines(self) -> Iterator[str]:
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

_default_tracer: Union[EventTracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[EventTracer, NullTracer]:
    """The process-wide default tracer (the null tracer unless set)."""
    return _default_tracer


def set_tracer(tracer: Union[EventTracer, NullTracer]) -> None:
    """Install ``tracer`` as the process-wide default."""
    global _default_tracer
    _default_tracer = tracer


@contextmanager
def use_tracer(tracer: Union[EventTracer, NullTracer]):
    """Temporarily install ``tracer`` as the default (restores on exit)."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
