"""Structured event tracing: timestamped point events and nested spans.

The tracer is the narrative complement to the metrics registry: where
counters say *how much*, the trace says *when and in what order* — the
controller flipped to offload at 17:30, transit-d-1 saturated two steps
later, the ``a1015`` rollout landed at 23:00.  Records carry the
*simulation* clock in ``ts`` (the quantity every analysis reasons in);
span durations are wall-clock seconds, measured with
``time.perf_counter``.

Span parentage is tracked with :mod:`contextvars`, not a shared stack:
each asyncio task sees its own "currently open span", so concurrent
loadgen workers and server handlers interleaving on one event loop
cannot mis-parent each other's spans.  When a wire-level
:class:`~repro.obs.trace_context.TraceContext` is ambient (see
:func:`~repro.obs.trace_context.use_context`), new spans inherit its
trace id and — absent a local parent — attach under its remote span id,
which is how client and server spans join into one causal chain.

Records land in a bounded in-memory ring buffer (old records drop
silently once ``capacity`` is exceeded; ``dropped`` counts them) and,
optionally, stream to a file-like object as JSONL the moment they are
emitted.  Ambient contexts marked unsampled suppress recording
entirely (``sampled_out`` counts the suppressions).  :class:`NullTracer`
is the zero-overhead opt-out.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import IO, Iterator, Optional, Union

__all__ = [
    "TraceRecord",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

# The ambient wire-level trace context of the current asyncio task.
# Owned here (rather than in trace_context) so the hot recording path
# reads it without a circular import; trace_context re-exports the
# public accessors.
_ambient_context: "ContextVar[Optional[object]]" = ContextVar(
    "repro_trace_context", default=None
)


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a point event or a completed span."""

    name: str
    ts: float                       # simulation seconds
    kind: str                       # "event" | "span"
    fields: dict = field(default_factory=dict)
    span_id: Optional[int] = None   # set for spans
    parent_id: Optional[int] = None  # enclosing span, if any
    duration: Optional[float] = None  # wall seconds; spans only
    trace_id: Optional[int] = None  # wire-level chain id, if ambient

    def to_json(self) -> dict:
        """The JSONL representation (stable key order)."""
        out = {"ts": self.ts, "kind": self.kind, "name": self.name}
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.duration is not None:
            out["duration_s"] = round(self.duration, 9)
        if self.trace_id is not None:
            out["trace_id"] = "{:016x}".format(self.trace_id)
        if self.fields:
            out["fields"] = self.fields
        return out

    def to_jsonl(self) -> str:
        """One JSONL line (no trailing newline)."""
        return json.dumps(self.to_json(), sort_keys=False, default=str)


class _Span:
    """Context manager recording a span on exit."""

    __slots__ = (
        "_tracer", "name", "ts", "fields",
        "span_id", "parent_id", "trace_id", "_t0", "_token",
    )

    def __init__(
        self,
        tracer: "EventTracer",
        name: str,
        ts: float,
        fields: dict,
        trace_id: Optional[int],
    ):
        self._tracer = tracer
        self.name = name
        self.ts = ts
        self.fields = fields
        self.trace_id = trace_id
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._t0 = 0.0
        self._token = None

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.parent_id = tracer._parent_id()
        self.span_id = tracer._new_span_id()
        # Task-local: entering a span only re-parents spans opened in
        # the *same* task (or tasks spawned while it is open).
        self._token = tracer._current.set(self.span_id)
        self._t0 = time.perf_counter()
        return self

    def annotate(self, **fields) -> None:
        """Attach extra fields before the span closes."""
        self.fields.update(fields)

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        if self._token is not None:
            self._tracer._current.reset(self._token)
            self._token = None
        self._tracer._close_span(self, elapsed, failed=exc_type is not None)


class EventTracer:
    """Collects :class:`TraceRecord` entries in a ring buffer.

    ``capacity`` bounds memory; ``stream`` (optional, file-like) gets
    every record as a JSONL line the moment it is recorded, so long
    runs can persist more than the buffer holds.
    """

    enabled = True

    def __init__(self, capacity: int = 65536, stream: Optional[IO[str]] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: "deque[TraceRecord]" = deque(maxlen=capacity)
        self._stream = stream
        # The currently open span of *this task*; each tracer gets its
        # own variable so independent tracers never share nesting state.
        self._current: "ContextVar[Optional[int]]" = ContextVar(
            "repro_trace_span", default=None
        )
        self._next_id = 1
        self.emitted = 0
        self.sampled_out = 0

    # ----- recording ----------------------------------------------------

    def event(self, name: str, ts: float, **fields) -> Optional[TraceRecord]:
        """Record a point event at simulation time ``ts``.

        Returns the record, or ``None`` when the ambient trace context
        is marked unsampled (the suppression is counted).
        """
        context = _ambient_context.get()
        if context is not None and not context.sampled:
            self.sampled_out += 1
            return None
        record = TraceRecord(
            name=name,
            ts=float(ts),
            kind="event",
            fields=fields,
            parent_id=self._parent_id(),
            trace_id=context.trace_id if context is not None else None,
        )
        self._emit(record)
        return record

    def span(self, name: str, ts: float, **fields):
        """A context manager timing a nested span starting at ``ts``.

        Unsampled ambient contexts get the no-op span (counted in
        ``sampled_out``), so high-qps call sites need no extra gating.
        """
        context = _ambient_context.get()
        if context is not None and not context.sampled:
            self.sampled_out += 1
            return _NULL_SPAN
        trace_id = context.trace_id if context is not None else None
        return _Span(self, name, float(ts), fields, trace_id)

    def current_span_id(self) -> Optional[int]:
        """The id of this task's innermost open span, if any."""
        return self._current.get()

    def _parent_id(self) -> Optional[int]:
        """Local open span first, else the ambient remote parent."""
        local = self._current.get()
        if local is not None:
            return local
        context = _ambient_context.get()
        if context is not None:
            return context.span_id
        return None

    def _new_span_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _close_span(self, span: _Span, elapsed: float, failed: bool) -> None:
        fields = dict(span.fields)
        if failed:
            fields["failed"] = True
        self._emit(
            TraceRecord(
                name=span.name,
                ts=span.ts,
                kind="span",
                fields=fields,
                span_id=span.span_id,
                parent_id=span.parent_id,
                duration=elapsed,
                trace_id=span.trace_id,
            )
        )

    def _emit(self, record: TraceRecord) -> None:
        self._buffer.append(record)
        self.emitted += 1
        if self._stream is not None:
            self._stream.write(record.to_jsonl() + "\n")

    # ----- reading ------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records pushed out of the ring buffer."""
        return self.emitted - len(self._buffer)

    def stats(self) -> dict:
        """Ring-buffer accounting: emitted / buffered / dropped / sampled_out."""
        return {
            "emitted": self.emitted,
            "buffered": len(self._buffer),
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
        }

    def records(self) -> tuple[TraceRecord, ...]:
        """Everything still in the buffer, oldest first."""
        return tuple(self._buffer)

    def find(self, name: str) -> list[TraceRecord]:
        """All buffered records with ``name``."""
        return [r for r in self._buffer if r.name == name]

    def first(self, name: str) -> Optional[TraceRecord]:
        """The oldest buffered record with ``name``, if any."""
        for record in self._buffer:
            if record.name == name:
                return record
        return None

    def jsonl_lines(self) -> Iterator[str]:
        """Every buffered record as a JSONL line."""
        for record in self._buffer:
            yield record.to_jsonl()

    def __len__(self) -> int:
        return len(self._buffer)


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def annotate(self, **fields) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The opt-out tracer: records nothing, costs a method call."""

    enabled = False
    emitted = 0
    dropped = 0
    sampled_out = 0

    def event(self, name: str, ts: float, **fields) -> None:
        return None

    def span(self, name: str, ts: float, **fields) -> _NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> None:
        return None

    def stats(self) -> dict:
        return {"emitted": 0, "buffered": 0, "dropped": 0, "sampled_out": 0}

    def records(self) -> tuple:
        return ()

    def find(self, name: str) -> list:
        return []

    def first(self, name: str) -> None:
        return None

    def jsonl_lines(self) -> Iterator[str]:
        return iter(())

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

_default_tracer: Union[EventTracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[EventTracer, NullTracer]:
    """The process-wide default tracer (the null tracer unless set)."""
    return _default_tracer


def set_tracer(tracer: Union[EventTracer, NullTracer]) -> None:
    """Install ``tracer`` as the process-wide default."""
    global _default_tracer
    _default_tracer = tracer


@contextmanager
def use_tracer(tracer: Union[EventTracer, NullTracer]):
    """Temporarily install ``tracer`` as the default (restores on exit)."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
