"""Public-resolver populations: shared POP caches between client and CDN.

The paper's probes resolve locally, so every vantage point sees its own
TTL-cached view of the mapping chain.  Real client populations are
split: many sit behind large public resolvers (8.8.8.8, 1.1.1.1) whose
frontend POPs serve *shared* caches — which changes what the Meta-CDN's
location-based DNS can see (the POP's geography, or an ECS prefix) and
how fast a 15 s selection CNAME propagates.  This package models that
axis: POP placement, the per-POP shared ECS-scope-aware caches, and the
probe-side stubs that route resolutions through them.
"""

from .plane import PopStubResolver, ResolverPlane
from .pops import DEFAULT_POPS, ResolverPop, nearest_pop

__all__ = [
    "DEFAULT_POPS",
    "PopStubResolver",
    "ResolverPlane",
    "ResolverPop",
    "nearest_pop",
]
