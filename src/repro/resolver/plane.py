"""The resolver-population plane: shared POP caches behind probe stubs.

Determinism is the design constraint here.  Sharded engine runs build
one scenario replica per worker and each replica measures a slice of
the probes, so anything a shared cache answers must be a pure function
of (campaign, POP, partition, tick) — never of which other probes
happen to share the worker.  Two rules enforce that:

* **Canonical contexts.**  Every query a POP sends upstream uses a
  context derived from the *full* probe population at build time, not
  from the querying probe: the POP's own geography when ECS is off,
  or a canonical representative (lowest probe id) of the scope-prefix
  partition when ECS is on.  Whichever probe of a partition touches
  the cache first in some replica, the authoritative chain sees the
  same question from the same place at the same time.

* **Per-campaign caches.**  Campaigns tick on different lattices (the
  global RIPE set every 30 min, the ISP set every 12 h); mixing them
  in one cache would make an entry's age depend on which campaigns a
  replica hosts.  Each (campaign, POP) pair gets its own shared
  resolver, mirroring how the real measurement sets hit disjoint
  resolver frontends.

Per-probe hit/miss *flags* still depend on intra-replica order — which
is why :class:`~repro.atlas.results.DnsMeasurement` records only the
chain and addresses, and all cache-behaviour aggregates are recomputed
analytically by :class:`~repro.analysis.resolver_accuracy.ResolverAccuracy`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from ..atlas.probe import AtlasProbe
from ..dns.policies import stable_fraction
from ..dns.query import QueryContext
from ..dns.resolver import (
    RecursiveResolver,
    Resolution,
    ResolutionStep,
    ResolverCacheStats,
)
from ..dns.zone import AuthoritativeServer
from ..net.ipv4 import IPv4Address, IPv4Prefix
from .pops import DEFAULT_POPS, ResolverPop, nearest_pop

__all__ = ["PopGroup", "PopStubResolver", "ResolverPlane"]

_ASSIGNMENT_SALT = "resolver-population"


class PopStubResolver:
    """A probe-side stand-in routing resolutions through a shared POP cache.

    Quacks like the slice of :class:`~repro.dns.resolver.RecursiveResolver`
    the campaign machinery uses (``servers``, ``resolve``, ``_query_one``
    and the two resolution instruments), but holds no cache of its own:
    every query is reframed onto the plane's canonical context — only
    the wall-clock ``now`` of the querying probe survives — and handed
    to the POP's shared resolver.
    """

    def __init__(self, shared: RecursiveResolver, canonical: QueryContext) -> None:
        self._shared = shared
        self._canonical = canonical
        # resolve_bulk increments these directly on the resolver it was
        # handed; pointing at the shared instruments keeps campaign
        # telemetry flowing without a parallel counter set.
        self._m_resolutions = shared._m_resolutions
        self._m_chain_length = shared._m_chain_length

    @property
    def servers(self) -> tuple[AuthoritativeServer, ...]:
        """The shared resolver's authoritative universe."""
        return self._shared.servers

    @property
    def canonical_context(self) -> QueryContext:
        """The context this stub's queries are reframed onto."""
        return self._canonical

    @property
    def shared(self) -> RecursiveResolver:
        """The POP-level resolver actually doing the work."""
        return self._shared

    def reframe(self, context: QueryContext) -> QueryContext:
        """The canonical context at the querying probe's time."""
        return replace(self._canonical, now=context.now)

    def resolve(self, name: str, context: QueryContext) -> Resolution:
        return self._shared.resolve(name, self.reframe(context))

    def _query_one(self, name, context, locate=None) -> ResolutionStep:
        return self._shared._query_one(name, self.reframe(context), locate)

    def cache_stats(self) -> ResolverCacheStats:
        """The shared cache's counters (POP-level, not per-probe)."""
        return self._shared.cache_stats()


@dataclass(frozen=True)
class PopGroup:
    """One shared-cache partition: who shares it and as whom it asks.

    ``partition`` is the scope-truncated network the POP announces via
    ECS, or ``None`` when ECS is off (the POP-wide partition).
    """

    campaign: str
    pop: ResolverPop
    partition: Optional[IPv4Address]
    canonical: QueryContext
    member_ids: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.member_ids)


class ResolverPlane:
    """Assigns probes to public-resolver POPs and installs the stubs.

    ``populations`` maps campaign names to their probe lists; each
    campaign gets its own per-POP shared caches (see the module
    docstring for why).  ``population`` is ``"public"`` (every probe
    resolves through a POP) or ``"mixed"`` (a stable
    ``public_share`` fraction does; the rest keep their ISP-path
    resolvers untouched).
    """

    def __init__(
        self,
        servers: Iterable[AuthoritativeServer],
        populations: dict[str, Sequence[AtlasProbe]],
        population: str = "public",
        public_share: float = 0.5,
        ecs: bool = True,
        scope: int = 24,
        cache_capacity: int = 4096,
        pops: Sequence[ResolverPop] = DEFAULT_POPS,
        metrics=None,
    ) -> None:
        if population not in ("public", "mixed"):
            raise ValueError(
                f"unknown resolver population {population!r} "
                "(the plane models public/mixed; isp means no plane)"
            )
        if not 0.0 <= public_share <= 1.0:
            raise ValueError("public_share must be within [0, 1]")
        if not 0 <= scope <= 32:
            raise ValueError("scope must be within [0, 32]")
        if not pops:
            raise ValueError("at least one POP is required")
        self.population = population
        self.public_share = public_share
        self.ecs = ecs
        self.scope = scope
        self.cache_capacity = cache_capacity
        self.pops = tuple(pops)
        self._servers = list(servers)
        self._metrics = metrics
        self._populations = {
            name: tuple(probes) for name, probes in populations.items()
        }
        self.pop_of: dict[int, ResolverPop] = {}
        self._caches: dict[tuple[str, str], RecursiveResolver] = {}
        self._groups: dict[str, tuple[PopGroup, ...]] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def is_public(self, probe_id: int) -> bool:
        """Whether ``probe_id`` resolves through a public POP.

        Keyed by probe id alone so the split is identical in every
        scenario replica and independent of campaign membership.
        """
        if self.population == "public":
            return True
        return stable_fraction(_ASSIGNMENT_SALT, probe_id) < self.public_share

    def _partition_of(self, probe: AtlasProbe) -> Optional[IPv4Address]:
        if not self.ecs:
            return None
        return IPv4Prefix.containing(probe.address, self.scope).network

    def _build(self) -> None:
        for campaign, probes in self._populations.items():
            members: dict[tuple[str, Optional[IPv4Address]], list[AtlasProbe]] = {}
            order: list[tuple[str, Optional[IPv4Address]]] = []
            for probe in probes:
                if not self.is_public(probe.probe_id):
                    continue
                pop = nearest_pop(probe.coordinates, self.pops)
                self.pop_of[probe.probe_id] = pop
                key = (pop.pop_id, self._partition_of(probe))
                if key not in members:
                    members[key] = []
                    order.append(key)
                members[key].append(probe)
            groups: list[PopGroup] = []
            pops_by_id = {pop.pop_id: pop for pop in self.pops}
            for key in order:
                pop_id, partition = key
                pop = pops_by_id[pop_id]
                group = sorted(members[key], key=lambda p: p.probe_id)
                representative = group[0]
                if partition is None:
                    canonical = pop.context()
                else:
                    # The chain sees the announced ECS prefix with the
                    # representative's geography: deterministic because
                    # the representative is chosen from the full
                    # population, before any sharding.
                    canonical = QueryContext(
                        client=partition,
                        coordinates=representative.coordinates,
                        continent=representative.continent,
                        country=representative.country,
                        now=0.0,
                    )
                groups.append(
                    PopGroup(
                        campaign=campaign,
                        pop=pop,
                        partition=partition,
                        canonical=canonical,
                        member_ids=tuple(p.probe_id for p in group),
                    )
                )
            self._groups[campaign] = tuple(groups)

    def shared_resolver(self, campaign: str, pop: ResolverPop) -> RecursiveResolver:
        """The one shared cache for (``campaign``, ``pop``)."""
        key = (campaign, pop.pop_id)
        resolver = self._caches.get(key)
        if resolver is None:
            resolver = RecursiveResolver(
                self._servers,
                cache=True,
                metrics=self._metrics,
                cache_scope=self.scope if self.ecs else 0,
                cache_capacity=self.cache_capacity,
            )
            self._caches[key] = resolver
        return resolver

    def install(self) -> int:
        """Rebind every public probe's resolver to its POP stub.

        Returns the number of probes rerouted.  Probes on the ISP path
        keep the per-client resolver they were placed with.
        """
        installed = 0
        for campaign, probes in self._populations.items():
            canonical_by_id: dict[int, QueryContext] = {}
            for group in self._groups[campaign]:
                for probe_id in group.member_ids:
                    canonical_by_id[probe_id] = group.canonical
            for probe in probes:
                canonical = canonical_by_id.get(probe.probe_id)
                if canonical is None:
                    continue
                pop = self.pop_of[probe.probe_id]
                probe.resolver = PopStubResolver(
                    self.shared_resolver(campaign, pop), canonical
                )
                installed += 1
        return installed

    # ------------------------------------------------------------------
    # lookups used by analyses and the admin plane
    # ------------------------------------------------------------------

    @property
    def campaigns(self) -> tuple[str, ...]:
        return tuple(self._populations)

    def probes(self, campaign: str) -> tuple[AtlasProbe, ...]:
        """All probes of ``campaign`` (public and ISP-path alike)."""
        return self._populations[campaign]

    def groups(self, campaign: str) -> tuple[PopGroup, ...]:
        """The shared-cache partitions of ``campaign``, build order."""
        return self._groups[campaign]

    def live_pops(self) -> tuple[ResolverPop, ...]:
        """POPs with at least one assigned probe, by pop id."""
        seen = {pop.pop_id: pop for pop in self.pop_of.values()}
        return tuple(seen[pop_id] for pop_id in sorted(seen))

    def cache_stats(self) -> dict[str, ResolverCacheStats]:
        """Per-(campaign, POP) shared-cache counters, sorted by key."""
        return {
            f"{campaign}/{pop_id}": resolver.cache_stats()
            for (campaign, pop_id), resolver in sorted(self._caches.items())
        }
