"""Public-resolver frontend POPs.

A large public resolver is anycast: the client's query lands at the
nearest frontend POP, and it is the *POP* that talks to authoritative
servers.  Without ECS the Meta-CDN therefore steers the client to
wherever the POP sits; with ECS it sees a truncated client prefix.
Each POP runs one shared cache for everyone it fronts.

POP anchors live inside the serving layer's CGNAT vantage blocks
(:data:`~repro.serve.clients.DEFAULT_VANTAGES`), so a live query a POP
sends upstream *without* ECS still maps to the POP's own geography
through the same :class:`~repro.serve.clients.ClientDirectory` the
authoritative server consults — the simulated and socket-level planes
agree on what an ECS-off public resolver looks like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..dns.query import QueryContext
from ..net.geo import Continent, Coordinates, great_circle_km
from ..net.ipv4 import IPv4Address

__all__ = ["ResolverPop", "DEFAULT_POPS", "nearest_pop"]


@dataclass(frozen=True)
class ResolverPop:
    """One public-resolver frontend: anchor address plus geography."""

    pop_id: str
    anchor: IPv4Address
    country: str  # ISO 3166-1 alpha-2, lowercase
    continent: Continent
    coordinates: Coordinates

    def context(self, now: float = 0.0) -> QueryContext:
        """The query context an ECS-off upstream query presents.

        The authoritative chain sees the POP, not the client — the
        mapping inaccuracy the analysis plane quantifies.
        """
        return QueryContext(
            client=self.anchor,
            coordinates=self.coordinates,
            continent=self.continent,
            country=self.country,
            now=now,
        )


def _pop(pop_id, anchor, country, continent, lat, lon) -> ResolverPop:
    return ResolverPop(
        pop_id=pop_id,
        anchor=IPv4Address.parse(anchor),
        country=country,
        continent=continent,
        coordinates=Coordinates(lat, lon),
    )


# A 2017-plausible public-resolver footprint: dense where the big
# anycast resolvers actually were, absent from Africa (Johannesburg
# clients cross to Europe — a real and measured mis-mapping source).
# Anchors sit in the ``.255.x`` tail of the matching serve vantage
# block, clear of the load generator's low client offsets.
DEFAULT_POPS: tuple[ResolverPop, ...] = (
    _pop("pop-fra", "100.64.255.1", "de", Continent.EUROPE, 50.11, 8.68),
    _pop("pop-lon", "100.65.255.1", "gb", Continent.EUROPE, 51.51, -0.13),
    _pop("pop-nyc", "100.67.255.1", "us", Continent.NORTH_AMERICA, 40.71, -74.01),
    _pop("pop-sjc", "100.68.255.1", "us", Continent.NORTH_AMERICA, 37.34, -121.89),
    _pop("pop-tyo", "100.70.255.1", "jp", Continent.ASIA, 35.68, 139.69),
    _pop("pop-sin", "100.71.255.1", "sg", Continent.ASIA, 1.35, 103.82),
    _pop("pop-syd", "100.72.255.1", "au", Continent.OCEANIA, -33.87, 151.21),
    _pop("pop-gru", "100.73.255.1", "br", Continent.SOUTH_AMERICA, -23.55, -46.63),
)


def nearest_pop(
    origin: Coordinates, pops: Sequence[ResolverPop] = DEFAULT_POPS
) -> ResolverPop:
    """The POP an anycast query from ``origin`` lands at.

    Great-circle proximity with a first-seen tie-break, mirroring
    :func:`~repro.net.geo.nearest` — deterministic for identical POP
    tables, which every scenario replica rebuilds from config alone.
    """
    if not pops:
        raise ValueError("at least one POP is required")
    best = pops[0]
    best_km = great_circle_km(origin, best.coordinates)
    for pop in pops[1:]:
        km = great_circle_km(origin, pop.coordinates)
        if km < best_km:
            best = pop
            best_km = km
    return best
