"""Live serving layer: the modelled Meta-CDN behind real sockets.

Everything the rest of the repository models in memory — the Figure 2
authoritative DNS estate, the vip → edge-bx → edge-lx cache hierarchy,
the flash-crowd workload — is made network-reachable here:

* :mod:`repro.serve.dnsserver` — an asyncio authoritative DNS server
  (UDP with TCP fallback for truncated responses) over RFC 1035 wire
  bytes, honouring EDNS Client Subnet;
* :mod:`repro.serve.httpserver` — an asyncio HTTP/1.1 edge emitting the
  ``Via``/``X-Cache`` chains the §3.3 header inference parses;
* :mod:`repro.serve.loadgen` — a closed-loop load generator replaying
  the workload model as concurrent wire resolutions and ranged
  downloads;
* :mod:`repro.serve.clients` — the shared client-address ⇄ geography
  contract both ends rely on;
* :mod:`repro.serve.resolverfront` — a caching public-resolver front
  (shared POP caches, honest ECS scopes) the loadgen's public share
  resolves through;
* :mod:`repro.serve.cluster` — the one-call loopback topology and the
  ``repro selftest`` entry point;
* :mod:`repro.serve.admin` — the live admin plane (``/metrics``,
  ``/healthz``, ``/traces``) the ``repro top`` dashboard polls;
* :mod:`repro.serve.snapshot` — the mmap-backed read-only fleet spec
  every worker process serves from;
* :mod:`repro.serve.fleet` — the multi-process ``SO_REUSEPORT`` edge
  fleet plus the loadgen fleet and the scaled selftest.
"""

from .admin import AdminServer
from .clients import DEFAULT_VANTAGES, ClientDirectory, SampledClient, Vantage
from .cluster import (
    ClusterConfig,
    ServeCluster,
    build_serve_estate,
    render_selftest,
    selftest,
    selftest_checks,
)
from .dnsserver import AsyncDnsServer, ZoneFrontend
from .fleet import (
    FleetConfig,
    FleetSelftestReport,
    ServeFleet,
    fleet_selftest,
    fleet_supported,
    render_fleet_selftest,
    run_loadgen_fleet,
)
from .httpserver import AsyncHttpEdge, estate_router
from .loadgen import (
    AsyncDnsClient,
    DnsClientError,
    LoadConfig,
    LoadGenerator,
    LoadReport,
    PooledHttpClient,
    WireResolution,
    merge_load_reports,
)
from .resilience import BackoffPolicy, CircuitBreaker, HedgePolicy
from .resolverfront import PublicResolverFront
from .snapshot import FleetSpec, estate_signature, load_snapshot, write_snapshot

__all__ = [
    "AdminServer",
    "BackoffPolicy",
    "CircuitBreaker",
    "HedgePolicy",
    "Vantage",
    "SampledClient",
    "ClientDirectory",
    "DEFAULT_VANTAGES",
    "ZoneFrontend",
    "AsyncDnsServer",
    "AsyncHttpEdge",
    "estate_router",
    "AsyncDnsClient",
    "DnsClientError",
    "WireResolution",
    "PooledHttpClient",
    "LoadConfig",
    "LoadReport",
    "LoadGenerator",
    "PublicResolverFront",
    "ClusterConfig",
    "build_serve_estate",
    "ServeCluster",
    "selftest",
    "selftest_checks",
    "render_selftest",
    "merge_load_reports",
    "FleetSpec",
    "estate_signature",
    "write_snapshot",
    "load_snapshot",
    "FleetConfig",
    "ServeFleet",
    "fleet_supported",
    "run_loadgen_fleet",
    "FleetSelftestReport",
    "fleet_selftest",
    "render_fleet_selftest",
]
