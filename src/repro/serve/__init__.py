"""Live serving layer: the modelled Meta-CDN behind real sockets.

Everything the rest of the repository models in memory — the Figure 2
authoritative DNS estate, the vip → edge-bx → edge-lx cache hierarchy,
the flash-crowd workload — is made network-reachable here:

* :mod:`repro.serve.dnsserver` — an asyncio authoritative DNS server
  (UDP with TCP fallback for truncated responses) over RFC 1035 wire
  bytes, honouring EDNS Client Subnet;
* :mod:`repro.serve.httpserver` — an asyncio HTTP/1.1 edge emitting the
  ``Via``/``X-Cache`` chains the §3.3 header inference parses;
* :mod:`repro.serve.loadgen` — a closed-loop load generator replaying
  the workload model as concurrent wire resolutions and ranged
  downloads;
* :mod:`repro.serve.clients` — the shared client-address ⇄ geography
  contract both ends rely on;
* :mod:`repro.serve.cluster` — the one-call loopback topology and the
  ``repro selftest`` entry point;
* :mod:`repro.serve.admin` — the live admin plane (``/metrics``,
  ``/healthz``, ``/traces``) the ``repro top`` dashboard polls.
"""

from .admin import AdminServer
from .clients import DEFAULT_VANTAGES, ClientDirectory, SampledClient, Vantage
from .cluster import (
    ClusterConfig,
    ServeCluster,
    build_serve_estate,
    render_selftest,
    selftest,
    selftest_checks,
)
from .dnsserver import AsyncDnsServer, ZoneFrontend
from .httpserver import AsyncHttpEdge, estate_router
from .loadgen import (
    AsyncDnsClient,
    DnsClientError,
    LoadConfig,
    LoadGenerator,
    LoadReport,
    PooledHttpClient,
    WireResolution,
)
from .resilience import BackoffPolicy, CircuitBreaker, HedgePolicy

__all__ = [
    "AdminServer",
    "BackoffPolicy",
    "CircuitBreaker",
    "HedgePolicy",
    "Vantage",
    "SampledClient",
    "ClientDirectory",
    "DEFAULT_VANTAGES",
    "ZoneFrontend",
    "AsyncDnsServer",
    "AsyncHttpEdge",
    "estate_router",
    "AsyncDnsClient",
    "DnsClientError",
    "WireResolution",
    "PooledHttpClient",
    "LoadConfig",
    "LoadReport",
    "LoadGenerator",
    "ClusterConfig",
    "build_serve_estate",
    "ServeCluster",
    "selftest",
    "selftest_checks",
    "render_selftest",
]
