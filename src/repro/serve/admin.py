"""Live admin plane: scrape metrics, health and traces off a running cluster.

:class:`AdminServer` is a deliberately tiny asyncio HTTP/1.0-style
endpoint (one request per connection, always ``Connection: close``)
that exposes the cluster's observability state while it serves:

* ``GET /metrics`` — the registry in Prometheus text exposition, the
  same bytes :func:`repro.obs.export.render_exposition` writes to
  files, so any scrape tool (or ``repro top``) can poll it live;
* ``GET /healthz`` — the :class:`~repro.faults.health.CdnHealthMonitor`
  member states as JSON; HTTP 200 while every member is healthy, 503
  once any member is marked down (load-balancer semantics);
* ``GET /traces?tail=N`` — the most recent N *completed* causal chains
  from the tracer's ring buffer, one JSON object per line (see
  :func:`repro.obs.trace_context.assemble_chains`).

The admin listener is separate from the serving sockets: scraping must
never contend with the data path's accept queue.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from ..obs import assemble_chains, get_registry, get_tracer, render_exposition

__all__ = ["AdminServer"]

_READ_TIMEOUT = 10.0
_MAX_HEAD_BYTES = 8192
_DEFAULT_TAIL = 20
_MAX_TAIL = 1000


class AdminServer:
    """Serves ``/metrics``, ``/healthz`` and ``/traces`` for one cluster."""

    def __init__(
        self,
        registry=None,
        tracer=None,
        health_monitor=None,
        registry_provider=None,
    ) -> None:
        self._registry = registry if registry is not None else get_registry()
        # A fleet parent passes ``registry_provider``: a zero-argument
        # callable evaluated at scrape time, so ``/metrics`` reflects
        # the latest merge of every worker's registry snapshot instead
        # of one process's view.
        self._registry_provider = registry_provider
        self._tracer = tracer if tracer is not None else get_tracer()
        self._health = health_monitor
        self._server: Optional[asyncio.base_events.Server] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._conn_tasks: set = set()

    @property
    def endpoint(self) -> tuple:
        """(host, port) once started."""
        if self._host is None or self._port is None:
            raise RuntimeError("admin server is not started")
        return self._host, self._port

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Start listening; returns the bound endpoint."""
        if self._server is not None:
            raise RuntimeError("admin server already started")
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self.endpoint

    async def stop(self) -> None:
        """Stop accepting and drain in-flight scrapes."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._host = self._port = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=_READ_TIMEOUT
            )
            # Drain (and bound) the header block; nothing in it matters.
            total = len(request_line)
            while total <= _MAX_HEAD_BYTES:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=_READ_TIMEOUT
                )
                total += len(line)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2 or parts[0] != "GET":
                await self._send(writer, 405, "text/plain",
                                 "only GET is supported\n")
                return
            status, content_type, body = self._route(parts[1])
            await self._send(writer, status, content_type, body)
        except (ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - teardown race
                pass

    def _route(self, target: str) -> tuple:
        split = urlsplit(target)
        path = split.path
        if path == "/metrics":
            registry = (
                self._registry_provider()
                if self._registry_provider is not None else self._registry
            )
            return 200, "text/plain; version=0.0.4", render_exposition(registry)
        if path == "/healthz":
            return self._healthz()
        if path == "/traces":
            return self._traces(parse_qs(split.query))
        return 404, "text/plain", f"no route for {path}\n"

    def _healthz(self) -> tuple:
        members: dict = {}
        unhealthy = 0
        if self._health is not None:
            for member in self._health.members:
                state = self._health.state(member)
                members[member] = state.value
                if state.name != "HEALTHY":
                    unhealthy += 1
        payload = {
            "status": "ok" if unhealthy == 0 else "degraded",
            "members": members,
        }
        status = 200 if unhealthy == 0 else 503
        return status, "application/json", json.dumps(payload) + "\n"

    def _traces(self, query: dict) -> tuple:
        try:
            tail = int(query.get("tail", [str(_DEFAULT_TAIL)])[0])
        except ValueError:
            return 400, "text/plain", "tail must be an integer\n"
        tail = max(1, min(tail, _MAX_TAIL))
        chains = assemble_chains(self._tracer.records(), complete_only=True)
        lines = [json.dumps(chain.to_json()) for chain in chains[-tail:]]
        body = "\n".join(lines) + ("\n" if lines else "")
        return 200, "application/x-ndjson", body

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    content_type: str, body: str) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 503: "Service Unavailable"}
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
