"""Client vantages: the IP ⇄ geography contract of the serving layer.

Over real sockets the only thing a DNS query carries about its client is
an address (via EDNS Client Subnet, RFC 7871); the geo attributes that
drive the Figure 2 policies — country, continent, coordinates — must be
recovered from it.  A :class:`ClientDirectory` is that shared contract:
the load generator samples client addresses from its vantage blocks, and
the authoritative DNS server maps the ECS prefix back to a full
:class:`~repro.dns.query.QueryContext` through the same directory, so a
resolution over the wire sees exactly the context an in-memory
resolution would.

Vantage blocks live in the CGNAT range ``100.64.0.0/10`` (RFC 6598) —
address space that can never collide with the modelled CDN estates in
``17/8``, ``23/11`` etc.  Sampling weights default to the workload
model's per-region updating-device counts, so socket-level load has the
same regional mix as the simulated flash crowd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..dns.policies import stable_fraction
from ..dns.query import QueryContext
from ..net.geo import Continent, Coordinates, MappingRegion
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..workload.adoption import AdoptionModel

__all__ = ["Vantage", "SampledClient", "ClientDirectory", "DEFAULT_VANTAGES"]


@dataclass(frozen=True)
class Vantage:
    """One client population: an address block with its geography."""

    name: str
    prefix: IPv4Prefix
    country: str  # ISO 3166-1 alpha-2, lowercase
    continent: Continent
    coordinates: Coordinates

    @property
    def region(self) -> MappingRegion:
        """The Apple mapping region this vantage falls into."""
        return MappingRegion.for_continent(self.continent)

    def context(self, client: IPv4Address, now: float = 0.0) -> QueryContext:
        """A full query context for ``client`` seen from this vantage."""
        return QueryContext(
            client=client,
            coordinates=self.coordinates,
            continent=self.continent,
            country=self.country,
            now=now,
        )


def _v(name, prefix, country, continent, lat, lon) -> Vantage:
    return Vantage(
        name=name,
        prefix=IPv4Prefix.parse(prefix),
        country=country,
        continent=continent,
        coordinates=Coordinates(lat, lon),
    )


# A worldwide spread matching the paper's probe distribution: dense in
# Europe and North America, present in Asia/Oceania, thin in South
# America and Africa (where Apple deploys no own sites).
DEFAULT_VANTAGES: tuple[Vantage, ...] = (
    _v("de-frankfurt", "100.64.0.0/16", "de", Continent.EUROPE, 50.11, 8.68),
    _v("uk-london", "100.65.0.0/16", "gb", Continent.EUROPE, 51.51, -0.13),
    _v("fr-paris", "100.66.0.0/16", "fr", Continent.EUROPE, 48.86, 2.35),
    _v("us-newyork", "100.67.0.0/16", "us", Continent.NORTH_AMERICA, 40.71, -74.01),
    _v("us-sanjose", "100.68.0.0/16", "us", Continent.NORTH_AMERICA, 37.34, -121.89),
    _v("ca-toronto", "100.69.0.0/16", "ca", Continent.NORTH_AMERICA, 43.65, -79.38),
    _v("jp-tokyo", "100.70.0.0/16", "jp", Continent.ASIA, 35.68, 139.69),
    _v("sg-singapore", "100.71.0.0/16", "sg", Continent.ASIA, 1.35, 103.82),
    _v("au-sydney", "100.72.0.0/16", "au", Continent.OCEANIA, -33.87, 151.21),
    _v("br-saopaulo", "100.73.0.0/16", "br", Continent.SOUTH_AMERICA, -23.55, -46.63),
    _v("za-johannesburg", "100.74.0.0/16", "za", Continent.AFRICA, -26.20, 28.05),
)


@dataclass(frozen=True)
class SampledClient:
    """One synthetic client the load generator acts as."""

    address: IPv4Address
    vantage: Vantage

    def context(self, now: float = 0.0) -> QueryContext:
        """The query context an in-memory resolution would use."""
        return self.vantage.context(self.address, now)


class ClientDirectory:
    """Weighted vantage set with deterministic sampling and reverse lookup.

    ``weights`` assigns a sampling weight per vantage name; missing
    names default to 1.0.  Sampling is keyed by an integer sequence
    number through :func:`~repro.dns.policies.stable_fraction`, so two
    runs (or the two ends of an equivalence test) draw identical client
    populations.
    """

    def __init__(
        self,
        vantages: Iterable[Vantage] = DEFAULT_VANTAGES,
        weights: Optional[dict[str, float]] = None,
    ) -> None:
        self._vantages = tuple(vantages)
        if not self._vantages:
            raise ValueError("a directory needs at least one vantage")
        names = [v.name for v in self._vantages]
        if len(set(names)) != len(names):
            raise ValueError("vantage names must be unique")
        given = dict(weights or {})
        unknown = set(given) - set(names)
        if unknown:
            raise ValueError(f"weights for unknown vantages: {sorted(unknown)}")
        self._weights = [max(0.0, given.get(v.name, 1.0)) for v in self._vantages]
        total = sum(self._weights)
        if total <= 0.0:
            raise ValueError("at least one vantage needs positive weight")
        self._cumulative: list[float] = []
        running = 0.0
        for weight in self._weights:
            running += weight / total
            self._cumulative.append(running)
        # Per-region index lists + cumulative weights, for arrival
        # schedules that fix the region before the vantage is drawn.
        self._region_indexes: dict[MappingRegion, list[int]] = {}
        for index, vantage in enumerate(self._vantages):
            self._region_indexes.setdefault(vantage.region, []).append(index)
        self._region_cumulative: dict[MappingRegion, list[float]] = {}
        for region, indexes in self._region_indexes.items():
            region_total = sum(self._weights[i] for i in indexes)
            bounds: list[float] = []
            acc = 0.0
            for i in indexes:
                share = (
                    self._weights[i] / region_total if region_total > 0.0
                    else 1.0 / len(indexes)
                )
                acc += share
                bounds.append(acc)
            self._region_cumulative[region] = bounds

    @classmethod
    def from_adoption(
        cls,
        adoption: Optional[AdoptionModel] = None,
        vantages: Iterable[Vantage] = DEFAULT_VANTAGES,
    ) -> "ClientDirectory":
        """Weight vantages by the flash crowd's per-region device counts.

        Each region's updating-device population (the adoption curve
        applied to the installed base) is split evenly across that
        region's vantages, so the socket-level request mix reproduces
        the workload model's regional skew.
        """
        model = adoption if adoption is not None else AdoptionModel()
        vantage_list = tuple(vantages)
        per_region: dict[MappingRegion, int] = {}
        for vantage in vantage_list:
            per_region[vantage.region] = per_region.get(vantage.region, 0) + 1
        weights = {
            v.name: model.updating_devices(v.region) / per_region[v.region]
            for v in vantage_list
        }
        return cls(vantage_list, weights)

    @property
    def vantages(self) -> tuple[Vantage, ...]:
        """All vantages, in declaration order."""
        return self._vantages

    def sample(self, sequence: int, salt: str = "") -> SampledClient:
        """The deterministic client for sequence number ``sequence``."""
        fraction = stable_fraction("serve-client", sequence, salt)
        index = 0
        for index, bound in enumerate(self._cumulative):
            if fraction < bound:
                break
        vantage = self._vantages[index]
        # Spread clients over the block's host space, skipping the
        # network address so /24 ECS prefixes stay distinguishable.
        host_space = (1 << (32 - vantage.prefix.length)) - 2
        offset = 1 + (sequence % max(1, host_space))
        address = IPv4Address(vantage.prefix.network.value + offset)
        return SampledClient(address=address, vantage=vantage)

    def weights(self) -> dict[str, float]:
        """Sampling weight per vantage name (the snapshot payload)."""
        return {v.name: w for v, w in zip(self._vantages, self._weights)}

    def sample_in_region(self, region: MappingRegion, sequence: int,
                         salt: str = "") -> SampledClient:
        """The deterministic client for ``sequence``, pinned to ``region``.

        Used by open-loop arrival schedules: the workload model decides
        *which region* wakes up at each instant (diurnal ramp), and the
        directory only picks the vantage within it.  Regions with no
        vantage fall back to the unconstrained draw.
        """
        indexes = self._region_indexes.get(region)
        if not indexes:
            return self.sample(sequence, salt)
        fraction = stable_fraction("serve-client-region", region.value,
                                   sequence, salt)
        bounds = self._region_cumulative[region]
        position = 0
        for position, bound in enumerate(bounds):
            if fraction < bound:
                break
        vantage = self._vantages[indexes[position]]
        host_space = (1 << (32 - vantage.prefix.length)) - 2
        offset = 1 + (sequence % max(1, host_space))
        address = IPv4Address(vantage.prefix.network.value + offset)
        return SampledClient(address=address, vantage=vantage)

    def vantage_for(self, address: IPv4Address) -> Optional[Vantage]:
        """The vantage whose block contains ``address``, if any."""
        for vantage in self._vantages:
            if vantage.prefix.contains(address):
                return vantage
        return None

    def scope_for(self, address: IPv4Address) -> int:
        """The lookup granularity behind an answer for ``address``.

        The matched vantage's prefix length — the only part of the
        client address :meth:`context_for` actually consulted — or 0
        when no vantage matched and the fallback geography (which does
        not depend on the client at all) answered.  This is the honest
        ECS ``scope_length`` an authoritative answer should advertise.
        """
        vantage = self.vantage_for(address)
        return vantage.prefix.length if vantage is not None else 0

    def context_for(self, address: IPv4Address, now: float = 0.0) -> QueryContext:
        """A query context for ``address``; unknown addresses fall back
        to the first vantage's geography (a resolver with no ECS)."""
        vantage = self.vantage_for(address)
        if vantage is None:
            vantage = self._vantages[0]
        return vantage.context(address, now)

    def __len__(self) -> int:
        return len(self._vantages)
