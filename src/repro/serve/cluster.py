"""One-call topology: the whole Meta-CDN estate behind live sockets.

:class:`ServeCluster` boots the serving layer on loopback — the
authoritative DNS estate (Apple, Akamai and Limelight zones behind one
:class:`~repro.serve.dnsserver.AsyncDnsServer`) plus the HTTP edge
fronting every delivery fleet — and can drive the closed-loop load
generator against itself.  :func:`selftest` is the synchronous wrapper
the CLI exposes: boot, drive a flash-crowd-shaped run, tear down,
report.

The default estate is sized for loopback (a few third-party servers per
metro instead of dozens) but structurally identical to the full
scenario estate: the same Figure 2 chain, policies, TTLs and cache
hierarchy — just fewer cache servers behind each GSLB answer.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional

from ..apple.deployment import AppleCdn
from ..apple.mapping import MetaCdnEstate, build_meta_cdn
from ..apple.policy import MetaCdnController
from ..cdn.thirdparty import AKAMAI_PLAN, LIMELIGHT_PLAN, build_third_party
from ..faults import CdnHealthMonitor, FailoverConfig, FailoverLoop, FaultInjector, FaultSchedule
from ..net.asys import ASN
from ..net.geo import MappingRegion
from ..net.locode import LocodeDatabase
from ..obs import MetricsRegistry, get_registry, get_tracer, use_registry, use_tracer
from .admin import AdminServer
from .clients import ClientDirectory
from .dnsserver import AsyncDnsServer
from .httpserver import AsyncHttpEdge, estate_router
from .loadgen import LoadConfig, LoadGenerator, LoadReport
from .steering import anycast_router, build_serve_plane

__all__ = [
    "ClusterConfig",
    "build_serve_estate",
    "ServeCluster",
    "selftest",
    "selftest_checks",
    "render_selftest",
]

# Hosting ASs for the third-party "other AS" caches (the serve layer
# does not model BGP; any distinct ASNs work).
_AS_HOSTER_AKAMAI = ASN(64512)
_AS_HOSTER_LIMELIGHT = ASN(64513)

_SERVE_METROS = (
    "usnyc", "uslax", "defra", "uklon", "jptyo", "sgsin", "ausyd", "brsao",
)


@dataclass
class ClusterConfig:
    """Size and policy knobs for a loopback serve estate."""

    object_size: int = 262_144
    apple_edge_gbps: float = 14.0
    target_utilization: float = 0.95
    min_third_party_share: float = 0.35
    servers_per_metro: int = 8
    max_udp_payload: Optional[int] = None
    # Resolver population: "isp" keeps the classic per-client path;
    # "public"/"mixed" boot a PublicResolverFront (shared POP caches)
    # the load generator resolves through for the public share.
    resolver_population: str = "isp"
    public_resolver_share: float = 0.5
    public_resolver_ecs: bool = True
    public_resolver_scope: int = 24
    public_resolver_cache_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.servers_per_metro <= 0:
            raise ValueError("servers_per_metro must be positive")
        if self.resolver_population not in ("isp", "public", "mixed"):
            raise ValueError(
                f"unknown resolver population {self.resolver_population!r} "
                "(valid: isp, public, mixed)"
            )
        if not 0.0 <= self.public_resolver_share <= 1.0:
            raise ValueError("public_resolver_share must be in [0, 1]")
        if not 0 <= self.public_resolver_scope <= 32:
            raise ValueError("public_resolver_scope must be in [0, 32]")
        if self.public_resolver_cache_capacity <= 0:
            raise ValueError("public_resolver_cache_capacity must be positive")

    @property
    def loadgen_resolver_share(self) -> float:
        """The client fraction that resolves through the front."""
        if self.resolver_population == "isp":
            return 0.0
        if self.resolver_population == "public":
            return 1.0
        return self.public_resolver_share


def build_serve_estate(
    config: Optional[ClusterConfig] = None,
    health_monitor: Optional[CdnHealthMonitor] = None,
) -> MetaCdnEstate:
    """A loopback-sized Meta-CDN estate with the full Figure 2 chain.

    ``min_third_party_share`` keeps the third-party branch live even
    with no demand observed (as Apple's standing commercial contracts
    do), so a load run exercises Apple GSLB, Akamai and Limelight
    resolutions side by side.  ``health_monitor`` hooks the selection
    policies to the failover plane (see :mod:`repro.faults.health`).
    """
    config = config if config is not None else ClusterConfig()
    locations = LocodeDatabase.builtin()
    apple = AppleCdn.build(locations, edge_bx_gbps=config.apple_edge_gbps)
    metros = [locations.get(code) for code in _SERVE_METROS]
    akamai = build_third_party(
        replace(AKAMAI_PLAN, servers_per_metro=config.servers_per_metro),
        metros,
        other_as=_AS_HOSTER_AKAMAI,
    )
    limelight = build_third_party(
        replace(LIMELIGHT_PLAN, servers_per_metro=config.servers_per_metro),
        metros,
        other_as=_AS_HOSTER_LIMELIGHT,
    )
    controller = MetaCdnController(
        {
            region: apple.deployment.region_capacity_gbps(region)
            for region in MappingRegion
        },
        target_utilization=config.target_utilization,
        min_third_party_share=config.min_third_party_share,
    )
    return build_meta_cdn(
        apple, akamai, limelight, controller, health_monitor=health_monitor
    )


def _operator_at(estate: MetaCdnEstate) -> Callable:
    """vip → operator across every fleet, Apple's included."""

    def operator_at(vip):
        if estate.apple.site_for(vip) is not None:
            return "Apple"
        return estate.deployment_at(vip)

    return operator_at


class ServeCluster:
    """The serving topology on loopback: DNS + HTTP + shared directory.

    Usable as an async context manager::

        async with ServeCluster() as cluster:
            report = await cluster.drive(LoadConfig(requests=500))
    """

    def __init__(
        self,
        estate: Optional[MetaCdnEstate] = None,
        directory: Optional[ClientDirectory] = None,
        config: Optional[ClusterConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics=None,
        faults: Optional[FaultSchedule] = None,
        failover: Optional[FailoverConfig] = None,
        tracer=None,
        steering: str = "dns",
        hybrid_dns_share: float = 0.5,
    ) -> None:
        if steering not in ("dns", "anycast", "hybrid"):
            raise ValueError(
                f"unknown steering mode {steering!r} (valid: dns, anycast, hybrid)"
            )
        self.steering = steering
        self.hybrid_dns_share = hybrid_dns_share
        self.config = config if config is not None else ClusterConfig()
        self.directory = (
            directory if directory is not None else ClientDirectory.from_adoption()
        )
        registry = metrics if metrics is not None else get_registry()
        tracer = tracer if tracer is not None else get_tracer()
        self._tracer = tracer
        self._failover_cfg = failover if failover is not None else FailoverConfig()
        self.faults: Optional[FaultInjector] = None
        self.health_monitor: Optional[CdnHealthMonitor] = None
        self.failover_loop: Optional[FailoverLoop] = None
        self._failover_task: Optional[asyncio.Task] = None
        self._t0: Optional[float] = None
        if faults is not None and len(faults):
            if estate is not None:
                raise ValueError(
                    "pass a ClusterConfig, not a prebuilt estate, when "
                    "injecting faults (health hooks are wired at build time)"
                )
            if clock is None:
                clock = self._cluster_clock
            cfg = self._failover_cfg
            self.health_monitor = CdnHealthMonitor(
                members=cfg.members,
                k_failures=cfg.k_failures,
                recovery_probes=cfg.recovery_probes,
                probe_interval=cfg.probe_interval,
                cooldown=cfg.cooldown,
                metrics=registry,
                tracer=tracer,
            )
            self.estate = build_serve_estate(
                self.config, health_monitor=self.health_monitor
            )
            self.faults = FaultInjector(
                faults,
                seed=cfg.fault_seed,
                clock=clock,
                metrics=registry,
                tracer=tracer,
            )
            self.estate.apple.install_fault_injector(self.faults)
            self.failover_loop = FailoverLoop(self.health_monitor, self.faults)
        else:
            self.estate = (
                estate if estate is not None else build_serve_estate(self.config)
            )
        self._clock = clock
        # Anycast steering plane: catchments over the estate's Apple
        # sites, evaluated against the fault schedule at the cluster
        # clock so live route flaps shift connections instantly.
        self.anycast = None
        router = estate_router(self.estate)
        if steering != "dns":
            self.anycast = build_serve_plane(
                self.estate, self.directory, schedule=faults
            )
            router = anycast_router(
                self.estate,
                self.anycast,
                clock if clock is not None else self._cluster_clock,
                steering=steering,
                hybrid_dns_share=hybrid_dns_share,
                metrics=registry,
            )
        self.dns = AsyncDnsServer(
            self.estate.servers,
            directory=self.directory,
            clock=clock,
            max_udp_payload=self.config.max_udp_payload,
            metrics=registry,
            faults=self.faults,
            tracer=tracer,
        )
        self.http = AsyncHttpEdge(
            router,
            object_size=self.config.object_size,
            metrics=registry,
            faults=self.faults,
            operator_for=_operator_at(self.estate) if self.faults is not None else None,
            tracer=tracer,
        )
        self.admin = AdminServer(
            registry=registry,
            tracer=tracer,
            health_monitor=self.health_monitor,
        )
        # A public-resolver front between the loadgen and the DNS
        # server, when the config asks for a public population.  Built
        # lazily at start() — it needs the DNS endpoint to forward to.
        self.resolver_front = None
        if self.config.resolver_population != "isp":
            from .resolverfront import PublicResolverFront

            self.resolver_front = PublicResolverFront(
                upstream=("127.0.0.1", 0),  # rebound at start()
                directory=self.directory,
                ecs=self.config.public_resolver_ecs,
                scope=self.config.public_resolver_scope,
                cache_capacity=self.config.public_resolver_cache_capacity,
                metrics=registry,
                clock=clock,
            )
        self._registry = registry

    def _cluster_clock(self) -> float:
        """Seconds since :meth:`start` (0.0 before boot).

        Fault windows are expressed in run-relative seconds, so the
        injector and the DNS selection buckets share this clock.
        """
        if self._t0 is None:
            return 0.0
        return time.monotonic() - self._t0

    async def _failover_runner(self, interval: float) -> None:
        assert self.failover_loop is not None and self._clock is not None
        while True:
            self.failover_loop.advance(self._clock())
            await asyncio.sleep(interval)

    async def start(self, host: str = "127.0.0.1", dns_port: int = 0,
                    http_port: int = 0, admin_port: Optional[int] = 0,
                    resolver_port: int = 0,
                    reuse_port: bool = False) -> "ServeCluster":
        """Boot both servers plus the admin plane (ephemeral ports).

        ``admin_port=None`` skips the admin listener — fleet workers do
        that, since the fleet parent serves one merged admin plane.
        ``reuse_port`` binds the data-path sockets ``SO_REUSEPORT`` so
        sibling workers can share the same ports.  ``resolver_port``
        binds the public-resolver front (when the config enables one).
        """
        self._t0 = time.monotonic()
        await self.dns.start(host=host, port=dns_port, reuse_port=reuse_port)
        await self.http.start(host=host, port=http_port, reuse_port=reuse_port)
        if self.resolver_front is not None:
            self.resolver_front._upstream = self.dns.endpoint
            await self.resolver_front.start(
                host=host, port=resolver_port, reuse_port=reuse_port
            )
        if admin_port is not None:
            await self.admin.start(host=host, port=admin_port)
        if self.failover_loop is not None:
            interval = max(0.05, self._failover_cfg.probe_interval / 2.0)
            self._failover_task = asyncio.create_task(
                self._failover_runner(interval)
            )
        return self

    async def stop(self) -> None:
        """Tear both servers down."""
        if self._failover_task is not None:
            self._failover_task.cancel()
            try:
                await self._failover_task
            except asyncio.CancelledError:
                pass
            self._failover_task = None
        await self.admin.stop()
        if self.resolver_front is not None:
            await self.resolver_front.stop()
        await self.http.stop()
        await self.dns.stop()

    async def __aenter__(self) -> "ServeCluster":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def drive(self, config: Optional[LoadConfig] = None) -> LoadReport:
        """Run the load generator against this cluster's endpoints.

        With a public-resolver front live, the config's resolver share
        defaults to the cluster's (``loadgen_resolver_share``) so the
        public population reaches the shared POP caches.
        """
        resolver_endpoint = None
        if self.resolver_front is not None:
            resolver_endpoint = self.resolver_front.endpoint
            config = config if config is not None else LoadConfig()
            if config.public_resolver_share == 0.0:
                config = replace(
                    config,
                    public_resolver_share=self.config.loadgen_resolver_share,
                )
        generator = LoadGenerator(
            dns_endpoint=self.dns.endpoint,
            http_endpoint=self.http.endpoint,
            directory=self.directory,
            config=config,
            metrics=self._registry,
            tracer=self._tracer,
            resolver_endpoint=resolver_endpoint,
        )
        return await generator.run()


def _cache_hits_and_misses(registry) -> tuple[int, int]:
    family = registry.get("cache_requests_total")
    hits = misses = 0
    if family is not None:
        for labels, child in family.children():
            if labels[-1] == "hit":
                hits += int(child.value)
            else:
                misses += int(child.value)
    return hits, misses


def _resolver_front_counts(registry) -> Optional[tuple[int, int]]:
    """(hits, misses) of the public-resolver front, or None when absent."""
    family = registry.get("resolver_front_cache_total")
    if family is None:
        return None
    hits = misses = 0
    for labels, child in family.children():
        if labels[-1] == "hit":
            hits += int(child.value)
        else:
            misses += int(child.value)
    return hits, misses


def selftest(
    requests: int = 5000,
    concurrency: int = 64,
    registry: Optional[MetricsRegistry] = None,
    cluster_config: Optional[ClusterConfig] = None,
    tracer=None,
    trace_sample: float = 1.0,
) -> tuple[LoadReport, MetricsRegistry]:
    """Boot a cluster, drive a full load run, return (report, registry).

    The registry is installed process-wide for the duration so the
    estate's construction-time instruments (cache hit/miss counters,
    site request counters) land in it alongside the serve metrics.
    Passing a ``tracer`` installs it ambiently so client and server
    spans land in the same ring buffer; ``trace_sample`` is the
    per-trace sampling rate the load generator stamps on each request.
    """
    registry = registry if registry is not None else MetricsRegistry()
    tracer = tracer if tracer is not None else get_tracer()
    config = LoadConfig(
        requests=requests, concurrency=concurrency, trace_sample=trace_sample
    )

    async def _run() -> LoadReport:
        cluster = ServeCluster(
            config=cluster_config, metrics=registry, tracer=tracer
        )
        async with cluster:
            return await cluster.drive(config)

    with use_registry(registry), use_tracer(tracer):
        report = asyncio.run(_run())
    return report, registry


def selftest_checks(
    report: LoadReport, registry: MetricsRegistry, qps_floor: float = 1000.0
) -> list[tuple[str, bool]]:
    """The acceptance checks a selftest run must satisfy."""
    hits, misses = _cache_hits_and_misses(registry)
    checks = [
        ("all requests ok", report.healthy()),
        (f"dns >= {qps_floor:.0f} qps sustained", report.dns_qps >= qps_floor),
        ("dns latency percentiles non-zero",
         report.dns_p50_ms > 0.0 and report.dns_p99_ms > 0.0),
        ("http latency percentiles non-zero",
         report.http_p50_ms > 0.0 and report.http_p99_ms > 0.0),
        ("cache hit metrics present", hits + misses > 0),
    ]
    front = _resolver_front_counts(registry)
    if front is not None:
        front_hits, front_misses = front
        checks.append(
            ("public-resolver cache-dilution metrics present",
             front_hits + front_misses > 0)
        )
    return checks


def render_selftest(
    report: LoadReport, registry: MetricsRegistry, qps_floor: float = 1000.0
) -> str:
    """The selftest verdict: load report plus estate-side health lines."""
    hits, misses = _cache_hits_and_misses(registry)
    total = hits + misses
    hit_rate = hits / total if total else 0.0
    dns_family = registry.get("serve_dns_queries_total")
    served = 0
    if dns_family is not None:
        served = int(sum(child.value for _labels, child in dns_family.children()))
    checks = selftest_checks(report, registry, qps_floor)
    lines = [
        report.render(),
        "",
        "cluster",
        "-------",
        f"dns queries served   {served}",
        f"cache lookups        {total}  (hits {hits}, misses {misses}, "
        f"hit rate {hit_rate:.1%})",
    ]
    front = _resolver_front_counts(registry)
    if front is not None:
        front_hits, front_misses = front
        front_total = front_hits + front_misses
        front_rate = front_hits / front_total if front_total else 0.0
        lines.append(
            f"public resolver      {front_total} lookups  "
            f"(hits {front_hits}, hit rate {front_rate:.1%} — "
            f"shared POP caches)"
        )
    lines.append("")
    for label, passed in checks:
        lines.append(f"{'PASS' if passed else 'FAIL'}  {label}")
    lines.append("")
    lines.append(
        "selftest " + ("PASSED" if all(p for _, p in checks) else "FAILED")
    )
    return "\n".join(lines)
