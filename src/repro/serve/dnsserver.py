"""Live authoritative DNS: the Figure 2 estate behind real sockets.

:class:`AsyncDnsServer` fronts any set of
:class:`~repro.dns.zone.AuthoritativeServer` instances — typically the
three operators of the Meta-CDN estate — over RFC 1035 wire bytes on a
loopback (or any) UDP endpoint, with the standard TCP fallback for
responses that would not fit the client's advertised UDP payload size.

The server is *authoritative only*: it answers for names its zones
cover and returns REFUSED otherwise, exactly like the in-memory
:meth:`AuthoritativeServer.query` path.  Geo-dependent policies get
their :class:`~repro.dns.query.QueryContext` from the query's EDNS
Client Subnet option through a shared :class:`ClientDirectory`, so a
resolution over the socket is byte-for-byte governed by the same
decision logic as an in-memory one.

Malformed packets never crash or hang the server: anything the wire
decoder rejects is counted, answered with SERVFAIL when a message id is
recoverable, and dropped otherwise.
"""

from __future__ import annotations

import asyncio
import struct
import time
from typing import Callable, Iterable, Optional

from ..dns.query import DnsResponse, QueryContext, RCode
from ..dns.wire import ClientSubnet, WireError, WireMessage, decode_message, encode_message
from ..dns.zone import AuthoritativeServer
from ..obs import get_registry, get_tracer, use_context
from .clients import ClientDirectory

__all__ = ["ZoneFrontend", "AsyncDnsServer"]

_FALLBACK_UDP_PAYLOAD = 512  # RFC 1035 limit for clients without EDNS
_TCP_IDLE_TIMEOUT = 30.0


class ZoneFrontend:
    """Routes each owner name to the most specific authoritative server.

    The same longest-zone-wins rule as
    :meth:`repro.dns.resolver.RecursiveResolver.server_for`: Akamai's
    ``akadns.net`` zone answers ``appldnld.apple.com.akadns.net`` even
    though Apple's ``apple.com`` zone also matches a suffix.
    """

    def __init__(self, servers: Iterable[AuthoritativeServer]) -> None:
        self._servers = list(servers)
        if not self._servers:
            raise ValueError("a frontend needs at least one server")
        self._memo: dict[str, Optional[AuthoritativeServer]] = {}

    def server_for(self, name: str) -> Optional[AuthoritativeServer]:
        """The authoritative server for ``name`` (most specific zone)."""
        if name in self._memo:
            return self._memo[name]
        best: Optional[AuthoritativeServer] = None
        best_depth = -1
        for server in self._servers:
            zone = server.zone_for(name)
            if zone is not None:
                depth = zone.origin.count(".") + 1
                if depth > best_depth:
                    best = server
                    best_depth = depth
        self._memo[name] = best
        return best

    def answer(
        self,
        query: WireMessage,
        context: QueryContext,
        ecs_scope: Optional[int] = None,
    ) -> WireMessage:
        """The response message for one decoded query.

        ``ecs_scope`` is the prefix length the geography lookup behind
        ``context`` actually used (``AsyncDnsServer`` passes its client
        directory's vantage granularity).  ``None`` falls back to the
        legacy full-source-scope echo for standalone frontend use where
        the context genuinely is per-client.
        """
        if not query.questions:
            raise WireError("query carries no question")
        question = query.questions[0]
        server = self.server_for(question.name)
        if server is None:
            response = DnsResponse(question=question, rcode=RCode.REFUSED)
        else:
            response = server.query(question, context)
        ecs = None
        if query.client_subnet is not None:
            # Echo the option back with the scope the answer really
            # depended on: over-claiming full source scope would make a
            # downstream shared resolver cache partition per /24 even
            # though the directory only looked at the /16 — diluting
            # its hit rate — while under-claiming would leak one
            # geography's steering answers to another.
            scope = (
                query.client_subnet.prefix.length
                if ecs_scope is None else ecs_scope
            )
            ecs = ClientSubnet(
                prefix=query.client_subnet.prefix,
                scope_length=scope,
            )
        return WireMessage(
            message_id=query.message_id,
            is_response=True,
            authoritative=response.authoritative,
            recursion_desired=query.recursion_desired,
            rcode=response.rcode,
            questions=[question],
            answers=list(response.answers),
            client_subnet=ecs,
            # Echo the trace option too, so a captured response still
            # names the chain it belonged to.
            trace_context=query.trace_context,
        )


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "AsyncDnsServer") -> None:
        self._server = server
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:  # pragma: no cover - trivial
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        reply, delay = self._server.handle_datagram_timed(data)
        if reply is None or self.transport is None:
            return
        if delay > 0.0:
            asyncio.get_running_loop().call_later(
                delay, self._send_delayed, reply, addr
            )
        else:
            self.transport.sendto(reply, addr)

    def _send_delayed(self, reply: bytes, addr) -> None:
        if self.transport is not None and not self.transport.is_closing():
            self.transport.sendto(reply, addr)


class AsyncDnsServer:
    """An asyncio authoritative DNS server (UDP with TCP fallback).

    ``clock`` supplies the simulation time stamped into query contexts
    (the Figure 2 policies are time-dependent: TTL buckets, weight
    schedules, the ``a1015`` rollout).  The default clock starts at 0
    when the server starts and advances in real seconds.
    """

    def __init__(
        self,
        servers: Iterable[AuthoritativeServer],
        directory: Optional[ClientDirectory] = None,
        clock: Optional[Callable[[], float]] = None,
        max_udp_payload: Optional[int] = None,
        metrics=None,
        faults=None,
        tracer=None,
    ) -> None:
        self.frontend = ZoneFrontend(servers)
        self.directory = directory if directory is not None else ClientDirectory()
        self._clock = clock
        self._max_udp_payload = max_udp_payload
        # Fault plane (repro.faults.FaultInjector); None = zero-overhead
        # healthy path.  DNS faults target the *operator* whose zone
        # answers the question (drop, delay, SERVFAIL, stale answers).
        self._faults = faults
        # Spans adopt the wire trace context of each query (EDNS0
        # option), parenting server-side work under the client's
        # resolve span.
        self._tracer = tracer if tracer is not None else get_tracer()
        self._udp_transport: Optional[asyncio.DatagramTransport] = None
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

        registry = metrics if metrics is not None else get_registry()
        self._m_queries = registry.counter(
            "serve_dns_queries_total",
            "Wire DNS queries handled by the serving layer",
            ("transport",),
        )
        self._m_udp = self._m_queries.labels("udp")
        self._m_tcp = self._m_queries.labels("tcp")
        self._m_truncated = registry.counter(
            "serve_dns_truncated_total",
            "UDP responses sent with the TC bit (client should retry TCP)",
        )
        self._m_malformed = registry.counter(
            "serve_dns_malformed_total",
            "Queries the wire decoder rejected",
        )
        self._m_refused = registry.counter(
            "serve_dns_refused_total",
            "Queries for names outside every hosted zone",
        )
        self._m_handle = registry.histogram(
            "serve_dns_handle_seconds",
            "Server-side handling time per DNS query",
            buckets=(0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
                     0.005, 0.01, 0.025, 0.05, 0.1),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def endpoint(self) -> tuple[str, int]:
        """(host, port) once started."""
        if self._host is None or self._port is None:
            raise RuntimeError("server is not started")
        return self._host, self._port

    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    reuse_port: bool = False) -> tuple[str, int]:
        """Bind UDP and TCP on the same port; returns the endpoint.

        With ``reuse_port`` both sockets are bound ``SO_REUSEPORT``, so
        N server processes can share one port: the kernel hashes UDP
        datagrams by 4-tuple and spreads TCP accepts across the group.
        Every member must bind with the flag (see
        :func:`repro.serve.fleet.reserve_shared_port`).
        """
        if self._udp_transport is not None:
            raise RuntimeError("server already started")
        if self._clock is None:
            origin = time.monotonic()
            self._clock = lambda: time.monotonic() - origin
        loop = asyncio.get_running_loop()
        extra = {"reuse_port": True} if reuse_port else {}
        # UDP and TCP are separate port spaces; retry a few times in
        # case an ephemeral UDP port is taken on the TCP side.
        last_error: Optional[OSError] = None
        for _ in range(5):
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda: _UdpProtocol(self), local_addr=(host, port), **extra
            )
            bound_host, bound_port = transport.get_extra_info("sockname")[:2]
            try:
                tcp_server = await asyncio.start_server(
                    self._handle_tcp, host=bound_host, port=bound_port, **extra
                )
            except OSError as exc:
                transport.close()
                if port != 0:
                    raise
                last_error = exc
                continue
            self._udp_transport = transport
            self._tcp_server = tcp_server
            self._host, self._port = bound_host, bound_port
            return self.endpoint
        raise RuntimeError(f"could not bind matching UDP/TCP ports: {last_error}")

    async def stop(self) -> None:
        """Close both listeners and drain open TCP connections."""
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._host = self._port = None

    # ------------------------------------------------------------------
    # query handling
    # ------------------------------------------------------------------

    def _context_for(self, query: WireMessage, staleness: float = 0.0) -> QueryContext:
        now = self._clock() if self._clock is not None else 0.0
        if staleness > 0.0:
            # Stale-answer fault: the zone answers as of an earlier
            # instant (a stuck snapshot), never before time zero.
            now = max(0.0, now - staleness)
        if query.client_subnet is not None:
            return self.directory.context_for(query.client_subnet.prefix.network, now)
        # No ECS: fall back to the directory's default geography.
        return self.directory.context_for(
            self.directory.vantages[0].prefix.network, now
        )

    def _ecs_scope_for(self, query: WireMessage) -> Optional[int]:
        """The scope the directory lookup behind the answer resolved at.

        This is what goes back in the echoed ECS option: the matched
        vantage's prefix length (the granularity ``context_for`` used),
        or 0 when no vantage matched and the answer fell back to the
        default geography — i.e. did not depend on the client at all.
        """
        if query.client_subnet is None:
            return None
        return self.directory.scope_for(query.client_subnet.prefix.network)

    def _dns_fault(self, query: WireMessage) -> tuple[Optional[str], float, float]:
        """(action, delay, staleness) the fault plane injects for ``query``."""
        question = query.questions[0] if query.questions else None
        operator = None
        if question is not None:
            server = self.frontend.server_for(question.name)
            if server is not None:
                operator = server.operator
        name = question.name if question is not None else ""
        return self._faults.dns_fault(operator, (query.message_id, name))

    def _answer_bytes(
        self, payload: bytes
    ) -> tuple[Optional[bytes], Optional[WireMessage], Optional[WireMessage], float]:
        """Decode, answer, encode: (encoded reply, response, query, delay).

        Malformed or policy-breaking input yields a bare SERVFAIL (or
        ``None`` when not even a message id is recoverable) — a hostile
        packet must never take the transport task down.  ``delay`` is
        the fault-injected send delay (0.0 without a fault plane).
        """
        try:
            query = decode_message(payload)
        except Exception:
            self._m_malformed.inc()
            return self._servfail_for(payload), None, None, 0.0
        trace = query.trace_context
        if trace is None or not self._tracer.enabled:
            return self._answer_decoded(query, payload, None)
        # Adopt the wire context for the duration of the answer: the
        # span (and everything it emits) joins the client's chain, and
        # unsampled traces collapse to a counted no-op.
        with use_context(trace):
            ts = self._clock() if self._clock is not None else 0.0
            with self._tracer.span("serve.dns.query", ts=ts) as span:
                return self._answer_decoded(query, payload, span)

    def _answer_decoded(
        self, query: WireMessage, payload: bytes, span
    ) -> tuple[Optional[bytes], Optional[WireMessage], Optional[WireMessage], float]:
        delay = 0.0
        if span is not None and query.questions:
            span.annotate(qname=query.questions[0].name)
        try:
            staleness = 0.0
            if self._faults is not None:
                action, delay, staleness = self._dns_fault(query)
                if action == "drop":
                    if span is not None:
                        span.annotate(outcome="drop")
                    return None, None, None, 0.0
                if action == "servfail":
                    if span is not None:
                        span.annotate(outcome="servfail-fault")
                    return self._servfail_for(payload), None, None, delay
            response = self.frontend.answer(
                query,
                self._context_for(query, staleness),
                ecs_scope=self._ecs_scope_for(query),
            )
        except Exception:
            self._m_malformed.inc()
            if span is not None:
                span.annotate(outcome="malformed")
            return self._servfail_for(payload), None, None, delay
        if response.rcode is RCode.REFUSED:
            self._m_refused.inc()
        if span is not None:
            span.annotate(
                rcode=response.rcode.name, answers=len(response.answers)
            )
        return encode_message(response), response, query, delay

    @staticmethod
    def _servfail_for(payload: bytes) -> Optional[bytes]:
        """A bare SERVFAIL echoing the query id, if one is recoverable."""
        if len(payload) < 12:
            return None
        (message_id,) = struct.unpack("!H", payload[:2])
        return encode_message(
            WireMessage(
                message_id=message_id,
                is_response=True,
                rcode=RCode.SERVFAIL,
                recursion_desired=False,
            )
        )

    def handle_datagram(self, payload: bytes) -> Optional[bytes]:
        """Answer one UDP datagram (truncating oversize responses)."""
        return self.handle_datagram_timed(payload)[0]

    def handle_datagram_timed(self, payload: bytes) -> tuple[Optional[bytes], float]:
        """Like :meth:`handle_datagram`, plus the injected send delay."""
        started = time.perf_counter()
        self._m_udp.inc()
        encoded, response, query, delay = self._answer_bytes(payload)
        if encoded is None or response is None or query is None:
            self._m_handle.observe(time.perf_counter() - started)
            return encoded, delay
        limit = query.udp_payload_size or _FALLBACK_UDP_PAYLOAD
        if self._max_udp_payload is not None:
            limit = min(limit, self._max_udp_payload)
        if len(encoded) > limit:
            self._m_truncated.inc()
            encoded = encode_message(
                WireMessage(
                    message_id=response.message_id,
                    is_response=True,
                    authoritative=response.authoritative,
                    truncated=True,
                    recursion_desired=response.recursion_desired,
                    rcode=response.rcode,
                    questions=list(response.questions),
                    client_subnet=response.client_subnet,
                )
            )
        self._m_handle.observe(time.perf_counter() - started)
        return encoded, delay

    async def _handle_tcp(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """Serve length-prefixed queries until the client hangs up."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    header = await asyncio.wait_for(
                        reader.readexactly(2), timeout=_TCP_IDLE_TIMEOUT
                    )
                except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                        ConnectionError):
                    break
                (length,) = struct.unpack("!H", header)
                try:
                    payload = await asyncio.wait_for(
                        reader.readexactly(length), timeout=_TCP_IDLE_TIMEOUT
                    )
                except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                        ConnectionError):
                    break
                started = time.perf_counter()
                self._m_tcp.inc()
                encoded, _response, _query, delay = self._answer_bytes(payload)
                self._m_handle.observe(time.perf_counter() - started)
                if encoded is None:
                    continue
                if delay > 0.0:
                    await asyncio.sleep(delay)
                writer.write(struct.pack("!H", len(encoded)) + encoded)
                await writer.drain()
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - teardown race
                pass
