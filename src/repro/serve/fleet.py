"""Multi-process serve fleet: N workers behind one ``SO_REUSEPORT`` port.

The single-loop :class:`~repro.serve.cluster.ServeCluster` serves the
whole estate from one asyncio loop — one CPU, however many the host
has.  :class:`ServeFleet` scales it out the way real edges do:

* the parent reserves the listen ports with ``SO_REUSEPORT``
  placeholder sockets, writes the shared :class:`~repro.serve.snapshot.
  FleetSpec` snapshot, and **forks** N worker processes;
* each worker closes the inherited placeholders (an unread inherited
  UDP socket would silently steal a share of the reuseport group's
  datagrams), rebuilds the estate from the snapshot's config, verifies
  its :func:`~repro.serve.snapshot.estate_signature` against the
  snapshot, and binds its own ``SO_REUSEPORT`` sockets on the shared
  ports — the kernel then spreads UDP datagrams and TCP accepts across
  the fleet while pinning each flow to one worker (a keep-alive
  connection always talks to the same process's cache);
* workers ship full :meth:`~repro.obs.registry.MetricsRegistry.
  snapshot` dumps to the parent over pipes; the parent's admin plane
  merges the latest dump per worker at scrape time, so ``/metrics``
  shows fleet-wide totals.

Answer equivalence across fleet sizes is by construction — every
worker builds the same deterministic estate and the policies are pure
functions of (client, now) — and enforced twice: the signature check at
boot and the wire-level equivalence pass in :func:`fleet_selftest`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from typing import Optional

from ..apple.mapping import NAMES
from ..faults import FailoverConfig, FaultSchedule
from ..obs import NULL_TRACER, MetricsRegistry, merge_registry_snapshots, use_registry, use_tracer
from ..workload.arrival import ArrivalSchedule
from .clients import ClientDirectory
from .cluster import ClusterConfig, ServeCluster, build_serve_estate, selftest
from .loadgen import (
    AsyncDnsClient,
    LoadConfig,
    LoadGenerator,
    LoadReport,
    PooledHttpClient,
    merge_load_reports,
)
from .snapshot import FleetSpec, estate_signature, load_snapshot, write_snapshot

__all__ = [
    "FleetConfig",
    "ServeFleet",
    "fleet_supported",
    "reserve_shared_port",
    "run_loadgen_fleet",
    "FleetSelftestReport",
    "fleet_selftest",
    "render_fleet_selftest",
]

_READY_TIMEOUT = 60.0
_STOP_TIMEOUT = 15.0


def fleet_supported() -> bool:
    """Whether this platform can run a reuseport fork fleet."""
    return (
        hasattr(socket, "SO_REUSEPORT")
        and sys.platform != "win32"
        and "fork" in multiprocessing.get_all_start_methods()
    )


def _reuseport_socket(kind: int, host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, kind)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    try:
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    return sock


def reserve_shared_port(
    host: str, port: int = 0, udp: bool = True
) -> tuple[int, list[socket.socket]]:
    """Reserve one port for a reuseport group; returns (port, holders).

    With ``udp`` the port is reserved in *both* address spaces (the DNS
    server binds UDP and TCP on the same number).  The placeholder
    sockets keep the port allocated while workers boot; callers must
    close them before traffic starts — a bound-but-unread UDP socket is
    a live member of the reuseport group and eats its share of
    datagrams.
    """
    last_error: Optional[OSError] = None
    for _ in range(20):
        holders: list[socket.socket] = []
        try:
            if udp:
                udp_sock = _reuseport_socket(socket.SOCK_DGRAM, host, port)
                holders.append(udp_sock)
                bound = udp_sock.getsockname()[1]
                holders.append(
                    _reuseport_socket(socket.SOCK_STREAM, host, bound)
                )
            else:
                tcp_sock = _reuseport_socket(socket.SOCK_STREAM, host, port)
                holders.append(tcp_sock)
                bound = tcp_sock.getsockname()[1]
            return bound, holders
        except OSError as exc:
            for sock in holders:
                sock.close()
            if port != 0:
                raise
            last_error = exc
    raise RuntimeError(f"could not reserve a shared port: {last_error}")


@dataclass
class FleetConfig:
    """Topology and policy of one serve fleet."""

    workers: int = 2
    cluster: Optional[ClusterConfig] = None
    steering: str = "dns"
    hybrid_dns_share: float = 0.5
    faults: Optional[FaultSchedule] = None
    failover: Optional[FailoverConfig] = None
    # Pin every worker's cluster clock (equivalence runs); None = live.
    pin_clock: Optional[float] = None
    snapshot_dir: Optional[str] = None
    metrics_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.metrics_interval <= 0:
            raise ValueError("metrics_interval must be positive")


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _worker_main(worker_id: int, snapshot_path: str, host: str,
                 dns_port: int, http_port: int, resolver_port: int,
                 conn, stop_event,
                 interval: float, placeholder_fds: tuple[int, ...]) -> None:
    """Entry point of one forked serve worker."""
    # A terminal Ctrl-C signals the whole foreground process group;
    # shutdown is the parent's call (via the stop event), so workers
    # must not die — traceback and all — on their own SIGINT.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Inherited placeholder sockets would join the reuseport group as
    # dead members; drop them before binding our own.
    for fd in placeholder_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    try:
        asyncio.run(
            _worker_async(
                worker_id, snapshot_path, host, dns_port, http_port,
                resolver_port, conn, stop_event, interval,
            )
        )
    except Exception:
        try:
            conn.send(("error", worker_id, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
        os._exit(1)
    finally:
        try:
            conn.close()
        except OSError:
            pass


async def _worker_async(worker_id: int, snapshot_path: str, host: str,
                        dns_port: int, http_port: int, resolver_port: int,
                        conn, stop_event,
                        interval: float) -> None:
    registry = MetricsRegistry()
    with load_snapshot(snapshot_path) as snapshot:
        spec = snapshot.spec
        directory = spec.directory()
        clock = (
            (lambda: spec.pin_clock) if spec.pin_clock is not None else None
        )
        with use_registry(registry), use_tracer(NULL_TRACER):
            if spec.faults is not None and len(spec.faults):
                cluster = ServeCluster(
                    directory=directory,
                    config=spec.cluster,
                    clock=clock,
                    metrics=registry,
                    faults=spec.faults,
                    failover=spec.failover,
                    steering=spec.steering,
                    hybrid_dns_share=spec.hybrid_dns_share,
                )
            else:
                estate = build_serve_estate(spec.cluster)
                cluster = ServeCluster(
                    estate=estate,
                    directory=directory,
                    config=spec.cluster,
                    clock=clock,
                    metrics=registry,
                    steering=spec.steering,
                    hybrid_dns_share=spec.hybrid_dns_share,
                )
            snapshot.verify_estate(cluster.estate)
            if spec.catchment_sig and cluster.anycast is not None:
                local = cluster.anycast.catchment_map(0.0).signature
                if local != spec.catchment_sig:
                    raise RuntimeError(
                        f"worker {worker_id} catchment signature {local} "
                        f"!= snapshot {spec.catchment_sig}"
                    )
            registry.gauge(
                "serve_fleet_worker_up",
                "Fleet workers serving (1 per live worker)",
                ("worker",),
            ).labels(f"w{worker_id}").set(1.0)
            await cluster.start(
                host=host, dns_port=dns_port, http_port=http_port,
                resolver_port=resolver_port,
                admin_port=None, reuse_port=True,
            )
            try:
                endpoints = {
                    "dns": cluster.dns.endpoint,
                    "http": cluster.http.endpoint,
                }
                if cluster.resolver_front is not None:
                    endpoints["resolver"] = cluster.resolver_front.endpoint
                conn.send(("ready", worker_id, endpoints))
                while not stop_event.is_set():
                    await asyncio.sleep(interval)
                    conn.send(("metrics", worker_id, registry.snapshot()))
            finally:
                await cluster.stop()
                try:
                    conn.send(("bye", worker_id, registry.snapshot()))
                except (BrokenPipeError, OSError):
                    pass


# ----------------------------------------------------------------------
# parent
# ----------------------------------------------------------------------


class ServeFleet:
    """Boots, monitors and tears down N reuseport serve workers."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        if not fleet_supported():
            raise RuntimeError(
                "this platform lacks SO_REUSEPORT or fork; "
                "run the single-loop ServeCluster instead"
            )
        self.config = config if config is not None else FleetConfig()
        self.spec: Optional[FleetSpec] = None
        self._processes: list = []
        self._conns: dict = {}
        self._snapshots: dict[int, dict] = {}
        self._errors: dict[int, str] = {}
        self._lock = threading.Lock()
        self._reader: Optional[threading.Thread] = None
        self._stop_event = None
        self._host: Optional[str] = None
        self._dns_port: Optional[int] = None
        self._http_port: Optional[int] = None
        self._resolver_port: Optional[int] = None
        self._snapshot_path: Optional[str] = None
        self._tempdir: Optional[str] = None

    # -- endpoints -----------------------------------------------------

    @property
    def dns_endpoint(self) -> tuple[str, int]:
        if self._host is None or self._dns_port is None:
            raise RuntimeError("fleet is not started")
        return self._host, self._dns_port

    @property
    def http_endpoint(self) -> tuple[str, int]:
        if self._host is None or self._http_port is None:
            raise RuntimeError("fleet is not started")
        return self._host, self._http_port

    @property
    def resolver_endpoint(self) -> Optional[tuple[str, int]]:
        """The shared public-resolver front port, or None without one."""
        if self._host is None:
            raise RuntimeError("fleet is not started")
        if self._resolver_port is None:
            return None
        return self._host, self._resolver_port

    @property
    def workers(self) -> int:
        return self.config.workers

    # -- lifecycle -----------------------------------------------------

    def _build_spec(self) -> FleetSpec:
        cluster_config = (
            self.config.cluster if self.config.cluster is not None
            else ClusterConfig()
        )
        directory = ClientDirectory.from_adoption()
        estate = build_serve_estate(cluster_config)
        catchment_sig = ""
        if self.config.steering != "dns":
            from .steering import build_serve_plane

            plane = build_serve_plane(
                estate, directory, schedule=self.config.faults
            )
            catchment_sig = plane.catchment_map(0.0).signature
        return FleetSpec(
            cluster=cluster_config,
            vantages=directory.vantages,
            weights=directory.weights(),
            steering=self.config.steering,
            hybrid_dns_share=self.config.hybrid_dns_share,
            faults=self.config.faults,
            failover=self.config.failover,
            pin_clock=self.config.pin_clock,
            estate_sig=estate_signature(estate),
            catchment_sig=catchment_sig,
        )

    def start(self, host: str = "127.0.0.1", dns_port: int = 0,
              http_port: int = 0) -> "ServeFleet":
        """Write the snapshot, reserve ports, fork and await the fleet."""
        if self._processes:
            raise RuntimeError("fleet already started")
        if self.config.snapshot_dir is not None:
            os.makedirs(self.config.snapshot_dir, exist_ok=True)
            base = self.config.snapshot_dir
        else:
            self._tempdir = tempfile.mkdtemp(prefix="rsnap-")
            base = self._tempdir
        self.spec = self._build_spec()
        self._snapshot_path = write_snapshot(
            os.path.join(base, "fleet.rsnap"), self.spec
        )
        bound_dns, dns_holders = reserve_shared_port(host, dns_port, udp=True)
        try:
            bound_http, http_holders = reserve_shared_port(
                host, http_port, udp=False
            )
        except OSError:
            for sock in dns_holders:
                sock.close()
            raise
        # A public resolver population needs one more shared UDP port:
        # the caching front every worker joins with SO_REUSEPORT.
        needs_front = self.spec.cluster.resolver_population != "isp"
        resolver_holders: list[socket.socket] = []
        bound_resolver = 0
        if needs_front:
            try:
                bound_resolver, resolver_holders = reserve_shared_port(
                    host, 0, udp=True
                )
            except OSError:
                for sock in dns_holders + http_holders:
                    sock.close()
                raise
        holders = dns_holders + http_holders + resolver_holders
        holder_fds = tuple(sock.fileno() for sock in holders)
        ctx = multiprocessing.get_context("fork")
        self._stop_event = ctx.Event()
        try:
            for worker_id in range(self.config.workers):
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        worker_id, self._snapshot_path, host, bound_dns,
                        bound_http, bound_resolver, send_conn,
                        self._stop_event,
                        self.config.metrics_interval, holder_fds,
                    ),
                    daemon=True,
                )
                process.start()
                send_conn.close()
                self._processes.append(process)
                self._conns[recv_conn] = worker_id
            self._await_ready()
        except Exception:
            for sock in holders:
                sock.close()
            self._teardown(force=True)
            raise
        # Every worker is bound: release the placeholders so the
        # workers alone make up the reuseport group.
        for sock in holders:
            sock.close()
        self._host = host
        self._dns_port = bound_dns
        self._http_port = bound_http
        self._resolver_port = bound_resolver if needs_front else None
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()
        return self

    def _await_ready(self) -> None:
        pending = set(self._conns)
        deadline = time.monotonic() + _READY_TIMEOUT
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"{len(pending)} fleet worker(s) not ready after "
                    f"{_READY_TIMEOUT:.0f}s"
                )
            for conn in mp_connection.wait(list(pending), timeout=remaining):
                worker_id = self._conns[conn]
                try:
                    message = conn.recv()
                except EOFError:
                    raise RuntimeError(
                        f"fleet worker {worker_id} died during boot"
                    ) from None
                kind = message[0]
                if kind == "ready":
                    pending.discard(conn)
                elif kind == "error":
                    raise RuntimeError(
                        f"fleet worker {worker_id} failed to boot:\n"
                        f"{message[2]}"
                    )

    def _drain(self) -> None:
        """Reader thread: keep the latest registry snapshot per worker."""
        conns = dict(self._conns)
        while conns:
            ready = mp_connection.wait(list(conns), timeout=0.2)
            for conn in ready:
                worker_id = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    del conns[conn]
                    continue
                kind = message[0]
                if kind in ("metrics", "bye"):
                    with self._lock:
                        self._snapshots[worker_id] = message[2]
                elif kind == "error":
                    with self._lock:
                        self._errors[worker_id] = message[2]

    def merged_registry(self) -> MetricsRegistry:
        """Fleet-wide metrics: the latest snapshot of every worker, merged."""
        with self._lock:
            snapshots = list(self._snapshots.values())
        return merge_registry_snapshots(snapshots)

    def worker_errors(self) -> dict[int, str]:
        with self._lock:
            return dict(self._errors)

    def admin_registry_provider(self):
        """The callable an :class:`~repro.serve.admin.AdminServer` scrapes."""
        return self.merged_registry

    def _teardown(self, force: bool = False) -> None:
        if self._stop_event is not None:
            self._stop_event.set()
        for process in self._processes:
            process.join(0.0 if force else _STOP_TIMEOUT)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(5.0)
        if self._reader is not None:
            self._reader.join(timeout=5.0)
            self._reader = None
        for conn in self._conns:
            # A final drain: the reader thread may have exited before
            # the "bye" snapshots landed.
            try:
                while conn.poll(0):
                    message = conn.recv()
                    if message[0] in ("metrics", "bye"):
                        self._snapshots[self._conns[conn]] = message[2]
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._processes = []
        self._conns = {}
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
            self._tempdir = None
        self._host = self._dns_port = self._http_port = None
        self._resolver_port = None

    def stop(self) -> None:
        """Signal, join and reap every worker; keeps final snapshots."""
        if not self._processes:
            return
        self._teardown()

    def __enter__(self) -> "ServeFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# loadgen fleet
# ----------------------------------------------------------------------


def _loadgen_main(conn, dns_endpoint, http_endpoint, config: LoadConfig,
                  vantages, weights, resolver_endpoint=None) -> None:
    """One forked generator process: run a LoadGenerator, ship the report."""
    directory = (
        ClientDirectory(vantages, weights)
        if vantages else ClientDirectory.from_adoption()
    )

    async def _run() -> LoadReport:
        generator = LoadGenerator(
            dns_endpoint=dns_endpoint,
            http_endpoint=http_endpoint,
            directory=directory,
            config=config,
            metrics=MetricsRegistry(),
            tracer=NULL_TRACER,
            resolver_endpoint=resolver_endpoint,
        )
        return await generator.run()

    try:
        conn.send(("report", asyncio.run(_run())))
    except KeyboardInterrupt:
        # Terminal Ctrl-C reaches the whole process group; the parent
        # reports the abort, workers just leave quietly.
        os._exit(130)
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
        os._exit(1)
    finally:
        try:
            conn.close()
        except OSError:
            pass


def run_loadgen_fleet(
    dns_endpoint: tuple[str, int],
    http_endpoint: tuple[str, int],
    config: LoadConfig,
    processes: int,
    directory: Optional[ClientDirectory] = None,
    timeout: float = 600.0,
    resolver_endpoint: Optional[tuple[str, int]] = None,
) -> LoadReport:
    """Drive ``processes`` generator processes and merge their reports.

    Open-loop configs (``config.arrival`` set) are sliced by striding
    the shared schedule — process ``k`` replays arrivals ``k, k+P,
    ...`` at their scheduled times, so the union offered to the servers
    is exactly the single-process schedule.  Closed-loop configs split
    the request count into disjoint sequence ranges instead.
    """
    if processes <= 0:
        raise ValueError("processes must be positive")
    shared = directory if directory is not None else ClientDirectory.from_adoption()
    vantages, weights = shared.vantages, shared.weights()
    slices: list[LoadConfig] = []
    if config.arrival is not None:
        for index in range(processes):
            slices.append(
                replace(config, arrival_offset=index, arrival_stride=processes)
            )
    else:
        base, extra = divmod(config.requests, processes)
        start = 0
        for index in range(processes):
            count = base + (1 if index < extra else 0)
            if count == 0:
                continue
            slices.append(replace(config, requests=count, seq_start=start))
            start += count
    ctx = multiprocessing.get_context("fork")
    procs = []
    conns = []
    for piece in slices:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_loadgen_main,
            args=(send_conn, dns_endpoint, http_endpoint, piece,
                  vantages, weights, resolver_endpoint),
            daemon=True,
        )
        process.start()
        send_conn.close()
        procs.append(process)
        conns.append(recv_conn)
    reports: list[LoadReport] = []
    failures: list[str] = []
    deadline = time.monotonic() + timeout
    try:
        for conn in conns:
            remaining = max(0.1, deadline - time.monotonic())
            if not conn.poll(remaining):
                failures.append("generator process timed out")
                continue
            try:
                message = conn.recv()
            except EOFError:
                failures.append("generator process died without a report")
                continue
            if message[0] == "report":
                reports.append(message[1])
            else:
                failures.append(message[1])
    finally:
        for process in procs:
            process.join(5.0)
        for process in procs:
            if process.is_alive():
                process.terminate()
                process.join(5.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
    if failures and not reports:
        raise RuntimeError(f"every generator process failed: {failures[0]}")
    return merge_load_reports(reports)


# ----------------------------------------------------------------------
# scaled selftest
# ----------------------------------------------------------------------

_SPEEDUP_MIN_CPUS = 4


@dataclass
class FleetSelftestReport:
    """Everything the scaled selftest measured and checked."""

    report: LoadReport
    reference: LoadReport
    registry: MetricsRegistry
    workers: int
    processes: int
    cpus: int
    speedup: float
    equivalence_failures: tuple[str, ...] = field(default_factory=tuple)
    worker_errors: dict = field(default_factory=dict)

    def checks(self, qps_floor: float = 1000.0,
               speedup_target: float = 5.0) -> list[tuple[str, bool]]:
        family = self.registry.get("serve_fleet_worker_up")
        workers_up = len(list(family.children())) if family is not None else 0
        results = [
            ("all requests ok",
             self.report.errors == 0 and self.report.ok == self.report.requests),
            (f"fleet dns >= {qps_floor:.0f} qps sustained",
             self.report.dns_qps >= qps_floor),
            ("fleet answers byte-equivalent to single loop",
             not self.equivalence_failures),
            (f"metrics merged from {self.workers} workers",
             workers_up == self.workers and not self.worker_errors),
            ("latency percentiles non-zero",
             self.report.dns_p50_ms > 0.0 and self.report.http_p50_ms > 0.0),
        ]
        speedup_label = (
            f"fleet >= {speedup_target:.0f}x single-loop qps "
            f"(enforced on {_SPEEDUP_MIN_CPUS}+ cpus; this host: {self.cpus})"
        )
        if self.cpus >= _SPEEDUP_MIN_CPUS:
            results.append((speedup_label, self.speedup >= speedup_target))
        else:
            # Too few cores to demonstrate parallel speedup honestly;
            # record the measured ratio instead of asserting it.
            results.append((speedup_label + f" [recorded {self.speedup:.2f}x]",
                            True))
        return results

    def passed(self, qps_floor: float = 1000.0,
               speedup_target: float = 5.0) -> bool:
        return all(ok for _, ok in self.checks(qps_floor, speedup_target))


async def _verify_fleet_equivalence(
    fleet: ServeFleet,
    estate,
    directory: ClientDirectory,
    samples: int = 16,
) -> list[str]:
    """Wire answers from the fleet vs the in-memory resolver, plus the
    per-connection cache behaviour a single loop would show."""
    failures: list[str] = []
    resolver = estate.resolver(cache=False)
    pinned_now = fleet.spec.pin_clock if fleet.spec is not None else 0.0
    if pinned_now is None:
        return ["equivalence requires a pinned fleet clock"]
    dns_client = await AsyncDnsClient.open(
        *fleet.dns_endpoint, source_prefix_len=32
    )
    try:
        for sequence in range(samples):
            sampled = directory.sample(sequence)
            wire = await dns_client.resolve(NAMES.entry_point, sampled.address)
            memory = resolver.resolve(
                NAMES.entry_point, sampled.context(pinned_now)
            )
            if wire.chain_names != memory.chain_names:
                failures.append(
                    f"seq {sequence}: chain {wire.chain_names} != "
                    f"{memory.chain_names}"
                )
            elif tuple(wire.addresses) != tuple(memory.addresses):
                failures.append(
                    f"seq {sequence}: addresses {wire.addresses} != "
                    f"{memory.addresses}"
                )
    finally:
        dns_client.close()
    # Cache behaviour: a keep-alive connection is pinned to one worker,
    # so a repeated fetch must warm exactly like the single-loop edge —
    # miss first, hit after.
    http = PooledHttpClient(*fleet.http_endpoint, pool_size=1)
    try:
        vip = estate.apple.sites[0].vip_addresses[0]
        client_addr = directory.sample(0).address
        path = "/content/fleet-selftest-cachecheck.ipsw"
        verdicts = []
        for _ in range(2):
            _status, headers, _length = await http.get(
                path, host=NAMES.entry_point, vip=vip, client=client_addr,
                range_bytes=(0, 1023),
            )
            verdicts.append((headers.get("X-Cache") or "").split(",")[0].strip())
        if verdicts[0].startswith("hit"):
            failures.append(f"first fetch unexpectedly warm: {verdicts[0]!r}")
        if not verdicts[1].startswith("hit"):
            failures.append(f"repeat fetch not a cache hit: {verdicts[1]!r}")
    finally:
        await http.close()
    return failures


def fleet_selftest(
    workers: int = 4,
    requests: int = 5000,
    concurrency: int = 64,
    processes: Optional[int] = None,
    cluster_config: Optional[ClusterConfig] = None,
    steering: str = "dns",
    duration: Optional[float] = None,
    arrival: Optional[str] = None,
    reference_requests: Optional[int] = None,
) -> FleetSelftestReport:
    """Boot a fleet, drive a loadgen fleet, verify, measure speedup.

    The single-loop reference run uses the same cluster config, so the
    speedup ratio compares like with like.  With ``arrival`` set the
    load is open-loop (the flash-crowd replay); otherwise the classic
    closed loop, split across generator processes.
    """
    processes = processes if processes is not None else max(2, workers)
    ref_count = (
        reference_requests if reference_requests is not None
        else max(500, requests // 4)
    )
    reference, _ = selftest(
        requests=ref_count, concurrency=concurrency,
        cluster_config=cluster_config,
    )
    config = FleetConfig(
        workers=workers, cluster=cluster_config, steering=steering,
        pin_clock=0.0,
    )
    fleet = ServeFleet(config)
    fleet.start()
    try:
        effective_cluster = (
            fleet.spec.cluster if fleet.spec is not None
            else (cluster_config or ClusterConfig())
        )
        load = LoadConfig(
            requests=requests, concurrency=concurrency,
            public_resolver_share=effective_cluster.loadgen_resolver_share,
        )
        if arrival is not None:
            if duration is None:
                duration = max(2.0, requests / max(reference.dns_qps, 500.0))
            load = replace(
                load,
                arrival=ArrivalSchedule.named(arrival, requests, duration),
            )
        directory = fleet.spec.directory() if fleet.spec is not None else None
        report = run_loadgen_fleet(
            fleet.dns_endpoint, fleet.http_endpoint, load, processes,
            directory=directory,
            resolver_endpoint=fleet.resolver_endpoint,
        )
        estate = build_serve_estate(
            fleet.spec.cluster if fleet.spec is not None else cluster_config
        )
        equivalence = asyncio.run(
            _verify_fleet_equivalence(fleet, estate, directory)
        )
        worker_errors = fleet.worker_errors()
    finally:
        fleet.stop()
    registry = fleet.merged_registry()
    speedup = (
        report.dns_qps / reference.dns_qps if reference.dns_qps > 0 else 0.0
    )
    return FleetSelftestReport(
        report=report,
        reference=reference,
        registry=registry,
        workers=workers,
        processes=processes,
        cpus=os.cpu_count() or 1,
        speedup=speedup,
        equivalence_failures=tuple(equivalence),
        worker_errors=worker_errors,
    )


def render_fleet_selftest(result: FleetSelftestReport,
                          qps_floor: float = 1000.0,
                          speedup_target: float = 5.0) -> str:
    """Terminal verdict for ``repro selftest --workers N``."""
    checks = result.checks(qps_floor, speedup_target)
    lines = [
        result.report.render(),
        "",
        "fleet",
        "-----",
        f"serve workers        {result.workers}  "
        f"(loadgen processes {result.processes}, cpus {result.cpus})",
        f"single-loop ref      {result.reference.dns_qps:,.0f} qps "
        f"({result.reference.requests} requests)",
        f"fleet speedup        {result.speedup:.2f}x",
        "",
    ]
    for label, passed in checks:
        lines.append(f"{'PASS' if passed else 'FAIL'}  {label}")
    for failure in result.equivalence_failures[:3]:
        lines.append(f"equivalence: {failure}")
    lines.append("")
    lines.append(
        "fleet selftest "
        + ("PASSED" if all(p for _, p in checks) else "FAILED")
    )
    return "\n".join(lines)
