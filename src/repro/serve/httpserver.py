"""Live HTTP edge: the vip → edge-bx → edge-lx hierarchy behind a socket.

:class:`AsyncHttpEdge` is an asyncio HTTP/1.1 server fronting the
modelled cache estates.  A client resolves a vip address through the
live DNS layer and then downloads from it; on loopback all vips share
one listener, so the resolved address travels in the ``X-Vip`` request
header (the stand-in for connecting to that address directly).  Requests
are routed through :meth:`repro.apple.deployment.AppleCdn.serve` for
Apple vips — producing the exact ``Via``/``X-Cache`` chains the §3.3
header inference parses — and through the flat third-party delivery
model for Akamai/Limelight/Level3 addresses.

Bodies stay synthetic (the model never materialises a 2.8 GB image) but
are real on the wire: a ``Range`` request gets its slice as zero bytes
with a correct ``Content-Range``, which is how the load generator
replays ranged iOS-image downloads without moving gigabytes.
"""

from __future__ import annotations

import asyncio
import re
import time
from typing import Callable, Optional

from ..apple.mapping import MetaCdnEstate
from ..http.headers import CacheStatus
from ..http.messages import Headers, HttpRequest, HttpResponse
from ..net.ipv4 import IPv4Address
from ..obs import TraceContext, get_registry, get_tracer, use_context

__all__ = ["AsyncHttpEdge", "estate_router"]

_REQUEST_LINE = re.compile(r"^([A-Z]+) (\S+) HTTP/(1\.[01])$")
_RANGE = re.compile(r"^bytes=(\d+)-(\d*)$")
_MAX_HEADER_BYTES = 16384
_READ_TIMEOUT = 30.0

# Router: (vip, model request, object size) -> model response, or None
# when no fleet owns the vip.
Router = Callable[[IPv4Address, HttpRequest, int], Optional[HttpResponse]]


def estate_router(estate: MetaCdnEstate) -> Router:
    """Route vips across every delivery fleet of a Meta-CDN estate."""

    def route(vip: IPv4Address, request: HttpRequest, size: int) -> Optional[HttpResponse]:
        if estate.apple.site_for(vip) is not None:
            return estate.apple.serve(vip, request, size).response
        for deployment in estate.deployments.values():
            if deployment.server_at(vip) is not None:
                return deployment.serve(vip, request, size)
        return None

    return route


class AsyncHttpEdge:
    """An asyncio HTTP/1.1 cache-edge server over a model router.

    ``object_size`` is the modelled entity size for every object (the
    cache layer sees and accounts this size; the wire only carries the
    requested range).  Keep-alive is honoured so a pooled load
    generator pays connection setup once per worker, not per request.
    """

    def __init__(
        self,
        router: Router,
        object_size: int = 262_144,
        metrics=None,
        faults=None,
        operator_for: Optional[Callable[[IPv4Address], Optional[str]]] = None,
        tracer=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if object_size <= 0:
            raise ValueError("object_size must be positive")
        self.router = router
        self.object_size = object_size
        # Fault plane (repro.faults.FaultInjector); ``operator_for``
        # maps a vip to its CDN operator so whole-CDN windows apply.
        self._faults = faults
        self._operator_for = operator_for
        # Spans adopt the request's ``Traceparent`` header, parenting
        # edge-side work under the client's fetch span; ``clock``
        # supplies span timestamps (defaults to seconds since start).
        self._tracer = tracer if tracer is not None else get_tracer()
        self._clock = clock
        self._server: Optional[asyncio.base_events.Server] = None
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._closing = False

        registry = metrics if metrics is not None else get_registry()
        self._m_requests = registry.counter(
            "serve_http_requests_total",
            "HTTP requests handled by the live edge, by status",
            ("status",),
        )
        self._m_bytes = registry.counter(
            "serve_http_body_bytes_total",
            "Body bytes written to clients",
        )
        self._m_connections = registry.gauge(
            "serve_http_open_connections",
            "Currently open client connections",
        )
        self._m_handle = registry.histogram(
            "serve_http_handle_seconds",
            "Server-side handling time per HTTP request",
            buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                     0.01, 0.025, 0.05, 0.1, 0.25),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def endpoint(self) -> tuple[str, int]:
        """(host, port) once started."""
        if self._host is None or self._port is None:
            raise RuntimeError("server is not started")
        return self._host, self._port

    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    reuse_port: bool = False) -> tuple[str, int]:
        """Start listening; returns the bound endpoint.

        ``reuse_port`` binds ``SO_REUSEPORT`` so a fleet of edge
        processes shares one port, the kernel spreading accepts across
        the group while each accepted connection stays pinned to its
        worker (keep-alive requests hit the same process's cache).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._clock is None:
            origin = time.monotonic()
            self._clock = lambda: time.monotonic() - origin
        extra = {"reuse_port": True} if reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port, **extra
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self.endpoint

    async def stop(self, grace: float = 2.0) -> None:
        """Stop accepting and drain connections gracefully.

        Idle keep-alive connections are closed immediately (the client
        reads a clean EOF between responses).  Connections mid-request
        get to finish: their response goes out with ``Connection:
        close`` and the handler hangs up afterwards — no resets for
        well-behaved clients.  Stragglers are cancelled after
        ``grace`` seconds.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._closing = True
        try:
            for writer in list(self._writers):
                if writer not in self._busy:
                    writer.close()
            if self._conn_tasks:
                _done, pending = await asyncio.wait(
                    list(self._conn_tasks), timeout=grace
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
        finally:
            self._closing = False
        self._host = self._port = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        self._m_connections.inc()
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            self._m_connections.dec()
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - teardown race
                pass

    async def _read_head(self, reader: asyncio.StreamReader) -> Optional[list[str]]:
        """The request line + header lines, or None on EOF/overflow."""
        lines: list[str] = []
        total = 0
        while True:
            chunk = await asyncio.wait_for(reader.readline(), timeout=_READ_TIMEOUT)
            if not chunk:
                return None
            total += len(chunk)
            if total > _MAX_HEADER_BYTES:
                return None
            line = chunk.decode("latin-1").rstrip("\r\n")
            if line == "":
                if lines:  # end of head (leading blank lines are ignored)
                    return lines
                continue
            lines.append(line)

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        lines = await self._read_head(reader)
        if not lines:
            return False
        self._busy.add(writer)
        try:
            started = time.perf_counter()
            match = _REQUEST_LINE.match(lines[0].strip())
            if match is None:
                await self._send_error(writer, 400, "malformed request line")
                self._m_handle.observe(time.perf_counter() - started)
                return False
            method, target, version = match.groups()
            headers = Headers()
            for line in lines[1:]:
                name, sep, value = line.partition(":")
                if sep:
                    headers.add(name.strip(), value.strip())

            keep_alive = version == "1.1"
            connection = (headers.get("Connection") or "").lower()
            if "close" in connection:
                keep_alive = False
            elif "keep-alive" in connection:
                keep_alive = True

            context = TraceContext.from_traceparent(headers.get("Traceparent"))
            if context is None or not self._tracer.enabled:
                return await self._respond(
                    writer, method, target, headers, keep_alive, started, None
                )
            # Adopt the client's trace for the duration of the exchange:
            # the span joins its chain, and unsampled traces collapse to
            # a counted no-op.
            with use_context(context):
                ts = self._clock() if self._clock is not None else 0.0
                with self._tracer.span(
                    "serve.http.request", ts=ts, path=target
                ) as span:
                    return await self._respond(
                        writer, method, target, headers, keep_alive, started, span
                    )
        finally:
            self._busy.discard(writer)

    async def _respond(self, writer: asyncio.StreamWriter, method: str,
                       target: str, headers: Headers, keep_alive: bool,
                       started: float, span) -> bool:
        status, out_headers, body, delay = self._serve(method, target, headers)
        if delay > 0.0:
            await asyncio.sleep(delay)
        # A teardown begun while this request was in flight must end
        # with an honest Connection: close, never a reset.
        keep = keep_alive and status < 500 and not self._closing
        out_headers.set("Connection", "keep-alive" if keep else "close")
        await self._send(writer, status, out_headers, body,
                         include_body=(method != "HEAD"))
        self._m_requests.labels(str(status)).inc()
        self._m_handle.observe(time.perf_counter() - started)
        if span is not None:
            span.annotate(status=status, bytes=len(body))
            cache = out_headers.get("X-Cache")
            if cache:
                # Client-most verdict first; "hit"/"miss"/"origin" is
                # the chain's terminal classification.
                span.annotate(cache=cache)
                try:
                    verdict = CacheStatus.parse(cache.split(",")[0])
                except ValueError:
                    pass
                else:
                    span.annotate(cache_hit=verdict.is_hit)
        return keep

    def _serve(self, method: str, target: str,
               headers: Headers) -> tuple[int, Headers, bytes, float]:
        if method not in ("GET", "HEAD"):
            return 405, Headers({"Allow": "GET, HEAD"}), b"method not allowed\n", 0.0
        vip_text = headers.get("X-Vip")
        host = (headers.get("Host") or "").split(":")[0].lower()
        if not vip_text:
            return 400, Headers(), b"missing X-Vip routing header\n", 0.0
        if not host:
            return 400, Headers(), b"missing Host header\n", 0.0
        try:
            vip = IPv4Address.parse(vip_text)
        except ValueError:
            return 400, Headers(), b"unparseable X-Vip address\n", 0.0
        path = target.split("?")[0] or "/"

        delay = 0.0
        if self._faults is not None:
            operator = self._operator_for(vip) if self._operator_for else None
            if self._faults.vip_down(vip_text, operator):
                return 503, Headers(), b"vip offline (injected fault)\n", 0.0
            if operator is not None and self._faults.cdn_down(
                operator, key=(vip_text, path)
            ):
                return 503, Headers(), b"delivery network down (injected fault)\n", 0.0
            delay = self._faults.http_delay(vip_text, operator)
        model_request = HttpRequest(
            method="GET",
            host=host,
            path=path,
            headers=Headers({"X-Client": headers.get("X-Client", "")}),
        )
        model_response = self.router(vip, model_request, self.object_size)
        if model_response is None:
            return 404, Headers(), b"no delivery server at that vip\n", 0.0

        entity_size = model_response.body_size
        range_header = headers.get("Range")
        status = model_response.status
        out = model_response.headers.copy()
        if range_header is not None:
            parsed = _RANGE.match(range_header.strip())
            if parsed is None:
                return (416, Headers({"Content-Range": f"bytes */{entity_size}"}),
                        b"", delay)
            first = int(parsed.group(1))
            last = int(parsed.group(2)) if parsed.group(2) else entity_size - 1
            last = min(last, entity_size - 1)
            if first >= entity_size or first > last:
                return (416, Headers({"Content-Range": f"bytes */{entity_size}"}),
                        b"", delay)
            body = bytes(last - first + 1)
            status = 206
            out.set("Content-Range", f"bytes {first}-{last}/{entity_size}")
        else:
            body = bytes(entity_size)
        out.set("X-Body-Size", str(entity_size))
        return status, out, body, delay

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    headers: Headers, body: bytes, include_body: bool = True) -> None:
        reason = {200: "OK", 206: "Partial Content", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  416: "Range Not Satisfiable", 500: "Internal Server Error",
                  503: "Service Unavailable"}
        lines = [f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}"]
        for name, value in headers:
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(body)}")
        lines.append("Server: repro-serve/1.0")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        if include_body and body:
            writer.write(body)
            self._m_bytes.inc(len(body))
        await writer.drain()

    async def _send_error(self, writer: asyncio.StreamWriter, status: int,
                          text: str) -> None:
        await self._send(writer, status, Headers(), (text + "\n").encode())
        self._m_requests.labels(str(status)).inc()
