"""Closed-loop load generation against the live serving layer.

The measured event is a flash crowd: millions of devices resolving
``appldnld.apple.com`` and pulling ranged slices of a multi-gigabyte
image.  :class:`LoadGenerator` replays that shape against a live
:mod:`repro.serve` cluster — each worker acts as one device after
another: sample a client from the vantage directory (regional mix from
the adoption model), walk the full Figure 2 CNAME chain over UDP
(falling back to TCP on truncation), then download a range from the
resolved vip over a pooled keep-alive connection.

The loop is *closed*: a worker issues its next request only after the
previous one completes, and a bounded semaphore caps total in-flight
work, so the generator exerts backpressure instead of flooding the
event loop.  Timeouts and retries are per-query; a request that fails
after retries is counted and sampled, never raised out of the run.
"""

from __future__ import annotations

import asyncio
import itertools
import struct
import time
from dataclasses import dataclass, field
from typing import Optional

from ..dns.query import Question, RCode
from ..dns.records import RecordType, ResourceRecord
from ..dns.wire import ClientSubnet, WireError, WireMessage, decode_message, encode_message
from ..http.messages import Headers
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..obs import (
    TraceContext,
    current_context,
    get_registry,
    get_tracer,
    new_trace_id,
    sample_trace,
    use_context,
)
from ..obs.registry import HistogramChild
from ..dns.policies import stable_fraction
from ..workload.arrival import ArrivalSchedule
from .clients import ClientDirectory
from .resilience import BackoffPolicy, CircuitBreaker, HedgePolicy

__all__ = [
    "DnsClientError",
    "WireResolution",
    "AsyncDnsClient",
    "PooledHttpClient",
    "LoadConfig",
    "LoadReport",
    "LoadGenerator",
    "merge_load_reports",
]

_MAX_CHAIN = 16
_LATENCY_BUCKETS = (
    0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5,
)


class DnsClientError(RuntimeError):
    """A query failed after all retries (timeout, SERVFAIL, bad chain)."""


@dataclass(frozen=True)
class WireResolution:
    """A CNAME chase completed over the wire.

    Mirrors the read API of :class:`repro.dns.resolver.Resolution` so
    equivalence tests can compare the two hop for hop.
    """

    question_name: str
    steps: tuple[tuple[ResourceRecord, ...], ...]

    @property
    def records(self) -> tuple[ResourceRecord, ...]:
        """Every answer record, in chase order."""
        return tuple(record for step in self.steps for record in step)

    @property
    def cname_chain(self) -> tuple[ResourceRecord, ...]:
        """The CNAME records followed, in order."""
        return tuple(r for r in self.records if r.rtype is RecordType.CNAME)

    @property
    def addresses(self) -> tuple[IPv4Address, ...]:
        """The final A record addresses."""
        return tuple(
            r.address for r in self.records if r.rtype is RecordType.A
        )

    @property
    def chain_names(self) -> tuple[str, ...]:
        """All names visited, starting with the question name."""
        names = [self.question_name]
        for record in self.cname_chain:
            names.append(record.target)
        return tuple(names)

    @property
    def final_name(self) -> str:
        """The terminal name of the chain."""
        return self.chain_names[-1]


class _DnsClientProtocol(asyncio.DatagramProtocol):
    """Matches responses to waiters by DNS message id."""

    def __init__(self) -> None:
        self.waiters: dict[int, asyncio.Future] = {}
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:  # pragma: no cover - trivial
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        if len(data) < 2:
            return
        (message_id,) = struct.unpack("!H", data[:2])
        waiter = self.waiters.pop(message_id, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(data)

    def error_received(self, exc) -> None:  # pragma: no cover - platform dependent
        pass


class AsyncDnsClient:
    """A stub resolver speaking RFC 1035 over UDP with TCP fallback.

    One client instance serves any number of concurrent resolutions:
    in-flight queries are matched by message id.  Each query carries an
    EDNS Client Subnet option for the acting client so the server's
    geo policies see who is asking.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 2.0,
        retries: int = 2,
        source_prefix_len: int = 24,
        metrics=None,
        backoff: Optional[BackoffPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
        tracer=None,
    ) -> None:
        if not 0 < source_prefix_len <= 32:
            raise ValueError("source_prefix_len must be in (0, 32]")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = retries
        self._source_prefix_len = source_prefix_len
        # Resilience: exponential backoff between retry attempts (None =
        # the legacy immediate retry) and hedged GSLB lookups.
        self._backoff = backoff
        self._hedge = hedge
        # Queries are stamped with the ambient trace context (EDNS0
        # option); the tracer supplies the current span id as the
        # remote parent the server's span attaches under.
        self._tracer = tracer if tracer is not None else get_tracer()
        self._protocol: Optional[_DnsClientProtocol] = None
        self._ids = itertools.count(1)
        # Plain mirrors of the registry counters so reports work under
        # the null registry too.
        self.queries_sent = 0
        self.timeouts = 0
        self.tcp_fallbacks = 0
        self.hedged_queries = 0
        self.hedge_wins = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_queries = registry.counter(
            "loadgen_dns_queries_total", "Wire DNS queries issued by the client"
        )
        self._m_timeouts = registry.counter(
            "loadgen_dns_timeouts_total", "Queries that timed out (incl. retried)"
        )
        self._m_tcp = registry.counter(
            "loadgen_dns_tcp_fallbacks_total",
            "Truncated UDP answers retried over TCP",
        )
        self._m_hedged = registry.counter(
            "loadgen_dns_hedged_total",
            "GSLB lookups that launched a hedge to the second name",
        )
        self._m_hedge_wins = registry.counter(
            "loadgen_dns_hedge_wins_total",
            "Hedged lookups where the second name answered first",
        )

    @classmethod
    async def open(cls, host: str, port: int, **kwargs) -> "AsyncDnsClient":
        """Create and connect a client to one server endpoint."""
        client = cls(host, port, **kwargs)
        loop = asyncio.get_running_loop()
        _transport, protocol = await loop.create_datagram_endpoint(
            _DnsClientProtocol, remote_addr=(host, port)
        )
        client._protocol = protocol
        return client

    def close(self) -> None:
        """Close the UDP endpoint and fail any in-flight waiters."""
        if self._protocol is not None:
            # Waiters still registered belong to tasks that were
            # cancelled (or are about to be): cancel the futures so
            # nothing holds a reference into a dead transport.
            for waiter in list(self._protocol.waiters.values()):
                if not waiter.done():
                    waiter.cancel()
            self._protocol.waiters.clear()
            if self._protocol.transport is not None:
                self._protocol.transport.close()
        self._protocol = None

    def _next_id(self) -> int:
        return next(self._ids) & 0xFFFF or 1

    async def query(self, name: str, client: IPv4Address,
                    rtype: RecordType = RecordType.A) -> WireMessage:
        """One query/response exchange (UDP, TCP on truncation)."""
        if self._protocol is None or self._protocol.transport is None:
            raise DnsClientError("client is not connected")
        ecs = ClientSubnet(IPv4Prefix.containing(client, self._source_prefix_len))
        context = current_context()
        trace = (
            context.child(self._tracer.current_span_id())
            if context is not None else None
        )
        last_error = "no attempt made"
        for _attempt in range(self._retries + 1):
            if _attempt > 0 and self._backoff is not None:
                await asyncio.sleep(self._backoff.delay(_attempt - 1, name))
            message_id = self._next_id()
            payload = encode_message(
                WireMessage(
                    message_id=message_id,
                    questions=[Question(name, rtype)],
                    client_subnet=ecs,
                    trace_context=trace,
                )
            )
            waiter = asyncio.get_running_loop().create_future()
            self._protocol.waiters[message_id] = waiter
            self._protocol.transport.sendto(payload)
            self.queries_sent += 1
            self._m_queries.inc()
            try:
                raw = await asyncio.wait_for(waiter, timeout=self._timeout)
            except asyncio.TimeoutError:
                self.timeouts += 1
                self._m_timeouts.inc()
                last_error = f"timeout after {self._timeout}s"
                continue
            finally:
                # The success path pops the waiter in datagram_received,
                # but a timeout — or the caller being *cancelled* while
                # awaiting (a generator torn down mid-ramp) — must not
                # leave the future registered forever.
                self._protocol.waiters.pop(message_id, None)
            try:
                response = decode_message(raw)
            except WireError as exc:
                last_error = f"undecodable response: {exc}"
                continue
            if response.truncated:
                self.tcp_fallbacks += 1
                self._m_tcp.inc()
                response = await self._query_tcp(payload)
            return response
        raise DnsClientError(f"query for {name!r} failed: {last_error}")

    async def _query_tcp(self, payload: bytes) -> WireMessage:
        """Re-issue one already-encoded query over TCP."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), timeout=self._timeout
        )
        try:
            writer.write(struct.pack("!H", len(payload)) + payload)
            await writer.drain()
            header = await asyncio.wait_for(
                reader.readexactly(2), timeout=self._timeout
            )
            (length,) = struct.unpack("!H", header)
            raw = await asyncio.wait_for(
                reader.readexactly(length), timeout=self._timeout
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
            raise DnsClientError(f"TCP fallback failed: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - teardown race
                pass
        self.queries_sent += 1
        self._m_queries.inc()
        return decode_message(raw)

    async def _query_hedged(self, name: str, alternate: str,
                            client: IPv4Address) -> WireMessage:
        """Race ``name`` against ``alternate`` after the latency budget.

        The primary query runs alone until ``hedge.budget`` seconds
        elapse; past that a second query for the alternate GSLB name
        launches and whichever completes first wins.  The loser is
        cancelled — its in-flight waiter is cleaned up by the timeout
        path, so no message-id leaks.
        """
        assert self._hedge is not None
        primary = asyncio.ensure_future(self.query(name, client))
        try:
            return await asyncio.wait_for(
                asyncio.shield(primary), timeout=self._hedge.budget
            )
        except asyncio.TimeoutError:
            pass
        except asyncio.CancelledError:
            # The *caller* was cancelled mid-budget (fleet teardown).
            # The shield deliberately kept ``primary`` alive — reap it
            # here or it leaks as a forever-pending task.
            primary.cancel()
            await asyncio.gather(primary, return_exceptions=True)
            raise
        except DnsClientError:
            # Primary failed outright within budget: go straight to the
            # alternate name rather than giving up.
            self.hedged_queries += 1
            self._m_hedged.inc()
            self.hedge_wins += 1
            self._m_hedge_wins.inc()
            return await self.query(alternate, client)
        self.hedged_queries += 1
        self._m_hedged.inc()
        fallback = asyncio.ensure_future(self.query(alternate, client))
        pending: set[asyncio.Future] = {primary, fallback}
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                # Prefer the primary when both land in the same wake-up.
                for winner in sorted(done, key=lambda t: t is not primary):
                    if winner.exception() is None:
                        if winner is fallback:
                            self.hedge_wins += 1
                            self._m_hedge_wins.inc()
                        return winner.result()
                if not pending:
                    # Both failed; surface the primary's error.
                    raise primary.exception() or DnsClientError(
                        f"hedged query for {name!r} failed"
                    )
        finally:
            for task in (primary, fallback):
                if not task.done():
                    task.cancel()
            await asyncio.gather(primary, fallback, return_exceptions=True)
        raise DnsClientError(f"hedged query for {name!r} failed")

    async def resolve(self, name: str, client: IPv4Address) -> WireResolution:
        """Chase the CNAME chain from ``name`` down to A records.

        When a :class:`~repro.serve.resilience.HedgePolicy` is set and
        the chase reaches one of the two published GSLB names, the
        lookup is hedged against the other name past the latency budget
        — mirroring a client falling back to ``b.gslb.applimg.com``.
        """
        current = name
        steps: list[tuple[ResourceRecord, ...]] = []
        seen = {current}
        for _hop in range(_MAX_CHAIN):
            alternate = (
                self._hedge.hedge_name(current) if self._hedge is not None else None
            )
            if alternate is not None and alternate not in seen:
                response = await self._query_hedged(current, alternate, client)
            else:
                response = await self.query(current, client)
            if response.rcode not in (RCode.NOERROR, RCode.NXDOMAIN):
                raise DnsClientError(
                    f"{current!r} answered {response.rcode.name}"
                )
            records = tuple(response.answers)
            steps.append(records)
            if any(r.rtype is RecordType.A for r in records):
                return WireResolution(question_name=name, steps=tuple(steps))
            cnames = [r for r in records if r.rtype is RecordType.CNAME]
            if not cnames:
                # Dead end (NODATA / NXDOMAIN): return what we have.
                return WireResolution(question_name=name, steps=tuple(steps))
            current = cnames[0].target
            if current in seen:
                raise DnsClientError(f"CNAME loop at {current!r}")
            seen.add(current)
        raise DnsClientError(f"chain longer than {_MAX_CHAIN} for {name!r}")


class PooledHttpClient:
    """A keep-alive HTTP/1.1 client with a bounded connection pool."""

    def __init__(self, host: str, port: int, pool_size: int = 16,
                 timeout: float = 5.0, tracer=None) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._tracer = tracer if tracer is not None else get_tracer()
        self._pool: asyncio.LifoQueue = asyncio.LifoQueue(maxsize=pool_size)
        self._created = 0
        self._pool_size = pool_size
        # Every writer ever opened, pooled *or checked out*: close()
        # must find connections a cancelled task abandoned mid-request,
        # or their sockets leak past the run.
        self._writers: set[asyncio.StreamWriter] = set()

    async def _acquire(self):
        try:
            return self._pool.get_nowait()
        except asyncio.QueueEmpty:
            pass
        connection = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port),
            timeout=self._timeout,
        )
        self._writers.add(connection[1])
        return connection

    def _release(self, connection) -> None:
        try:
            self._pool.put_nowait(connection)
        except asyncio.QueueFull:
            self._discard(connection)

    def _discard(self, connection) -> None:
        self._writers.discard(connection[1])
        connection[1].close()

    async def get(
        self,
        path: str,
        host: str,
        vip: IPv4Address,
        client: IPv4Address,
        range_bytes: Optional[tuple[int, int]] = None,
    ) -> tuple[int, Headers, int]:
        """One GET; returns (status, headers, body length received)."""
        connection = await self._acquire()
        reader, writer = connection
        request = [
            f"GET {path} HTTP/1.1",
            f"Host: {host}",
            f"X-Vip: {vip}",
            f"X-Client: {client}",
            "Connection: keep-alive",
        ]
        context = current_context()
        if context is not None:
            # Propagate the trace with the fetch span as remote parent.
            carrier = context.child(self._tracer.current_span_id())
            request.append(f"Traceparent: {carrier.to_traceparent()}")
        if range_bytes is not None:
            request.append(f"Range: bytes={range_bytes[0]}-{range_bytes[1]}")
        try:
            writer.write(("\r\n".join(request) + "\r\n\r\n").encode("latin-1"))
            await writer.drain()
            status, headers, body_length = await asyncio.wait_for(
                self._read_response(reader), timeout=self._timeout
            )
        except Exception:
            self._discard(connection)
            raise
        if (headers.get("Connection") or "").lower() == "close":
            self._discard(connection)
        else:
            self._release(connection)
        return status, headers, body_length

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader) -> tuple[int, Headers, int]:
        status_line = (await reader.readline()).decode("latin-1").strip()
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers = Headers()
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, sep, value = line.partition(":")
            if sep:
                headers.add(name.strip(), value.strip())
        length = int(headers.get("Content-Length") or 0)
        received = 0
        while received < length:
            chunk = await reader.read(min(65536, length - received))
            if not chunk:
                raise ConnectionError("body ended early")
            received += len(chunk)
        return status, headers, received

    async def close(self) -> None:
        """Close every connection — pooled or abandoned — and wait.

        Closing without awaiting ``wait_closed`` leaves transports to
        be reaped by GC after the loop is gone, which surfaces as
        ``ResourceWarning: unclosed transport`` at scale.  The wait is
        what makes a fleet teardown FD-clean.
        """
        while True:
            try:
                self._pool.get_nowait()
            except asyncio.QueueEmpty:
                break
        writers, self._writers = list(self._writers), set()
        for writer in writers:
            writer.close()

        async def _wait(writer: asyncio.StreamWriter) -> None:
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - race
                pass

        if writers:
            await asyncio.gather(*(_wait(w) for w in writers))


@dataclass
class LoadConfig:
    """Shape and limits of one load-generation run."""

    requests: int = 5000
    concurrency: int = 64
    max_in_flight: Optional[int] = None  # defaults to concurrency
    entry_point: str = "appldnld.apple.com"
    object_count: int = 32
    range_bytes: int = 65536
    dns_timeout: float = 2.0
    http_timeout: float = 5.0
    retries: int = 2
    source_prefix_len: int = 24
    # Client-side resilience (see repro.serve.resilience).  A cached
    # resolution older than ``resolution_max_age`` (the 15 s selection
    # TTL) is re-resolved instead of reused across HTTP retries.
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    hedge: Optional[HedgePolicy] = field(default_factory=HedgePolicy)
    http_retries: int = 1
    resolution_max_age: float = 15.0
    breaker_failures: int = 5
    breaker_cooldown: float = 1.0
    # Fraction of traces recorded when a tracer is active; the decision
    # is deterministic per trace id, so client and servers agree.
    trace_sample: float = 1.0
    # Open-loop mode: when an arrival schedule is set, requests fire at
    # the schedule's times regardless of completions (``requests`` and
    # ``concurrency`` stop driving the count — they only size the
    # connection pool and the in-flight cap).  ``arrival_offset`` /
    # ``arrival_stride`` select this process's slice of a fleet-shared
    # schedule.  Arrivals past the in-flight cap are *shed* (counted,
    # not queued): an open loop must never convert overload into
    # backpressure, that's the closed loop's behaviour.
    arrival: Optional[ArrivalSchedule] = None
    arrival_offset: int = 0
    arrival_stride: int = 1
    # Closed-loop fleet splitting: this process owns sequence numbers
    # [seq_start, seq_start + requests), so N processes cover disjoint
    # slices of the same deterministic client/path sequence.
    seq_start: int = 0
    # Fraction of clients resolving through a public-resolver front
    # (see repro.serve.resolverfront) instead of the authoritative
    # directly.  Only effective when the generator is handed a
    # resolver endpoint; assignment is stable per sequence number, so
    # fleet slices agree on who is public.
    public_resolver_share: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")
        if not 0.0 <= self.public_resolver_share <= 1.0:
            raise ValueError("public_resolver_share must be in [0, 1]")
        if self.seq_start < 0:
            raise ValueError("seq_start must be non-negative")
        if self.arrival_stride <= 0:
            raise ValueError("arrival_stride must be positive")
        if not 0 <= self.arrival_offset < self.arrival_stride:
            raise ValueError("arrival_offset must be in [0, arrival_stride)")
        if self.requests <= 0:
            raise ValueError("requests must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.object_count <= 0:
            raise ValueError("object_count must be positive")
        if self.range_bytes <= 0:
            raise ValueError("range_bytes must be positive")
        if self.http_retries < 0:
            raise ValueError("http_retries must be non-negative")
        if self.resolution_max_age <= 0:
            raise ValueError("resolution_max_age must be positive")


@dataclass(frozen=True)
class LoadReport:
    """Everything a run learned, percentiles included."""

    requests: int
    ok: int
    errors: int
    elapsed_seconds: float
    dns_queries: int
    dns_timeouts: int
    tcp_fallbacks: int
    body_bytes: int
    dns_p50_ms: float
    dns_p99_ms: float
    http_p50_ms: float
    http_p99_ms: float
    error_samples: tuple[str, ...] = field(default_factory=tuple)
    retries: int = 0
    reresolutions: int = 0
    hedged: int = 0
    # Full p50/p95/p99/p999 panels (ms), from percentile_summary.
    dns_percentiles_ms: dict = field(default_factory=dict)
    http_percentiles_ms: dict = field(default_factory=dict)
    # Open-loop arrivals dropped at the in-flight cap (overload is
    # recorded, never queued).
    shed: int = 0
    # Raw latency histogram payloads — (uppers, bucket_counts, sum,
    # count) — so a fleet of generator processes can merge reports
    # with exact percentiles (see merge_load_reports).
    dns_hist: Optional[tuple] = None
    http_hist: Optional[tuple] = None

    @property
    def dns_qps(self) -> float:
        """Sustained DNS queries per second over the whole run."""
        return self.dns_queries / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def http_rps(self) -> float:
        """Completed HTTP requests per second."""
        return self.ok / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def healthy(self) -> bool:
        """True when every request completed without error."""
        return self.errors == 0 and self.ok == self.requests

    def render(self) -> str:
        """A terminal-friendly summary block."""
        lines = [
            "loadgen report",
            "--------------",
            f"requests        {self.requests}  (ok {self.ok}, errors {self.errors})",
            f"elapsed         {self.elapsed_seconds:.2f} s",
            f"dns queries     {self.dns_queries}  "
            f"({self.dns_qps:,.0f} qps sustained, "
            f"{self.dns_timeouts} timeouts, {self.tcp_fallbacks} tcp fallbacks)",
            f"dns latency     p50 {self.dns_p50_ms:.2f} ms   p99 {self.dns_p99_ms:.2f} ms (full chain)",
            f"http requests   {self.ok}  ({self.http_rps:,.0f} rps)",
            f"http latency    p50 {self.http_p50_ms:.2f} ms   p99 {self.http_p99_ms:.2f} ms",
            f"body bytes      {self.body_bytes:,}",
        ]
        if self.dns_percentiles_ms and self.http_percentiles_ms:
            lines.append(
                "latency panel   dns p95 {:.2f} ms  p999 {:.2f} ms | "
                "http p95 {:.2f} ms  p999 {:.2f} ms".format(
                    self.dns_percentiles_ms.get("p95", 0.0),
                    self.dns_percentiles_ms.get("p999", 0.0),
                    self.http_percentiles_ms.get("p95", 0.0),
                    self.http_percentiles_ms.get("p999", 0.0),
                )
            )
        if self.shed:
            lines.append(f"shed arrivals   {self.shed}  (open-loop in-flight cap)")
        if self.retries:
            lines.append(f"http retries    {self.retries}")
        if self.reresolutions:
            lines.append(f"re-resolutions  {self.reresolutions}  (15 s TTL expired mid-retry)")
        if self.hedged:
            lines.append(f"hedged lookups  {self.hedged}")
        for sample in self.error_samples:
            lines.append(f"error sample    {sample}")
        return "\n".join(lines)


class LoadGenerator:
    """Drives the workload model through a live serve cluster."""

    def __init__(
        self,
        dns_endpoint: tuple[str, int],
        http_endpoint: tuple[str, int],
        directory: Optional[ClientDirectory] = None,
        config: Optional[LoadConfig] = None,
        metrics=None,
        tracer=None,
        resolver_endpoint: Optional[tuple[str, int]] = None,
    ) -> None:
        self.dns_endpoint = dns_endpoint
        self.http_endpoint = http_endpoint
        # A public-resolver front; the config's share of clients
        # resolve through it instead of the authoritative endpoint.
        self.resolver_endpoint = resolver_endpoint
        self._public_dns: Optional[AsyncDnsClient] = None
        self.directory = (
            directory if directory is not None else ClientDirectory.from_adoption()
        )
        self.config = config if config is not None else LoadConfig()
        # Local histograms so percentiles exist even under the null
        # registry; the same observations feed the registry instruments.
        self._dns_hist = HistogramChild(_LATENCY_BUCKETS)
        self._http_hist = HistogramChild(_LATENCY_BUCKETS)
        registry = metrics if metrics is not None else get_registry()
        self._registry = registry
        # Each logical request roots one trace; spans and wire stamps
        # only happen when this tracer is enabled.
        self._tracer = tracer if tracer is not None else get_tracer()
        self._t0 = 0.0
        self._m_requests = registry.counter(
            "loadgen_requests_total",
            "Closed-loop requests issued, by outcome",
            ("outcome",),
        )
        self._m_ok = self._m_requests.labels("ok")
        self._m_error = self._m_requests.labels("error")
        self._m_dns_seconds = registry.histogram(
            "loadgen_dns_resolution_seconds",
            "Full-chain DNS resolution latency",
            buckets=_LATENCY_BUCKETS,
        )
        self._m_http_seconds = registry.histogram(
            "loadgen_http_request_seconds",
            "Ranged download request latency",
            buckets=_LATENCY_BUCKETS,
        )
        self._m_in_flight = registry.gauge(
            "loadgen_in_flight", "Requests currently in flight"
        )
        self._m_retries = registry.counter(
            "loadgen_http_retries_total",
            "HTTP attempts beyond the first, per request",
        )
        self._m_reresolutions = registry.counter(
            "loadgen_reresolutions_total",
            "Retries that re-resolved because the cached chain's TTL expired",
        )
        self._m_shed = registry.counter(
            "loadgen_shed_total",
            "Open-loop arrivals dropped at the in-flight cap",
        )
        self._errors: list[str] = []
        self._ok_count = 0
        self._body_bytes = 0
        self._retry_count = 0
        self._reresolution_count = 0
        self._shed_count = 0
        self._dispatched = 0
        self._inflight = 0
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            cooldown=self.config.breaker_cooldown,
        )

    async def run(self) -> LoadReport:
        """Execute the configured run; always returns a report."""
        config = self.config
        dns = await AsyncDnsClient.open(
            *self.dns_endpoint,
            timeout=config.dns_timeout,
            retries=config.retries,
            source_prefix_len=config.source_prefix_len,
            metrics=self._registry,
            backoff=config.backoff,
            hedge=config.hedge,
            tracer=self._tracer,
        )
        if (
            self.resolver_endpoint is not None
            and config.public_resolver_share > 0.0
        ):
            # The front answers non-authoritatively from its POP
            # caches; hedging stays client-side, exactly as with a
            # real public resolver.
            self._public_dns = await AsyncDnsClient.open(
                *self.resolver_endpoint,
                timeout=config.dns_timeout,
                retries=config.retries,
                source_prefix_len=config.source_prefix_len,
                metrics=self._registry,
                backoff=config.backoff,
                hedge=config.hedge,
                tracer=self._tracer,
            )
        http = PooledHttpClient(
            *self.http_endpoint,
            pool_size=config.concurrency,
            timeout=config.http_timeout,
            tracer=self._tracer,
        )
        in_flight = asyncio.Semaphore(config.max_in_flight or config.concurrency)
        sequence = itertools.count(config.seq_start)
        started = time.perf_counter()
        self._t0 = started
        workers: list[asyncio.Task] = []
        try:
            if config.arrival is not None:
                await self._run_open_loop(dns, http)
            else:
                workers = [
                    asyncio.create_task(
                        self._worker(dns, http, sequence, in_flight)
                    )
                    for _ in range(config.concurrency)
                ]
                await asyncio.gather(*workers)
        except asyncio.CancelledError:
            # Mid-ramp teardown (fleet SIGTERM): cancel the closed-loop
            # workers and *wait* for them — each worker's finally block
            # must run before the clients close underneath it.
            for task in workers:
                task.cancel()
            if workers:
                await asyncio.gather(*workers, return_exceptions=True)
            raise
        finally:
            elapsed = time.perf_counter() - started
            dns.close()
            if self._public_dns is not None:
                self._public_dns.close()
            await http.close()
        requests = (
            self._dispatched if config.arrival is not None else config.requests
        )
        public = self._public_dns
        dns_queries = dns.queries_sent + (public.queries_sent if public else 0)
        dns_timeouts = dns.timeouts + (public.timeouts if public else 0)
        tcp_fallbacks = dns.tcp_fallbacks + (public.tcp_fallbacks if public else 0)
        hedged = dns.hedged_queries + (public.hedged_queries if public else 0)
        dns_panel = {
            k: v * 1000.0 for k, v in self._dns_hist.percentile_summary().items()
        }
        http_panel = {
            k: v * 1000.0 for k, v in self._http_hist.percentile_summary().items()
        }
        return LoadReport(
            requests=requests,
            ok=self._ok_count,
            errors=len(self._errors),
            elapsed_seconds=elapsed,
            dns_queries=dns_queries,
            dns_timeouts=dns_timeouts,
            tcp_fallbacks=tcp_fallbacks,
            body_bytes=self._body_bytes,
            dns_p50_ms=dns_panel["p50"],
            dns_p99_ms=dns_panel["p99"],
            http_p50_ms=http_panel["p50"],
            http_p99_ms=http_panel["p99"],
            error_samples=tuple(self._errors[:5]),
            retries=self._retry_count,
            reresolutions=self._reresolution_count,
            hedged=hedged,
            dns_percentiles_ms=dns_panel,
            http_percentiles_ms=http_panel,
            shed=self._shed_count,
            dns_hist=(
                tuple(self._dns_hist.uppers),
                list(self._dns_hist.bucket_counts),
                self._dns_hist.sum,
                self._dns_hist.count,
            ),
            http_hist=(
                tuple(self._http_hist.uppers),
                list(self._http_hist.bucket_counts),
                self._http_hist.sum,
                self._http_hist.count,
            ),
        )

    async def _worker(self, dns: AsyncDnsClient, http: PooledHttpClient,
                      sequence, in_flight: asyncio.Semaphore) -> None:
        while True:
            seq = next(sequence)
            if seq >= self.config.seq_start + self.config.requests:
                return
            async with in_flight:
                self._m_in_flight.inc()
                try:
                    await self._one_request(dns, http, seq)
                    self._ok_count += 1
                    self._m_ok.inc()
                except Exception as exc:  # the loop must survive anything
                    self._m_error.inc()
                    if len(self._errors) < 100:
                        self._errors.append(f"seq={seq}: {exc}")
                finally:
                    self._m_in_flight.dec()

    async def _run_open_loop(self, dns: AsyncDnsClient,
                             http: PooledHttpClient) -> None:
        """Fire requests at the arrival schedule's times.

        The dispatcher sleeps until each arrival is due, then launches
        it as an independent task — completions never gate arrivals.
        The only coupling to server health is the in-flight cap:
        arrivals that would exceed it are shed and counted, exactly
        what a saturated open-loop generator should report.
        """
        config = self.config
        assert config.arrival is not None
        limit = config.max_in_flight or config.concurrency * 4
        tasks: set[asyncio.Task] = set()
        try:
            for seq, due, region in config.arrival.events(
                config.arrival_offset, config.arrival_stride
            ):
                delay = due - (time.perf_counter() - self._t0)
                if delay > 0.0:
                    await asyncio.sleep(delay)
                if self._inflight >= limit:
                    self._shed_count += 1
                    self._m_shed.inc()
                    continue
                self._inflight += 1
                self._dispatched += 1
                task = asyncio.create_task(
                    self._one_arrival(dns, http, seq, region)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks)
        except asyncio.CancelledError:
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            raise

    async def _one_arrival(self, dns: AsyncDnsClient, http: PooledHttpClient,
                           seq: int, region) -> None:
        self._m_in_flight.inc()
        try:
            await self._one_request(dns, http, seq, region=region)
            self._ok_count += 1
            self._m_ok.inc()
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # open-loop arrivals must not cascade
            self._m_error.inc()
            if len(self._errors) < 100:
                self._errors.append(f"seq={seq}: {exc}")
        finally:
            self._inflight -= 1
            self._m_in_flight.dec()

    def _now(self) -> float:
        """Run-relative seconds, the ts stamped on client spans."""
        return time.perf_counter() - self._t0

    async def _resolve_timed(self, dns: AsyncDnsClient, client,
                             entry_point: str) -> WireResolution:
        t_dns = time.perf_counter()
        with self._tracer.span(
            "client.resolve", ts=self._now(), qname=entry_point
        ) as span:
            resolution = await dns.resolve(entry_point, client)
            span.annotate(
                chain=len(resolution.chain_names),
                addresses=len(resolution.addresses),
            )
        dns_elapsed = time.perf_counter() - t_dns
        self._dns_hist.observe(dns_elapsed)
        self._m_dns_seconds.observe(dns_elapsed)
        if not resolution.addresses:
            raise DnsClientError(
                f"chain for {entry_point!r} ended without A records "
                f"at {resolution.final_name!r}"
            )
        return resolution

    def _pick_vip(self, resolution: WireResolution, seq: int,
                  attempt: int) -> IPv4Address:
        """A vip from the answer set, skipping open circuits.

        Rotation starts at ``seq + attempt`` so a retry naturally lands
        on a different vip; if every circuit is open the rotated first
        choice is used anyway (the breaker must not wedge the run).
        """
        addresses = resolution.addresses
        start = (seq + attempt) % len(addresses)
        rotated = addresses[start:] + addresses[:start]
        for vip in rotated:
            if self._breaker.allow(str(vip)):
                return vip
        return rotated[0]

    async def _one_request(self, dns: AsyncDnsClient, http: PooledHttpClient,
                           seq: int, region=None) -> None:
        if not self._tracer.enabled:
            return await self._attempts(dns, http, seq, region)
        # Root one trace per logical request.  The id is deterministic
        # in ``seq`` and the sampling decision deterministic in the id,
        # so a re-run traces the same requests.
        trace_id = new_trace_id(f"loadgen|{seq}")
        context = TraceContext(
            trace_id=trace_id,
            sampled=sample_trace(trace_id, self.config.trace_sample),
        )
        with use_context(context):
            with self._tracer.span(
                "client.request", ts=self._now(), seq=seq
            ) as span:
                await self._attempts(dns, http, seq, region)
                span.annotate(outcome="ok")

    def _dns_for(self, dns: AsyncDnsClient, seq: int) -> AsyncDnsClient:
        """The resolver this client uses: ISP path or the public front.

        Assignment is stable in the sequence number (the same keying
        the engine's resolver plane uses for its mixed population), so
        re-runs and fleet slices agree on who resolves where.
        """
        if self._public_dns is None:
            return dns
        share = self.config.public_resolver_share
        if share >= 1.0 or stable_fraction("resolver-population", seq) < share:
            return self._public_dns
        return dns

    async def _attempts(self, dns: AsyncDnsClient, http: PooledHttpClient,
                        seq: int, region=None) -> None:
        config = self.config
        dns = self._dns_for(dns, seq)
        # Open-loop arrivals come with the region the workload model
        # woke up; closed-loop draws the full weighted mix.
        client = (
            self.directory.sample_in_region(region, seq)
            if region is not None else self.directory.sample(seq)
        )
        path = f"/content/ios11-part{seq % config.object_count:03d}.ipsw"
        resolution: Optional[WireResolution] = None
        resolved_at = 0.0
        last_exc: Optional[Exception] = None
        for attempt in range(config.http_retries + 1):
            if attempt > 0:
                self._retry_count += 1
                self._m_retries.inc()
                await asyncio.sleep(
                    config.backoff.delay(attempt - 1, "http", seq)
                )
            # The cached CNAME chain is only valid for one selection-step
            # TTL; a retry past that must re-resolve, not replay a stale
            # vip set (the re-steer would otherwise be invisible).
            now = time.perf_counter()
            if resolution is not None and now - resolved_at > config.resolution_max_age:
                resolution = None
                self._reresolution_count += 1
                self._m_reresolutions.inc()
            if resolution is None:
                try:
                    resolution = await self._resolve_timed(
                        dns, client.address, config.entry_point
                    )
                except DnsClientError as exc:
                    last_exc = exc
                    continue
                resolved_at = time.perf_counter()
            vip = self._pick_vip(resolution, seq, attempt)
            t_http = time.perf_counter()
            try:
                with self._tracer.span(
                    "client.fetch", ts=self._now(), vip=str(vip)
                ) as fetch_span:
                    status, _headers, body_length = await http.get(
                        path,
                        host=config.entry_point,
                        vip=vip,
                        client=client.address,
                        range_bytes=(0, config.range_bytes - 1),
                    )
                    fetch_span.annotate(status=status)
            except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
                self._breaker.record_failure(str(vip))
                last_exc = RuntimeError(f"transport to vip {vip}: {exc}")
                continue
            http_elapsed = time.perf_counter() - t_http
            self._http_hist.observe(http_elapsed)
            self._m_http_seconds.observe(http_elapsed)
            if status in (200, 206):
                self._breaker.record_success(str(vip))
                self._body_bytes += body_length
                return
            self._breaker.record_failure(str(vip))
            last_exc = RuntimeError(f"HTTP {status} from vip {vip} for {path}")
            if status >= 500:
                # A failing vip (injected fault or real outage) may be
                # re-steered away from by the next selection: drop the
                # cached chain so the retry resolves fresh.
                resolution = None
        raise last_exc if last_exc is not None else RuntimeError(
            f"request seq={seq} failed with no recorded cause"
        )


def _hist_from_payload(payload: Optional[tuple]) -> HistogramChild:
    """Rebuild a latency histogram from a report's raw payload."""
    if payload is None:
        return HistogramChild(_LATENCY_BUCKETS)
    uppers, buckets, total, count = payload
    child = HistogramChild(tuple(uppers))
    child.bucket_counts = list(buckets)
    child.sum = total
    child.count = count
    return child


def merge_load_reports(reports: list) -> LoadReport:
    """One report for a fleet of generator processes.

    Counts add; elapsed is the *maximum* (the processes ran
    concurrently, so rates divide by the longest run, which slightly
    understates qps rather than inflating it); percentiles come from
    merging the raw histograms, so the fleet's p999 is exact to bucket
    resolution — not an average of per-process percentiles, which
    would be meaningless.
    """
    inputs = [r for r in reports if r is not None]
    if not inputs:
        raise ValueError("merge_load_reports needs at least one report")
    if len(inputs) == 1:
        return inputs[0]
    dns_merged = HistogramChild.merge(
        [_hist_from_payload(r.dns_hist) for r in inputs]
    )
    http_merged = HistogramChild.merge(
        [_hist_from_payload(r.http_hist) for r in inputs]
    )
    dns_panel = {
        k: v * 1000.0 for k, v in dns_merged.percentile_summary().items()
    }
    http_panel = {
        k: v * 1000.0 for k, v in http_merged.percentile_summary().items()
    }
    samples: list[str] = []
    for report in inputs:
        samples.extend(report.error_samples)
    return LoadReport(
        requests=sum(r.requests for r in inputs),
        ok=sum(r.ok for r in inputs),
        errors=sum(r.errors for r in inputs),
        elapsed_seconds=max(r.elapsed_seconds for r in inputs),
        dns_queries=sum(r.dns_queries for r in inputs),
        dns_timeouts=sum(r.dns_timeouts for r in inputs),
        tcp_fallbacks=sum(r.tcp_fallbacks for r in inputs),
        body_bytes=sum(r.body_bytes for r in inputs),
        dns_p50_ms=dns_panel["p50"],
        dns_p99_ms=dns_panel["p99"],
        http_p50_ms=http_panel["p50"],
        http_p99_ms=http_panel["p99"],
        error_samples=tuple(samples[:5]),
        retries=sum(r.retries for r in inputs),
        reresolutions=sum(r.reresolutions for r in inputs),
        hedged=sum(r.hedged for r in inputs),
        dns_percentiles_ms=dns_panel,
        http_percentiles_ms=http_panel,
        shed=sum(r.shed for r in inputs),
        dns_hist=(
            tuple(dns_merged.uppers),
            list(dns_merged.bucket_counts),
            dns_merged.sum,
            dns_merged.count,
        ),
        http_hist=(
            tuple(http_merged.uppers),
            list(http_merged.bucket_counts),
            http_merged.sum,
            http_merged.count,
        ),
    )
