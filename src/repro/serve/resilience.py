"""Client-side resilience primitives for the load generator.

Real update clients do not hammer a dead vip at a fixed interval; they
back off exponentially with jitter, stop talking to endpoints that keep
failing, and hedge slow lookups.  This module supplies those three
mechanisms for :mod:`repro.serve.loadgen`:

* :class:`BackoffPolicy` — exponential backoff with deterministic
  jitter (the same BLAKE2b ``stable_fraction`` hash the mapping
  policies use, so a fixed seed replays identical sleep sequences);
* :class:`CircuitBreaker` — a per-target closed → open → half-open
  breaker keeping retries away from vips that just failed;
* :class:`HedgePolicy` — the latency budget after which a resolution of
  ``a.gslb.applimg.com`` launches a parallel query against
  ``b.gslb.applimg.com`` and takes whichever answers first (the reason
  Apple publishes two GSLB names).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..dns.policies import stable_fraction

__all__ = ["BackoffPolicy", "CircuitBreaker", "HedgePolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter.

    Attempt ``n`` (0-based) sleeps ``base * multiplier**n`` capped at
    ``cap``, then jittered downward by up to ``jitter`` of itself so
    synchronized failures do not retry in lockstep.  Jitter is a stable
    hash of ``(salt, attempt, *key)``: no random state, reproducible
    runs.
    """

    base: float = 0.05
    multiplier: float = 2.0
    cap: float = 2.0
    jitter: float = 0.5
    salt: str = ""

    def __post_init__(self) -> None:
        if self.base <= 0 or self.cap <= 0 or self.multiplier < 1.0:
            raise ValueError("base/cap must be positive, multiplier >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, *key) -> float:
        """The sleep before retry ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * self.multiplier ** max(0, attempt))
        if self.jitter <= 0.0:
            return raw
        spread = stable_fraction("backoff", self.salt, attempt, *key)
        return raw * (1.0 - self.jitter * spread)


class CircuitBreaker:
    """A per-target breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the circuit for the
    target; while open, :meth:`allow` answers False until ``cooldown``
    seconds pass, after which one half-open trial is admitted — success
    closes the circuit, failure re-opens it for another cooldown.
    Targets are arbitrary strings (vip addresses here).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        # target -> [consecutive failures, opened_at or None, trial in flight]
        self._targets: dict[str, list] = {}
        self.opened_total = 0

    def _entry(self, target: str) -> list:
        entry = self._targets.get(target)
        if entry is None:
            entry = [0, None, False]
            self._targets[target] = entry
        return entry

    def state(self, target: str) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` for ``target``."""
        entry = self._targets.get(target)
        if entry is None or entry[1] is None:
            return "closed"
        if self._clock() - entry[1] >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self, target: str) -> bool:
        """Whether a request to ``target`` may proceed right now."""
        entry = self._targets.get(target)
        if entry is None or entry[1] is None:
            return True
        if self._clock() - entry[1] < self.cooldown:
            return False
        if entry[2]:
            return False  # a half-open trial is already in flight
        entry[2] = True
        return True

    def record_success(self, target: str) -> None:
        """A request to ``target`` succeeded: close its circuit."""
        entry = self._targets.get(target)
        if entry is not None:
            entry[0] = 0
            entry[1] = None
            entry[2] = False

    def record_failure(self, target: str) -> None:
        """A request to ``target`` failed: count toward opening."""
        entry = self._entry(target)
        if entry[1] is not None:
            # open or failed half-open trial: restart the cooldown
            entry[1] = self._clock()
            entry[2] = False
            return
        entry[0] += 1
        if entry[0] >= self.failure_threshold:
            entry[1] = self._clock()
            entry[2] = False
            self.opened_total += 1

    def open_targets(self) -> tuple[str, ...]:
        """Targets whose circuit is currently open or half-open."""
        return tuple(
            sorted(t for t, e in self._targets.items() if e[1] is not None)
        )


@dataclass(frozen=True)
class HedgePolicy:
    """When to hedge a GSLB lookup against the second published name."""

    primary: str = "a.gslb.applimg.com"
    fallback: str = "b.gslb.applimg.com"
    budget: float = 0.25  # seconds before the hedge launches

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.primary == self.fallback:
            raise ValueError("hedge needs two distinct names")

    def hedge_name(self, name: str) -> Optional[str]:
        """The name to hedge ``name`` with, if it is hedgeable."""
        if name == self.primary:
            return self.fallback
        if name == self.fallback:
            return self.primary
        return None
