"""A live public-resolver front: shared POP caches over real sockets.

:class:`PublicResolverFront` is the serving-layer twin of the engine's
:class:`~repro.resolver.ResolverPlane`: a UDP DNS forwarder that sits
between the load generator and the authoritative
:class:`~repro.serve.dnsserver.AsyncDnsServer`, acting as a small
anycast fleet of public-resolver POPs.  Each query is attributed to the
POP nearest the acting client (the EDNS Client Subnet option names the
client; the shared :class:`~repro.serve.clients.ClientDirectory` maps
it to geography), answered from that POP's shared TTL cache when
possible, and forwarded upstream otherwise.

Caching is ECS-scope honest (RFC 7871 §7.3.1): an answer is stored
under the *echoed* scope the authoritative returned — the granularity
the answer actually depended on — so one cached entry serves exactly
the clients the authority said it may serve.  With ECS disabled the
front announces its POP anchor address instead of the client, so every
client behind the POP shares one entry per name: the paper's
mis-mapping and cache-dilution effects, live on the wire.

POP anchors live in the ``.255.1`` tail of the directory's CGNAT
vantage blocks, so an ECS-off upstream query geolocates to the POP's
metro through the very same directory the authoritative consults.
"""

from __future__ import annotations

import asyncio
import struct
import time
from typing import Callable, Optional

from ..dns.query import RCode
from ..dns.records import ResourceRecord
from ..dns.wire import ClientSubnet, WireMessage, decode_message, encode_message
from ..net.ipv4 import IPv4Address, IPv4Prefix
from ..obs import get_registry
from ..resolver import DEFAULT_POPS, ResolverPop, nearest_pop
from .clients import ClientDirectory
from .loadgen import AsyncDnsClient, DnsClientError

__all__ = ["PublicResolverFront"]


class _FrontProtocol(asyncio.DatagramProtocol):
    def __init__(self, front: "PublicResolverFront") -> None:
        self._front = front
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:  # pragma: no cover - trivial
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self._front._dispatch(data, addr)


class _CacheEntry:
    __slots__ = ("answers", "rcode", "authoritative", "scope", "expires_at")

    def __init__(self, answers: tuple[ResourceRecord, ...], rcode: RCode,
                 authoritative: bool, scope: int, expires_at: float) -> None:
        self.answers = answers
        self.rcode = rcode
        self.authoritative = authoritative
        self.scope = scope
        self.expires_at = expires_at


class PublicResolverFront:
    """An asyncio UDP caching forwarder fronting the authoritative server.

    ``upstream`` is the (host, port) of a running
    :class:`~repro.serve.dnsserver.AsyncDnsServer`.  ``ecs`` controls
    whether the front forwards the client's subnet (truncated to
    ``scope`` bits) or hides it behind the POP anchor;
    ``cache_capacity`` bounds the live entries per POP cache.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        directory: Optional[ClientDirectory] = None,
        pops: tuple[ResolverPop, ...] = DEFAULT_POPS,
        ecs: bool = True,
        scope: int = 24,
        cache_capacity: int = 4096,
        timeout: float = 2.0,
        retries: int = 2,
        metrics=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not pops:
            raise ValueError("a resolver front needs at least one POP")
        if not 0 <= scope <= 32:
            raise ValueError("scope must be in [0, 32]")
        if cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        self._upstream = upstream
        self.directory = (
            directory if directory is not None else ClientDirectory()
        )
        self._pops = tuple(pops)
        self.ecs = ecs
        self.scope = scope
        self._capacity = cache_capacity
        self._timeout = timeout
        self._retries = retries
        self._clock = clock
        # The wire ECS option needs a positive prefix length; scope 0
        # (or ECS off) degrades to announcing the POP anchor itself.
        self._announce_clients = ecs and scope > 0
        # One cache per POP: (qname, network_value, scope) -> entry.
        self._caches: dict[str, dict[tuple, _CacheEntry]] = {}
        # The last echoed scope per (pop, qname): where to look on the
        # next query for the same name (real ECS caches keep the same
        # per-name scope memo).
        self._scope_memo: dict[tuple[str, str], int] = {}
        # Concurrent misses for the same entry coalesce onto one
        # upstream query.
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._pop_memo: dict[IPv4Address, ResolverPop] = {}
        self._client: Optional[AsyncDnsClient] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._tasks: set[asyncio.Task] = set()
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self.hits = 0
        self.misses = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_queries = registry.counter(
            "resolver_front_queries_total",
            "Queries handled by the public-resolver front, per POP",
            ("pop",),
        )
        self._m_cache = registry.counter(
            "resolver_front_cache_total",
            "Shared POP cache lookups, by outcome",
            ("outcome",),
        )
        self._m_hit = self._m_cache.labels("hit")
        self._m_miss = self._m_cache.labels("miss")
        self._m_upstream = registry.counter(
            "resolver_front_upstream_total",
            "Queries the front forwarded to the authoritative server",
        )
        self._m_evictions = registry.counter(
            "resolver_front_evictions_total",
            "Cache entries evicted at the per-POP capacity bound",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def endpoint(self) -> tuple[str, int]:
        """(host, port) once started."""
        if self._host is None or self._port is None:
            raise RuntimeError("resolver front is not started")
        return self._host, self._port

    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    reuse_port: bool = False) -> tuple[str, int]:
        """Bind the UDP listener and connect the upstream client."""
        if self._transport is not None:
            raise RuntimeError("resolver front already started")
        if self._clock is None:
            origin = time.monotonic()
            self._clock = lambda: time.monotonic() - origin
        loop = asyncio.get_running_loop()
        extra = {"reuse_port": True} if reuse_port else {}
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _FrontProtocol(self), local_addr=(host, port), **extra
        )
        self._transport = transport
        self._host, self._port = transport.get_extra_info("sockname")[:2]
        self._client = await AsyncDnsClient.open(
            *self._upstream,
            timeout=self._timeout,
            retries=self._retries,
            source_prefix_len=self.scope if self._announce_clients else 32,
        )
        return self.endpoint

    async def stop(self) -> None:
        """Close the listener, the upstream client and in-flight work."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        if self._client is not None:
            self._client.close()
            self._client = None
        self._inflight.clear()
        self._host = self._port = None

    # ------------------------------------------------------------------
    # POP attribution and cache keys
    # ------------------------------------------------------------------

    def _pop_for(self, client: Optional[IPv4Address]) -> ResolverPop:
        """The POP serving ``client`` (nearest by great circle)."""
        if client is None:
            return self._pops[0]
        cached = self._pop_memo.get(client)
        if cached is not None:
            return cached
        context = self.directory.context_for(client)
        pop = nearest_pop(context.coordinates, self._pops)
        self._pop_memo[client] = pop
        return pop

    def _announced(self, client: Optional[IPv4Address],
                   pop: ResolverPop) -> tuple[IPv4Address, int]:
        """(address, prefix length) the front presents upstream."""
        if self._announce_clients and client is not None:
            return client, self.scope
        return pop.anchor, 32

    @staticmethod
    def _truncate(address: IPv4Address, scope: int) -> int:
        return IPv4Prefix.containing(address, scope).network.value

    def cache_stats(self) -> dict:
        """Plain counters for reports (work under the null registry)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": sum(len(cache) for cache in self._caches.values()),
            "pops": len(self._caches),
        }

    # ------------------------------------------------------------------
    # query handling
    # ------------------------------------------------------------------

    def _dispatch(self, data: bytes, addr) -> None:
        task = asyncio.create_task(self._serve_one(data, addr))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _serve_one(self, data: bytes, addr) -> None:
        try:
            query = decode_message(data)
        except Exception:
            reply = self._servfail_for(data)
            if reply is not None and self._transport is not None:
                self._transport.sendto(reply, addr)
            return
        if not query.questions:
            reply = self._servfail_for(data)
            if reply is not None and self._transport is not None:
                self._transport.sendto(reply, addr)
            return
        question = query.questions[0]
        client = (
            query.client_subnet.prefix.network
            if query.client_subnet is not None else None
        )
        pop = self._pop_for(client)
        self._m_queries.labels(pop.pop_id).inc()
        announced, _announced_len = self._announced(client, pop)
        try:
            entry = await self._lookup(pop, question.name, announced)
        except DnsClientError:
            reply = self._servfail_for(data)
            if reply is not None and self._transport is not None:
                self._transport.sendto(reply, addr)
            return
        ecs = None
        if query.client_subnet is not None:
            # The front is the recursive here: echo the client's option
            # with the scope the cached answer is really valid for.
            ecs = ClientSubnet(
                prefix=query.client_subnet.prefix,
                scope_length=min(entry.scope, query.client_subnet.prefix.length),
            )
        reply = encode_message(
            WireMessage(
                message_id=query.message_id,
                is_response=True,
                authoritative=False,
                recursion_desired=query.recursion_desired,
                recursion_available=True,
                rcode=entry.rcode,
                questions=[question],
                answers=list(entry.answers),
                client_subnet=ecs,
                trace_context=query.trace_context,
            )
        )
        if self._transport is not None:
            self._transport.sendto(reply, addr)

    async def _lookup(self, pop: ResolverPop, qname: str,
                      announced: IPv4Address) -> _CacheEntry:
        """The cached (or freshly fetched) entry for one query."""
        assert self._clock is not None
        now = self._clock()
        cache = self._caches.setdefault(pop.pop_id, {})
        memo_scope = self._scope_memo.get((pop.pop_id, qname))
        if memo_scope is not None:
            key = (qname, self._truncate(announced, memo_scope), memo_scope)
            entry = cache.get(key)
            if entry is not None:
                if entry.expires_at > now:
                    self.hits += 1
                    self._m_hit.inc()
                    return entry
                del cache[key]
        self.misses += 1
        self._m_miss.inc()
        # Coalesce concurrent misses at the announced granularity: the
        # answer's true partition is only known once the echo arrives.
        flight_key = (
            pop.pop_id, qname,
            self._truncate(
                announced, self.scope if self._announce_clients else 32
            ),
        )
        waiter = self._inflight.get(flight_key)
        if waiter is not None:
            return await asyncio.shield(waiter)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[flight_key] = future
        try:
            entry = await self._fetch(pop, qname, announced, cache)
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
            # The exception is delivered to every waiter; retrieving it
            # here too keeps the future from logging "never retrieved".
            future.exception()
            raise
        else:
            if not future.done():
                future.set_result(entry)
            return entry
        finally:
            self._inflight.pop(flight_key, None)

    async def _fetch(self, pop: ResolverPop, qname: str,
                     announced: IPv4Address, cache: dict) -> _CacheEntry:
        """One upstream round trip; stores at the echoed scope."""
        assert self._client is not None and self._clock is not None
        self._m_upstream.inc()
        response = await self._client.query(qname, announced)
        echoed = (
            response.client_subnet.scope_length
            if response.client_subnet is not None else 0
        )
        answers = tuple(response.answers)
        now = self._clock()
        entry = _CacheEntry(
            answers=answers,
            rcode=response.rcode,
            authoritative=response.authoritative,
            scope=echoed,
            expires_at=now,
        )
        if response.rcode is RCode.NOERROR and answers:
            ttl = min(record.ttl for record in answers)
            if ttl > 0:
                entry.expires_at = now + ttl
                self._store(
                    cache, pop, qname,
                    (qname, self._truncate(announced, echoed), echoed),
                    entry, now,
                )
        return entry

    def _store(self, cache: dict, pop: ResolverPop, qname: str,
               key: tuple, entry: _CacheEntry, now: float) -> None:
        self._scope_memo[(pop.pop_id, qname)] = entry.scope
        cache[key] = entry
        if len(cache) <= self._capacity:
            return
        # Expired entries go first; then the soonest-to-expire live one
        # (deterministic tie-break on the key repr).
        for stale in [k for k, e in cache.items() if e.expires_at <= now]:
            if len(cache) <= self._capacity:
                return
            del cache[stale]
            self._m_evictions.inc()
        while len(cache) > self._capacity:
            victim = min(
                cache, key=lambda k: (cache[k].expires_at, repr(k))
            )
            del cache[victim]
            self._m_evictions.inc()

    @staticmethod
    def _servfail_for(payload: bytes) -> Optional[bytes]:
        if len(payload) < 12:
            return None
        (message_id,) = struct.unpack("!H", payload[:2])
        return encode_message(
            WireMessage(
                message_id=message_id,
                is_response=True,
                rcode=RCode.SERVFAIL,
                recursion_desired=False,
            )
        )
