"""Shared read-only serve state: one snapshot file, N worker processes.

A fleet of ``SO_REUSEPORT`` workers must agree on *everything* that
shapes an answer — the estate's zones, the vantage directory, the
steering mode, the catchment table — or the same query would resolve
differently depending on which worker the kernel picked.  The
:class:`FleetSpec` snapshot is that agreement, written once by the
fleet parent and mapped read-only by every worker:

* the file is **mmap-backed** (``RSNAP1`` header, BLAKE2b-checksummed
  payload, same framing discipline as the RCKPT/RSEG1 formats), so the
  kernel shares one page-cache copy of the spec across the whole
  fleet instead of N heap copies;
* estate construction is deterministic from :class:`~repro.serve.
  cluster.ClusterConfig`, so workers rebuild the zones locally and then
  *verify* their build against the snapshot's :func:`estate_signature`
  — a worker whose estate drifted (version skew, non-deterministic
  build) refuses to serve rather than answer differently;
* under anycast steering the parent also pins the catchment map's
  signature at time zero, so every worker proves it routes the same
  client to the same site before taking traffic.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pickle
from dataclasses import dataclass, field
from typing import Optional

from ..faults import FailoverConfig, FaultSchedule
from .clients import ClientDirectory, Vantage
from .cluster import ClusterConfig

__all__ = [
    "FleetSpec",
    "ServeSnapshot",
    "estate_signature",
    "write_snapshot",
    "load_snapshot",
]

_MAGIC = b"RSNAP1\n"
_DIGEST_SIZE = 16


def estate_signature(estate) -> str:
    """A stable digest of the estate's zone structure.

    Hashes every operator's zones — origins and the sorted owner names
    bound in each — which pins the answer space: two estates with equal
    signatures were built from the same config by the same code, so
    their (deterministic) policies answer identically.
    """
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for server in sorted(estate.servers, key=lambda s: s.operator):
        digest.update(server.operator.encode())
        for zone in sorted(server.zones, key=lambda z: z.origin):
            digest.update(b"|" + zone.origin.encode())
            for name in sorted(zone.names()):
                digest.update(b";" + name.encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class FleetSpec:
    """Everything a worker needs to serve exactly like its siblings."""

    cluster: ClusterConfig
    vantages: tuple[Vantage, ...]
    weights: dict[str, float]
    steering: str = "dns"
    hybrid_dns_share: float = 0.5
    faults: Optional[FaultSchedule] = None
    failover: Optional[FailoverConfig] = None
    # Pinned cluster clock for equivalence runs (None = live clock).
    pin_clock: Optional[float] = None
    estate_sig: str = ""
    catchment_sig: str = ""
    extra: dict = field(default_factory=dict)

    def directory(self) -> ClientDirectory:
        """The shared vantage directory, rebuilt from the spec."""
        return ClientDirectory(self.vantages, dict(self.weights))


class ServeSnapshot:
    """A loaded snapshot: the spec plus the mmap keeping pages shared."""

    def __init__(self, path: str, spec: FleetSpec, mapped: mmap.mmap,
                 handle) -> None:
        self.path = path
        self.spec = spec
        self._mmap = mapped
        self._handle = handle

    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ServeSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def verify_estate(self, estate) -> None:
        """Refuse to serve from an estate that drifted from the spec."""
        local = estate_signature(estate)
        if self.spec.estate_sig and local != self.spec.estate_sig:
            raise RuntimeError(
                f"estate signature mismatch: snapshot {self.spec.estate_sig} "
                f"!= locally built {local} — refusing to serve divergently"
            )


def write_snapshot(path: str, spec: FleetSpec) -> str:
    """Write ``spec`` atomically; returns ``path``.

    Layout: ``RSNAP1\\n`` + 16-byte BLAKE2b of the payload + 8-byte
    big-endian payload length + pickled :class:`FleetSpec`.
    """
    payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(digest)
        handle.write(len(payload).to_bytes(8, "big"))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(path: str) -> ServeSnapshot:
    """Map ``path`` read-only, verify the checksum, unpickle the spec.

    The returned object keeps the mapping open: the pickled bytes are
    read straight out of the shared page cache, and every worker that
    loads the same file shares those physical pages.
    """
    handle = open(path, "rb")
    try:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (ValueError, OSError):
        handle.close()
        raise RuntimeError(f"snapshot {path} is empty or unmappable")
    view = memoryview(mapped)
    payload = None
    try:
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            raise RuntimeError(f"{path} is not an RSNAP1 snapshot")
        offset = len(_MAGIC)
        digest = bytes(view[offset:offset + _DIGEST_SIZE])
        offset += _DIGEST_SIZE
        length = int.from_bytes(bytes(view[offset:offset + 8]), "big")
        offset += 8
        payload = view[offset:offset + length]
        if len(payload) != length:
            raise RuntimeError(f"snapshot {path} is truncated")
        actual = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        if actual != digest:
            raise RuntimeError(f"snapshot {path} failed its checksum")
        spec = pickle.loads(payload)
    except Exception:
        # Release the sub-view before the parent, or mmap.close()
        # raises BufferError over the exported buffer.
        if payload is not None:
            payload.release()
        view.release()
        mapped.close()
        handle.close()
        raise
    payload.release()
    view.release()
    if not isinstance(spec, FleetSpec):
        mapped.close()
        handle.close()
        raise RuntimeError(f"snapshot {path} does not hold a FleetSpec")
    return ServeSnapshot(path, spec, mapped, handle)
