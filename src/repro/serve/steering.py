"""Live anycast steering: route HTTP connections by catchment, not DNS.

The DNS answer tells a client which unicast vip to fetch from; under
anycast the network decides instead.  This module wraps the estate
router so the edge re-routes each connection to the backend vip of the
site whose catchment the client falls in — evaluated against the
cluster's fault schedule at the *current* cluster clock, so a
``route-withdraw`` window moves live traffic the instant it opens,
with no DNS TTL to wait out and nothing for health probes to notice.

Hybrid mode splits the client population deterministically (stable
BLAKE2b over the client address): the DNS-steered share keeps the vip
it resolved, the anycast share is re-routed by catchment.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..anycast.plane import AnycastPlane, AnycastSite, ClientGroup
from ..apple.mapping import MetaCdnEstate
from ..dns.policies import stable_fraction
from ..faults.schedule import FaultSchedule
from ..net.ipv4 import IPv4Address
from ..obs import get_registry
from .clients import ClientDirectory
from .httpserver import Router, estate_router

__all__ = ["build_serve_plane", "anycast_router"]


def build_serve_plane(
    estate: MetaCdnEstate,
    directory: ClientDirectory,
    schedule: Optional[FaultSchedule] = None,
) -> AnycastPlane:
    """An anycast plane over the estate's Apple sites and the vantages.

    The client populations are the directory's vantage prefixes — the
    same CGNAT blocks the load generator samples clients from — so
    every generated request lands in a known catchment.
    """
    sites = [
        AnycastSite(
            site_id=f"{site.location.code}-{site.site_id}",
            coordinates=site.location.coordinates,
            continent=site.location.continent,
            backend_vip=site.vip_addresses[0],
            capacity_gbps=site.capacity_gbps,
        )
        for site in estate.apple.sites
    ]
    groups = [
        ClientGroup(
            name=vantage.name,
            prefix=vantage.prefix,
            continent=vantage.continent,
            coordinates=vantage.coordinates,
        )
        for vantage in directory.vantages
    ]
    return AnycastPlane(sites, groups, schedule=schedule)


def anycast_router(
    estate: MetaCdnEstate,
    plane: AnycastPlane,
    clock: Callable[[], float],
    steering: str = "anycast",
    hybrid_dns_share: float = 0.5,
    metrics=None,
) -> Router:
    """Wrap the estate router with catchment-based connection routing.

    Requests whose client is outside every known population (or whose
    ``X-Client`` header is absent/unparseable) fall back to the
    DNS-answered vip — exactly what a unicast-only client would do.
    """
    base = estate_router(estate)
    registry = metrics if metrics is not None else get_registry()
    routed = registry.counter(
        "serve_anycast_routed_total",
        "Connections routed to a site by its anycast catchment",
        ("site",),
    )

    def route(vip, request, size):
        client_text = request.headers.get("X-Client") or ""
        try:
            client = IPv4Address.parse(client_text)
        except ValueError:
            return base(vip, request, size)
        if steering == "hybrid" and stable_fraction(
            "hybrid-steer", str(client)
        ) < hybrid_dns_share:
            return base(vip, request, size)
        site = plane.site_for(client, clock())
        if site is None:
            return base(vip, request, size)
        routed.labels(site.site_id).inc()
        return base(site.backend_vip, request, size)

    return route
