"""The discrete-time simulation binding demand, the Meta-CDN, probes
and the eyeball ISP together, plus the Sep 2017 scenario itself."""

from .checkpoint import (
    Checkpoint,
    CheckpointError,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .engine import RunSummary, SimulationEngine, StepReport
from .microsim import DeviceAgent, MicroSimStats, MicroSimulation
from .scenario import (
    AS_HOSTER_AKAMAI,
    AS_HOSTER_LIMELIGHT,
    AS_ISP,
    AS_TRANSIT_A,
    AS_TRANSIT_B,
    AS_TRANSIT_C,
    AS_TRANSIT_D,
    ScenarioConfig,
    Sep2017Scenario,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "load_checkpoint",
    "latest_checkpoint",
    "save_checkpoint",
    "ScenarioConfig",
    "Sep2017Scenario",
    "SimulationEngine",
    "StepReport",
    "RunSummary",
    "MicroSimulation",
    "MicroSimStats",
    "DeviceAgent",
    "AS_ISP",
    "AS_TRANSIT_A",
    "AS_TRANSIT_B",
    "AS_TRANSIT_C",
    "AS_TRANSIT_D",
    "AS_HOSTER_AKAMAI",
    "AS_HOSTER_LIMELIGHT",
]
