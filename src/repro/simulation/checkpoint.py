"""Deterministic checkpoint/resume for the simulation engine (``RCKPT``).

A checkpoint is a *tick-boundary* snapshot of everything a run has
accumulated that cannot be recomputed for free: the measurement stores
(as their sealed ``RSEG1`` columnar payloads, reusing the spill
machinery), the Netflow log and SNMP bins, the campaign grids, the AWS
sweep results, the full metrics-registry snapshot, the engine
observer's edge-detection state and the report stream so far.

What a checkpoint deliberately does **not** carry is the world state
itself — the Meta-CDN controller, the exposure controllers, the
failover loop.  That state is a pure function of the tick sequence, so
resume *replays* it: :func:`restore_run_state` advances a freshly
built scenario through every pre-checkpoint tick with
:meth:`~repro.simulation.engine.SimulationEngine.advance_state` (no
measuring, no traffic — the cheap path), then verifies the replayed
state digest against the one recorded at capture time.  A resumed run
therefore continues **bit-identically**: the golden ``RunSummary`` and
catchment snapshots of checkpoint→kill→resume equal the uninterrupted
run's, at any ``workers=N``.

Two documented caveats, both invisible to the golden contracts:
resolver-cache hit/miss *metrics* can differ slightly right after the
resume boundary (probe resolver caches restart cold; every record that
could change a measurement *result* has either expired within one
campaign interval or is static), and post-resume AWS ``cache_verdicts``
may differ (the HTTP edge caches restart cold; the AWS sweep's
measurement *count* is unchanged).

File format (``ckpt-<steps>.rckpt``)::

    RCKPT1\\n
    <4-byte LE header length><JSON header>
    <pickled payload>

The JSON header carries the schema version, the step count, the next
tick and a BLAKE2b checksum of the payload; files are written to a
``*.tmp`` sibling, fsynced and atomically renamed, and the loader
rejects torn or truncated files with :class:`CheckpointError` —
:func:`latest_checkpoint` then falls back to the newest *valid* file.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Optional, Sequence, Union

from ..net.geo import MappingRegion
from ..obs import snapshot_delta

__all__ = [
    "CheckpointError",
    "Checkpoint",
    "CheckpointPlan",
    "capture_checkpoint",
    "restore_run_state",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint",
    "checkpoint_path",
]

_MAGIC = b"RCKPT1\n"
_HEADER_LEN = struct.Struct("<I")
_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read or restored."""


@dataclass(frozen=True)
class Checkpoint:
    """One tick-boundary snapshot of a run (see module docstring)."""

    spec: object                 # EngineSpec — rebuilds the scenario
    start: float                 # the original run's start tick
    end: float                   # the original run's end bound
    next_tick: float             # first tick the resumed run executes
    steps: int                   # ticks completed before next_tick
    step_seconds: float
    reports: tuple               # full StepReport stream so far
    state: dict                  # stores / netflow / snmp / campaign grids
    metrics: dict                # full registry snapshot at capture time
    observer: dict               # engine observer edge-detection state
    rng_states: dict             # named RNG states (getstate() payloads)
    digest: Optional[str]        # state digest of the last completed tick
    version: int = _VERSION


def checkpoint_path(directory: Union[str, Path], steps: int) -> Path:
    """Where the checkpoint after ``steps`` completed ticks lives."""
    return Path(directory) / f"ckpt-{steps:08d}.rckpt"


def capture_checkpoint(
    engine,
    *,
    start: float,
    end: float,
    next_tick: float,
    reports: Sequence,
    rng_states: Optional[dict] = None,
) -> Checkpoint:
    """Snapshot ``engine``'s accumulated run state at a tick boundary.

    ``reports`` must be the full :class:`StepReport` stream since
    ``start`` — its length is the step count and its last entry yields
    the state digest the resume replay is verified against.
    """
    from .concurrency import EngineSpec, state_digest

    scenario = engine.scenario
    obs = engine._obs
    reports = tuple(reports)
    digest = None
    if reports:
        last = reports[-1]
        digest = state_digest(last.now, last.demand_gbps, last.operator_gbps)
    state = {
        "stores": {
            "ripe-global": scenario.global_campaign.store.dump_state(),
            "ripe-isp": scenario.isp_campaign.store.dump_state(),
            "traceroute": scenario.traceroute_campaign.store.dump_state(),
        },
        "netflow": {
            "records": tuple(scenario.netflow.records),
            "offered": scenario.netflow.total_offered_bytes,
        },
        "snmp": scenario.snmp.snapshot_bins(),
        "global_next_due": scenario.global_campaign._next_due,
        "isp_next_due": scenario.isp_campaign._next_due,
        "traceroute_next_due": scenario.traceroute_campaign._next_due,
        "aws_next_due": scenario.aws_campaign._next_due,
        "aws_results": list(scenario.aws_campaign.results),
    }
    observer = {
        "offload_on": tuple(
            sorted(obs._offload_on, key=lambda region: region.value)
        ),
        "saturated": tuple(sorted(obs._saturated)),
        "peak_eu": obs._peak_eu,
    }
    return Checkpoint(
        spec=EngineSpec.from_engine(engine),
        start=start,
        end=end,
        next_tick=next_tick,
        steps=len(reports),
        step_seconds=engine.step_seconds,
        reports=reports,
        state=state,
        metrics=obs.metrics.snapshot(),
        observer=observer,
        rng_states=dict(rng_states or {}),
        digest=digest,
    )


def save_checkpoint(checkpoint: Checkpoint, path: Union[str, Path]) -> Path:
    """Write ``checkpoint`` to ``path`` atomically (tmp + fsync + rename)."""
    path = Path(path)
    payload = pickle.dumps(
        {name: getattr(checkpoint, name) for name in checkpoint.__dataclass_fields__},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = json.dumps(
        {
            "version": checkpoint.version,
            "steps": checkpoint.steps,
            "next_tick": checkpoint.next_tick,
            "checksum": blake2b(payload, digest_size=16).hexdigest(),
        },
        sort_keys=True,
    ).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(_HEADER_LEN.pack(len(header)))
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    return path


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read and validate one checkpoint file (or the latest in a dir).

    Torn, truncated or corrupted files raise :class:`CheckpointError`
    (magic, header and payload checksum are all verified) rather than
    resuming from garbage.
    """
    path = Path(path)
    if path.is_dir():
        return latest_checkpoint(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not blob.startswith(_MAGIC):
        raise CheckpointError(f"{path} is not an RCKPT checkpoint (bad magic)")
    cursor = len(_MAGIC)
    try:
        (header_len,) = _HEADER_LEN.unpack_from(blob, cursor)
    except struct.error as exc:
        raise CheckpointError(f"{path}: truncated checkpoint header") from exc
    cursor += _HEADER_LEN.size
    if cursor + header_len > len(blob):
        raise CheckpointError(f"{path}: truncated checkpoint header")
    try:
        header = json.loads(blob[cursor : cursor + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}: corrupt checkpoint header: {exc}") from exc
    if header.get("version") != _VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {header.get('version')!r}"
        )
    payload = blob[cursor + header_len :]
    checksum = blake2b(payload, digest_size=16).hexdigest()
    if checksum != header.get("checksum"):
        raise CheckpointError(
            f"{path}: payload checksum mismatch (torn or corrupted file)"
        )
    try:
        fields = pickle.loads(payload)
        return Checkpoint(**fields)
    except Exception as exc:  # pickle raises a zoo of error types
        raise CheckpointError(f"{path}: cannot decode payload: {exc}") from exc


def latest_checkpoint(directory: Union[str, Path]) -> Checkpoint:
    """The newest *valid* checkpoint in ``directory``.

    Corrupt files (e.g. torn by the crash that makes the resume
    necessary) are skipped; if no file validates, the error lists what
    was wrong with each candidate.
    """
    directory = Path(directory)
    candidates = sorted(directory.glob("ckpt-*.rckpt"), reverse=True)
    failures: list[str] = []
    for candidate in candidates:
        try:
            return load_checkpoint(candidate)
        except CheckpointError as exc:
            failures.append(str(exc))
    detail = "; ".join(failures) if failures else "no ckpt-*.rckpt files found"
    raise CheckpointError(f"no valid checkpoint in {directory}: {detail}")


# ----------------------------------------------------------------------
# capture/restore orchestration
# ----------------------------------------------------------------------


@dataclass
class CheckpointPlan:
    """A running checkpoint cadence: where, how often, and what so far.

    ``reports`` accumulates the full report stream (seeded from the
    checkpoint on resume), so every snapshot written carries the whole
    run from ``origin_start`` — a later resume never needs the earlier
    checkpoint files.
    """

    directory: Path
    every: int
    origin_start: float
    origin_end: float
    reports: list = field(default_factory=list)
    written: int = 0   # step count at the last write

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint cadence must be >= 1 ticks")
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def maybe_write(
        self, engine, next_tick: float, force: bool = False
    ) -> Optional[Path]:
        """Write a checkpoint if the cadence (or ``force``) says so."""
        done = len(self.reports)
        if not done:
            return None
        if not force and done - self.written < self.every:
            return None
        if force and done == self.written:
            return checkpoint_path(self.directory, done)  # already on disk
        checkpoint = capture_checkpoint(
            engine,
            start=self.origin_start,
            end=self.origin_end,
            next_tick=next_tick,
            reports=self.reports,
        )
        path = save_checkpoint(checkpoint, checkpoint_path(self.directory, done))
        self.written = done
        stats = getattr(engine, "run_stats", None)
        if stats is not None:
            stats["checkpoints_written"] += 1
        return path


def restore_run_state(engine, checkpoint: Checkpoint) -> tuple:
    """Restore ``checkpoint`` into a freshly built ``engine``.

    Replays the deterministic world state tick by tick (campaign grids
    advance, nothing is measured), verifies the replayed state digest
    against the captured one, then splices the accumulated run products
    back in: stores, Netflow/SNMP, AWS results, metrics and the
    observer's edge state.  Returns the tuple of replayed ticks (the
    warm-up sequence sharded workers must mirror).
    """
    from .concurrency import EngineSpec, state_digest

    scenario = engine.scenario
    obs = engine._obs
    spec = EngineSpec.from_engine(engine)
    if spec.scenario_class is not checkpoint.spec.scenario_class:
        raise CheckpointError(
            f"cannot resume: engine scenario {spec.scenario_class.__name__} "
            f"!= checkpoint scenario "
            f"{checkpoint.spec.scenario_class.__name__}"
        )
    if spec.config != checkpoint.spec.config:
        raise CheckpointError(
            "cannot resume: the engine's scenario config differs from the "
            "checkpoint's (a resumed run must replay the same world)"
        )
    if engine.step_seconds != checkpoint.step_seconds:
        raise CheckpointError(
            f"cannot resume: step_seconds {engine.step_seconds:g} != "
            f"checkpoint's {checkpoint.step_seconds:g}"
        )
    if not scenario.is_fresh():
        raise CheckpointError(
            "resume requires a freshly constructed scenario: the replay "
            "would double-count state this engine already accumulated"
        )

    registry = obs.metrics
    base = registry.snapshot()
    # Replay silently: profiling off (no phase samples for replayed
    # ticks — the original run already recorded them into the metrics
    # snapshot we are about to restore) and the fault injector's tracer
    # nulled (fault_opened/closed events were emitted by the original
    # run; re-emitting them would duplicate the trace).
    injector = getattr(scenario, "faults", None)
    quiet = injector.quiet() if injector is not None else _NULL_CONTEXT
    saved_profiling = obs.profiling
    obs.profiling = False
    ticks: list[float] = []
    last: Optional[tuple] = None
    try:
        with quiet:
            now = checkpoint.start
            while now < checkpoint.next_tick:
                demand, splits = engine.advance_state(now)
                last = (now, demand, splits[MappingRegion.EU])
                if scenario.global_campaign.due(now):
                    scenario.global_campaign.mark_fired(now, count_metrics=False)
                if scenario.isp_campaign.due(now):
                    scenario.isp_campaign.mark_fired(now, count_metrics=False)
                ticks.append(now)
                now += engine.step_seconds
    finally:
        obs.profiling = saved_profiling
    if len(ticks) != checkpoint.steps:
        raise CheckpointError(
            f"replay produced {len(ticks)} ticks but the checkpoint "
            f"recorded {checkpoint.steps} (step grid mismatch)"
        )
    if checkpoint.digest is not None:
        assert last is not None
        replayed = state_digest(last[0], last[1], last[2])
        if replayed != checkpoint.digest:
            raise CheckpointError(
                f"replayed world state diverged from the checkpoint at "
                f"t={last[0]}: digest {replayed} != {checkpoint.digest} "
                "(different code or config than the original run)"
            )
    state = checkpoint.state
    for campaign, key in (
        (scenario.global_campaign, "global_next_due"),
        (scenario.isp_campaign, "isp_next_due"),
    ):
        if campaign._next_due != state[key]:
            raise CheckpointError(
                f"replayed {campaign.name} campaign grid "
                f"{campaign._next_due!r} != checkpoint's {state[key]!r}"
            )

    # Metrics: the registry now holds base + replay_delta; absorbing
    # (checkpoint − replay_delta) lands it on base + checkpoint — the
    # replay's incidental accumulation (health probes, fault counters)
    # cancels exactly against its share inside the snapshot.
    replay_delta = snapshot_delta(registry.snapshot(), base)
    registry.absorb_snapshot(snapshot_delta(checkpoint.metrics, replay_delta))

    scenario.global_campaign.store.restore_state(state["stores"]["ripe-global"])
    scenario.isp_campaign.store.restore_state(state["stores"]["ripe-isp"])
    scenario.traceroute_campaign.store.restore_state(
        state["stores"]["traceroute"]
    )
    scenario.netflow.absorb(
        state["netflow"]["records"], state["netflow"]["offered"]
    )
    scenario.snmp.absorb(state["snmp"])
    scenario.traceroute_campaign._next_due = state["traceroute_next_due"]
    scenario.aws_campaign._next_due = state["aws_next_due"]
    scenario.aws_campaign.results.extend(state["aws_results"])

    observer = checkpoint.observer
    obs._offload_on = set(observer["offload_on"])
    obs._saturated = set(observer["saturated"])
    obs._peak_eu = observer["peak_eu"]
    return tuple(ticks)


class _NullContextType:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContextType()
